//! The [`Recorder`] trait plus the monotonic clock and thread-id
//! utilities every recorder shares.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Receives tracing events. Implementations must be cheap and
/// thread-safe: events arrive from saturation workers concurrently.
///
/// Timestamps are microseconds since a process-wide monotonic epoch
/// ([`now_micros`]); thread ids are small dense ordinals
/// ([`thread_ordinal`]), not OS thread ids, so traces are stable across
/// runs.
pub trait Recorder: Send + Sync {
    /// A span named `name` opened on thread `tid` at `ts_us`.
    fn span_enter(&self, name: &'static str, tid: u64, ts_us: u64);
    /// The most recent open span named `name` on thread `tid` closed at
    /// `ts_us`. Enter/exit pairs nest properly per thread (RAII guards
    /// enforce this).
    fn span_exit(&self, name: &'static str, tid: u64, ts_us: u64);
    /// A zero-duration event (e.g. an arena growth).
    fn instant(&self, name: &'static str, tid: u64, ts_us: u64);
}

/// A recorder that discards every event. Useful for benchmarking the
/// fully-enabled dispatch path and as a placeholder recorder; note that
/// the *cheap* disabled path is `Obs::disabled()`, which never reaches a
/// recorder at all.
#[derive(Copy, Clone, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn span_enter(&self, _name: &'static str, _tid: u64, _ts_us: u64) {}
    #[inline]
    fn span_exit(&self, _name: &'static str, _tid: u64, _ts_us: u64) {}
    #[inline]
    fn instant(&self, _name: &'static str, _tid: u64, _ts_us: u64) {}
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the process-wide monotonic epoch (lazily
/// anchored at first use). Never decreases on a single thread.
#[inline]
pub fn now_micros() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// A small dense ordinal identifying the calling thread: the main/first
/// observed thread is 0, each subsequently observed thread takes the
/// next integer. Stable for the thread's lifetime.
pub fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|o| *o)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let a = now_micros();
        let b = now_micros();
        assert!(b >= a);
    }

    #[test]
    fn thread_ordinals_are_stable_and_distinct() {
        let here = thread_ordinal();
        assert_eq!(here, thread_ordinal());
        let other = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(here, other);
    }

    #[test]
    fn noop_recorder_accepts_events() {
        let r = NoopRecorder;
        r.span_enter("x", 0, 1);
        r.span_exit("x", 0, 2);
        r.instant("y", 0, 3);
    }
}
