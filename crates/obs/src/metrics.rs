//! Named counters, gauges, and log-bucketed histograms with a sharded
//! design so parallel workers record without contending, plus the
//! Prometheus text and JSON exporters.
//!
//! A metric name may embed a Prometheus label set verbatim, e.g.
//! `awdit_phase_us_total{phase="saturate_cc"}`: the exporter groups such
//! series under one `# TYPE` line for the base name.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of independent cache-padded cells each counter fans writes
/// across. Sixteen covers the pool's worker-count ceiling without making
/// snapshots expensive.
const SHARDS: usize = 16;

/// One cache-line-padded atomic cell, so two shards never share a line.
#[derive(Default)]
#[repr(align(64))]
struct PaddedAtomic(AtomicU64);

/// A monotonically increasing counter. Increments scatter across
/// `SHARDS` padded cells keyed by the caller's thread ordinal, so
/// saturation workers on different threads never touch the same cache
/// line; reads sum the cells.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedAtomic; SHARDS],
}

impl Counter {
    /// Adds `n` (relaxed; visible to any later [`get`](Self::get)).
    #[inline]
    pub fn add(&self, n: u64) {
        let shard = crate::thread_ordinal() as usize % SHARDS;
        self.shards[shard].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A last-write-wins gauge holding one `f64` (stored as its bit
/// pattern in an atomic, so sets from any thread are safe).
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// Number of log2 buckets a histogram keeps: bucket `i` counts samples
/// with `floor(log2(v)) == i - 1` (bucket 0 holds zeros), so the range
/// covers `u64` values entirely.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A histogram of `u64` samples in log2 buckets. Bucket increments are
/// single relaxed atomics (different samples usually hit different
/// buckets, and bucket contention is tolerable); the count/sum pair is
/// sharded like [`Counter`] since every sample touches it.
pub struct Histogram {
    buckets: Box<[AtomicU64; HISTOGRAM_BUCKETS]>,
    count: Counter,
    sum: Counter,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: Counter::default(),
            sum: Counter::default(),
        }
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        let bucket = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.inc();
        self.sum.add(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.get()
    }

    /// An upper bound on the `q`-quantile (`0.0 ≤ q ≤ 1.0`) of the
    /// observed samples: the inclusive upper edge of the first log2 bucket
    /// at which the cumulative count reaches `q · count`. Because buckets
    /// double, the bound is within 2× of the true quantile — plenty for
    /// latency reporting (p50/p99) from lock-free counters. Returns 0 when
    /// nothing has been observed.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_of(&self.buckets(), self.count(), q)
    }

    /// The non-empty buckets as `(upper_bound_inclusive, count)` pairs,
    /// smallest bound first. Bucket 0's bound is 0; bucket `i`'s bound is
    /// `2^i - 1`.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                if n == 0 {
                    return None;
                }
                let bound = if i == 0 {
                    0
                } else {
                    (1u64 << i).wrapping_sub(1)
                };
                let bound = if i >= 64 { u64::MAX } else { bound };
                Some((bound, n))
            })
            .collect()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(count={}, sum={})", self.count(), self.sum())
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A registry of named metrics. Registration takes a write lock once per
/// name; recording on an already-registered handle is lock-free.
/// Components cache the `Arc` handles they return.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.metrics.read().expect("metrics lock").len();
        write!(f, "MetricsRegistry({n} metrics)")
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or registers the counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(Metric::Counter(c)) = self.metrics.read().expect("metrics lock").get(name) {
            return c.clone();
        }
        let mut metrics = self.metrics.write().expect("metrics lock");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Gets or registers the gauge named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(Metric::Gauge(g)) = self.metrics.read().expect("metrics lock").get(name) {
            return g.clone();
        }
        let mut metrics = self.metrics.write().expect("metrics lock");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Gets or registers the histogram named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(Metric::Histogram(h)) = self.metrics.read().expect("metrics lock").get(name) {
            return h.clone();
        }
        let mut metrics = self.metrics.write().expect("metrics lock");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.read().expect("metrics lock");
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push(HistogramSnapshot {
                    name: name.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    buckets: h.buckets(),
                }),
            }
        }
        snap
    }
}

/// A frozen copy of a [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Non-empty `(upper_bound_inclusive, count)` buckets.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Quantile upper bound, as [`Histogram::quantile`] but over the
    /// frozen buckets.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_of(&self.buckets, self.count, q)
    }
}

/// Shared quantile walk over `(upper_bound, count)` buckets.
fn quantile_of(buckets: &[(u64, u64)], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for &(bound, n) in buckets {
        seen += n;
        if seen >= rank {
            return bound;
        }
    }
    buckets.last().map(|&(b, _)| b).unwrap_or(0)
}

/// A frozen, name-sorted copy of a [`MetricsRegistry`], exportable as
/// Prometheus text or JSON.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge `(name, value)` pairs, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// `awdit_foo_total{x="y"}` → `awdit_foo_total`: the series name without
/// any embedded label set.
fn base_name(name: &str) -> &str {
    match name.find('{') {
        Some(i) => &name[..i],
        None => name,
    }
}

impl MetricsSnapshot {
    /// Renders Prometheus text exposition format (version 0.0.4): one
    /// `# TYPE` line per base metric name, then its samples. Histograms
    /// expand to cumulative `_bucket{le=…}` plus `_sum`/`_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type_line: Option<String> = None;
        let mut type_line = |out: &mut String, base: &str, kind: &str| {
            let line = format!("# TYPE {base} {kind}\n");
            if last_type_line.as_deref() != Some(line.as_str()) {
                out.push_str(&line);
                last_type_line = Some(line);
            }
        };
        for (name, value) in &self.counters {
            type_line(&mut out, base_name(name), "counter");
            out.push_str(&format!("{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            type_line(&mut out, base_name(name), "gauge");
            out.push_str(&format!("{name} {}\n", fmt_f64(*value)));
        }
        for h in &self.histograms {
            let base = base_name(&h.name);
            type_line(&mut out, base, "histogram");
            let mut cumulative = 0u64;
            for (bound, count) in &h.buckets {
                cumulative += count;
                out.push_str(&format!("{base}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{base}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{base}_sum {}\n", h.sum));
            out.push_str(&format!("{base}_count {}\n", h.count));
        }
        out
    }

    /// Renders the snapshot as a JSON object with `counters`, `gauges`,
    /// and `histograms` maps.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push_str(&format!(":{value}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push_str(&format!(":{}", fmt_f64(*value)));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, &h.name);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"buckets\":[",
                h.count, h.sum
            ));
            for (j, (bound, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{bound},{count}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Looks up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses Prometheus text exposition into `(series_name, value)` pairs
/// (comments skipped, label sets kept verbatim in the name). Used by the
/// test suite and the CI validator to check that exported snapshots are
/// scrape-able.
pub fn parse_prometheus(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // The value is everything after the last space *outside* a label
        // set; series names never contain spaces outside braces here.
        let split = line
            .rfind(' ')
            .ok_or_else(|| format!("line {}: no value: {line:?}", lineno + 1))?;
        let (name, value) = (line[..split].trim_end(), line[split + 1..].trim());
        if name.is_empty() {
            return Err(format!("line {}: empty series name", lineno + 1));
        }
        let first = name.chars().next().unwrap();
        if !(first.is_ascii_alphabetic() || first == '_') {
            return Err(format!("line {}: bad series name {name:?}", lineno + 1));
        }
        if name.matches('{').count() != name.matches('}').count() {
            return Err(format!(
                "line {}: unbalanced braces in {name:?}",
                lineno + 1
            ));
        }
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: bad value {value:?}", lineno + 1))?;
        out.push((name.to_string(), value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("awdit_test_total");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(reg.counter("awdit_test_total").get(), 4000);
    }

    #[test]
    fn gauge_holds_floats() {
        let g = Gauge::default();
        assert_eq!(g.get(), 0.0);
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        let buckets = h.buckets();
        // 0 → bucket 0 (bound 0); 1 → bound 1; 2,3 → bound 3; 1024 → bound 2047.
        assert_eq!(buckets, vec![(0, 1), (1, 1), (3, 2), (2047, 1)]);
    }

    #[test]
    fn registry_kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.gauge("x");
        }));
        assert!(err.is_err());
    }

    #[test]
    fn prometheus_round_trips_through_parser() {
        let reg = MetricsRegistry::new();
        reg.counter("awdit_events_total").add(7);
        reg.gauge("awdit_pool_utilization").set(0.5);
        reg.histogram("awdit_txn_size").observe(3);
        let text = reg.snapshot().to_prometheus();
        let parsed = parse_prometheus(&text).unwrap();
        let get = |n: &str| parsed.iter().find(|(name, _)| name == n).map(|&(_, v)| v);
        assert_eq!(get("awdit_events_total"), Some(7.0));
        assert_eq!(get("awdit_pool_utilization"), Some(0.5));
        assert_eq!(get("awdit_txn_size_count"), Some(1.0));
        assert_eq!(get("awdit_txn_size_sum"), Some(3.0));
        assert_eq!(get("awdit_txn_size_bucket{le=\"+Inf\"}"), Some(1.0));
    }

    #[test]
    fn labeled_series_share_one_type_line() {
        let mut snap = MetricsSnapshot::default();
        snap.counters
            .push(("awdit_phase_us_total{phase=\"a\"}".to_string(), 1));
        snap.counters
            .push(("awdit_phase_us_total{phase=\"b\"}".to_string(), 2));
        let text = snap.to_prometheus();
        assert_eq!(
            text.matches("# TYPE awdit_phase_us_total counter").count(),
            1
        );
        assert!(parse_prometheus(&text).is_ok());
    }

    #[test]
    fn json_export_is_valid() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total").inc();
        reg.gauge("g").set(1.25);
        reg.histogram("h").observe(9);
        let json = reg.snapshot().to_json();
        crate::chrome::json_lint(&json).unwrap();
        assert!(json.contains("\"a_total\":1"));
    }

    #[test]
    fn parse_prometheus_rejects_garbage() {
        assert!(parse_prometheus("novalue").is_err());
        assert!(parse_prometheus("name notanumber").is_err());
        assert!(parse_prometheus("bad{ 1").is_err());
        assert!(parse_prometheus("# just a comment\n").unwrap().is_empty());
    }
}
