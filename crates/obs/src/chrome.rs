//! Chrome `trace_event`-format output: a [`Recorder`] that collects
//! events and writes JSON loadable by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev), plus [`validate_trace`] /
//! [`json_lint`] for checking well-formedness in tests and CI.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::Recorder;

/// How many independent event buffers the recorder fans writes across.
const SHARDS: usize = 16;

/// One recorded trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span or instant name.
    pub name: &'static str,
    /// Chrome phase: `'B'` (span begin), `'E'` (span end), `'i'` (instant).
    pub phase: char,
    /// Thread ordinal.
    pub tid: u64,
    /// Microseconds since the process monotonic epoch.
    pub ts_us: u64,
    /// Global sequence number; total order over all events.
    pub seq: u64,
}

/// A [`Recorder`] that buffers events in sharded vectors (one mutex per
/// shard keyed by thread ordinal, so concurrent workers rarely contend)
/// and replays them as Chrome `trace_event` JSON.
pub struct ChromeTraceRecorder {
    seq: AtomicU64,
    shards: [Mutex<Vec<TraceEvent>>; SHARDS],
}

impl Default for ChromeTraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ChromeTraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ChromeTraceRecorder(seq={})",
            self.seq.load(Ordering::Relaxed)
        )
    }
}

impl ChromeTraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        ChromeTraceRecorder {
            seq: AtomicU64::new(0),
            shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
        }
    }

    fn push(&self, name: &'static str, phase: char, tid: u64, ts_us: u64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let shard = tid as usize % SHARDS;
        self.shards[shard]
            .lock()
            .expect("trace shard lock")
            .push(TraceEvent {
                name,
                phase,
                tid,
                ts_us,
                seq,
            });
    }

    /// All events recorded so far, merged across shards in global
    /// sequence order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend(shard.lock().expect("trace shard lock").iter().cloned());
        }
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Renders the Chrome `trace_event` JSON object:
    /// `{"displayTimeUnit":"ms","traceEvents":[…]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in self.events().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let scope = if e.phase == 'i' { ",\"s\":\"t\"" } else { "" };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"awdit\",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}{scope}}}",
                escape(e.name),
                e.phase,
                e.tid,
                e.ts_us,
            ));
        }
        out.push_str("]}");
        out
    }

    /// Writes [`to_json`](Self::to_json) to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

impl Recorder for ChromeTraceRecorder {
    fn span_enter(&self, name: &'static str, tid: u64, ts_us: u64) {
        self.push(name, 'B', tid, ts_us);
    }
    fn span_exit(&self, name: &'static str, tid: u64, ts_us: u64) {
        self.push(name, 'E', tid, ts_us);
    }
    fn instant(&self, name: &'static str, tid: u64, ts_us: u64) {
        self.push(name, 'i', tid, ts_us);
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// What [`validate_trace`] found in a well-formed trace file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total trace events.
    pub events: u64,
    /// Matched begin/end pairs.
    pub complete_spans: u64,
    /// Distinct thread ids.
    pub threads: u64,
    /// Deepest span nesting observed on any thread.
    pub max_depth: u64,
    /// Distinct span/instant names, sorted.
    pub phase_names: Vec<String>,
}

/// Validates a Chrome trace_event JSON document: parses the JSON,
/// checks every event has `name`/`ph`/`tid`/`ts`, that per-thread `B`/`E`
/// events nest (every `E` closes the matching open `B`, nothing left
/// open), and that timestamps are monotone per thread. Returns a
/// [`TraceSummary`] on success.
pub fn validate_trace(text: &str) -> Result<TraceSummary, String> {
    let root = json_lint(text)?;
    let events = match &root {
        Json::Object(fields) => match fields.iter().find(|(k, _)| k == "traceEvents") {
            Some((_, Json::Array(events))) => events,
            Some(_) => return Err("traceEvents is not an array".to_string()),
            None => return Err("missing traceEvents".to_string()),
        },
        Json::Array(events) => events,
        _ => return Err("trace root must be an object or array".to_string()),
    };
    let mut summary = TraceSummary::default();
    let mut names = std::collections::BTreeSet::new();
    // Per-tid open-span stack and last timestamp.
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let Json::Object(fields) = event else {
            return Err(format!("event {i} is not an object"));
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let name = match get("name") {
            Some(Json::String(s)) => s.clone(),
            _ => return Err(format!("event {i}: missing name")),
        };
        let phase = match get("ph") {
            Some(Json::String(s)) if !s.is_empty() => s.clone(),
            _ => return Err(format!("event {i}: missing ph")),
        };
        let tid = match get("tid") {
            Some(Json::Number(n)) => *n as u64,
            _ => return Err(format!("event {i}: missing tid")),
        };
        let ts = match get("ts") {
            Some(Json::Number(n)) => *n,
            _ => return Err(format!("event {i}: missing ts")),
        };
        if let Some(prev) = last_ts.get(&tid) {
            if ts < *prev {
                return Err(format!(
                    "event {i}: timestamp {ts} goes backwards on tid {tid} (prev {prev})"
                ));
            }
        }
        last_ts.insert(tid, ts);
        summary.events += 1;
        names.insert(name.clone());
        let stack = stacks.entry(tid).or_default();
        match phase.as_str() {
            "B" => {
                stack.push(name);
                summary.max_depth = summary.max_depth.max(stack.len() as u64);
            }
            "E" => match stack.pop() {
                Some(open) if open == name => summary.complete_spans += 1,
                Some(open) => {
                    return Err(format!(
                        "event {i}: E {name:?} does not close open span {open:?} on tid {tid}"
                    ))
                }
                None => {
                    return Err(format!(
                        "event {i}: E {name:?} with no open span on tid {tid}"
                    ))
                }
            },
            "i" | "I" => {}
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid}: unclosed spans at end of trace: {stack:?}"
            ));
        }
    }
    summary.threads = stacks.len() as u64;
    summary.phase_names = names.into_iter().collect();
    Ok(summary)
}

/// A parsed JSON value, as produced by [`json_lint`]. Object fields keep
/// document order (duplicates allowed, as JSON permits).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, fields in document order.
    Object(Vec<(String, Json)>),
}

/// Parses `text` as a single JSON document, rejecting trailing garbage.
/// This is the whole-language parser backing [`validate_trace`] and the
/// CI output validator; it exists because `awdit-obs` sits *below*
/// `awdit-formats` in the dependency graph and cannot borrow its parser.
pub fn json_lint(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::String(s) => s,
                    _ => return Err(format!("object key at byte {pos} is not a string")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Json::String),
        Some(b't') => parse_literal(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null").map(|_| Json::Null),
        Some(_) => parse_number(bytes, pos).map(Json::Number),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad utf8".to_string())?;
    text.parse::<f64>()
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad utf8".to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u{hex}"))?;
                        *pos += 4;
                        // Surrogate pair?
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos + 1..*pos + 3) == Some(b"\\u") {
                                let hex2 = bytes
                                    .get(*pos + 3..*pos + 7)
                                    .ok_or_else(|| "truncated surrogate".to_string())?;
                                let hex2 = std::str::from_utf8(hex2)
                                    .map_err(|_| "bad utf8".to_string())?;
                                let low = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| format!("bad \\u{hex2}"))?;
                                *pos += 6;
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| format!("invalid codepoint in \\u{hex}"))?);
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "bad utf8 in string".to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_round_trips_through_validator() {
        let rec = ChromeTraceRecorder::new();
        rec.span_enter("check", 0, 10);
        rec.span_enter("saturate_cc", 0, 20);
        rec.instant("arena_growth", 0, 25);
        rec.span_exit("saturate_cc", 0, 30);
        rec.span_exit("check", 0, 40);
        rec.span_enter("pool_worker", 1, 15);
        rec.span_exit("pool_worker", 1, 35);
        let json = rec.to_json();
        let summary = validate_trace(&json).unwrap();
        assert_eq!(summary.events, 7);
        assert_eq!(summary.complete_spans, 3);
        assert_eq!(summary.threads, 2);
        assert_eq!(summary.max_depth, 2);
        assert!(summary.phase_names.contains(&"saturate_cc".to_string()));
    }

    #[test]
    fn validator_rejects_unbalanced_spans() {
        let bad = r#"{"traceEvents":[{"name":"a","ph":"B","tid":0,"ts":1}]}"#;
        assert!(validate_trace(bad).unwrap_err().contains("unclosed"));
        let bad = r#"{"traceEvents":[{"name":"a","ph":"E","tid":0,"ts":1}]}"#;
        assert!(validate_trace(bad).unwrap_err().contains("no open span"));
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"B","tid":0,"ts":1},
            {"name":"b","ph":"E","tid":0,"ts":2}]}"#;
        assert!(validate_trace(bad).unwrap_err().contains("does not close"));
    }

    #[test]
    fn validator_rejects_backwards_time() {
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"B","tid":0,"ts":5},
            {"name":"a","ph":"E","tid":0,"ts":3}]}"#;
        assert!(validate_trace(bad).unwrap_err().contains("backwards"));
    }

    #[test]
    fn validator_accepts_bare_array_form() {
        let trace = r#"[{"name":"a","ph":"i","tid":3,"ts":1}]"#;
        let summary = validate_trace(trace).unwrap();
        assert_eq!(summary.events, 1);
        assert_eq!(summary.threads, 1);
    }

    #[test]
    fn json_lint_full_language() {
        let doc = r#"{"a":[1,-2.5,1e3],"b":"x\n\"A😀","c":null,"d":[true,false],"e":{}}"#;
        let Json::Object(fields) = json_lint(doc).unwrap() else {
            panic!("not an object");
        };
        assert_eq!(fields.len(), 5);
        let b = fields.iter().find(|(k, _)| k == "b").unwrap();
        assert_eq!(b.1, Json::String("x\n\"A\u{1F600}".to_string()));
        assert!(json_lint("{\"a\":1} trailing").is_err());
        assert!(json_lint("{").is_err());
        assert!(json_lint("[1,]").is_err());
    }

    #[test]
    fn concurrent_recording_is_totally_ordered() {
        let rec = std::sync::Arc::new(ChromeTraceRecorder::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rec = rec.clone();
                s.spawn(move || {
                    let tid = crate::thread_ordinal();
                    for _ in 0..50 {
                        let ts = crate::now_micros();
                        rec.span_enter("w", tid, ts);
                        rec.span_exit("w", tid, crate::now_micros().max(ts));
                    }
                });
            }
        });
        let events = rec.events();
        assert_eq!(events.len(), 400);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(validate_trace(&rec.to_json()).is_ok());
    }
}
