//! # awdit-obs — zero-dependency observability for the AWDIT stack
//!
//! Checking at hardware speed only matters if you can *see* where the
//! time goes. This crate is the observability substrate the rest of the
//! workspace instruments itself with — standard library only, no
//! crates.io dependencies, and a disabled path cheap enough to leave
//! compiled into every hot loop:
//!
//! * **Tracing spans** — a [`Recorder`] trait receiving span
//!   enter/exit/instant events with monotonic microsecond timestamps and
//!   stable per-thread ids, RAII [`Span`] guards, and [`NoopRecorder`]
//!   for recorder slots that should swallow events. The real off switch
//!   is [`Obs::disabled`]: one `Option` check on span creation, no
//!   timestamp read, no allocation.
//! * **Metrics** — a [`MetricsRegistry`] of
//!   named counters, gauges, and log-bucketed histograms. Counters are
//!   sharded across cache-padded atomics so parallel saturation workers
//!   record without contending; snapshots export as Prometheus text
//!   exposition (the future `awdit serve /metrics` body) and JSON.
//! * **Phase profiling** — every [`Span`] also aggregates into a
//!   per-phase `(count, total time)` table ([`Obs::phase_timings`]),
//!   which is what feeds the JSON report's `timings` block and the
//!   `awdit check --metrics` phase counters.
//! * **Chrome traces** — [`ChromeTraceRecorder`](chrome::ChromeTraceRecorder)
//!   collects events and writes the Chrome `trace_event` JSON format, so
//!   a check can be loaded straight into `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev); [`chrome::validate_trace`]
//!   checks well-formedness (balanced spans, per-thread monotone
//!   timestamps, valid JSON) for tests and CI.
//!
//! # Handles and the current context
//!
//! An [`Obs`] is a cheaply clonable handle (an `Option<Arc<…>>`): clone
//! it freely into engines, checkers, and worker threads. Components that
//! cannot thread a handle through their signatures (the sharded
//! saturators deep inside `awdit-core`) read the **thread-current**
//! context instead: callers install their handle with [`set_current`]
//! (an RAII guard) and instrumented leaves pick it up with [`current`].
//! Fork–join pools are expected to capture the caller's current context
//! and re-install it inside each worker thread, which is exactly what
//! `awdit_core::parallel` does.
//!
//! ```
//! use awdit_obs::{chrome::ChromeTraceRecorder, Obs};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(ChromeTraceRecorder::new());
//! let obs = Obs::builder().recorder_arc(recorder.clone()).build();
//! {
//!     let _outer = obs.span("check");
//!     let _inner = obs.span("saturate_cc");
//! } // spans close in reverse order on drop
//! obs.metrics().unwrap().counter("awdit_checks_total").inc();
//! assert_eq!(recorder.events().len(), 4); // two enters, two exits
//! assert_eq!(obs.phase_timings().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod metrics;
mod recorder;

use std::cell::RefCell;
use std::sync::{Arc, Mutex};

use metrics::MetricsRegistry;
pub use recorder::{now_micros, thread_ordinal, NoopRecorder, Recorder};

/// The shared state behind an enabled [`Obs`] handle.
struct Inner {
    recorder: Option<Arc<dyn Recorder>>,
    metrics: MetricsRegistry,
    phases: Phases,
}

/// A cheaply clonable observability handle: either **disabled** (the
/// default — every operation is a single branch) or an `Arc` over a
/// recorder slot, a metrics registry, and the phase-timing table.
///
/// See the [crate docs](self) for the overall design.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Obs(disabled)"),
            Some(inner) => f
                .debug_struct("Obs")
                .field("recorder", &inner.recorder.is_some())
                .finish(),
        }
    }
}

/// Builds an enabled [`Obs`] handle.
#[derive(Default)]
pub struct ObsBuilder {
    recorder: Option<Arc<dyn Recorder>>,
}

impl ObsBuilder {
    /// Attaches a tracing recorder (spans still aggregate phase timings
    /// and metrics without one).
    pub fn recorder<R: Recorder + 'static>(self, recorder: R) -> Self {
        self.recorder_arc(Arc::new(recorder))
    }

    /// [`recorder`](Self::recorder) from an existing `Arc`, so the caller
    /// keeps a handle for reading the events back out.
    pub fn recorder_arc(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Finishes into an enabled [`Obs`].
    pub fn build(self) -> Obs {
        Obs {
            inner: Some(Arc::new(Inner {
                recorder: self.recorder,
                metrics: MetricsRegistry::new(),
                phases: Phases::default(),
            })),
        }
    }
}

impl Obs {
    /// The disabled handle: spans, instants, and metrics lookups all
    /// short-circuit on one `Option` check. This is [`Default`].
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// An enabled handle with metrics and phase profiling but no tracing
    /// recorder — the cheapest always-on production configuration.
    pub fn new() -> Obs {
        Obs::builder().build()
    }

    /// Starts a fluent [`ObsBuilder`].
    pub fn builder() -> ObsBuilder {
        ObsBuilder::default()
    }

    /// Whether this handle records anything at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens an RAII span: enter is recorded now, exit when the returned
    /// guard drops. Disabled handles return an inert guard without
    /// reading the clock.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        match &self.inner {
            None => Span { live: None },
            Some(inner) => {
                let tid = thread_ordinal();
                let start = now_micros();
                if let Some(r) = &inner.recorder {
                    r.span_enter(name, tid, start);
                }
                Span {
                    live: Some((inner.clone(), name, tid, start)),
                }
            }
        }
    }

    /// Records a zero-duration instant event (e.g. an arena growth).
    #[inline]
    pub fn instant(&self, name: &'static str) {
        if let Some(inner) = &self.inner {
            if let Some(r) = &inner.recorder {
                r.instant(name, thread_ordinal(), now_micros());
            }
        }
    }

    /// The metrics registry, when enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.inner.as_ref().map(|i| &i.metrics)
    }

    /// The aggregated per-phase timings of every span closed so far,
    /// sorted by total time, longest first.
    pub fn phase_timings(&self) -> Vec<PhaseTiming> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out = inner.phases.snapshot();
        out.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(b.name)));
        out
    }

    /// Exports the metrics registry *and* the phase table as one
    /// Prometheus text exposition document (phases appear as
    /// `awdit_phase_us_total{phase="…"}` / `awdit_phase_spans_total{…}`
    /// counters). Empty string when disabled.
    pub fn export_prometheus(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let mut snap = inner.metrics.snapshot();
        for p in self.phase_timings() {
            snap.counters.push((
                format!("awdit_phase_spans_total{{phase=\"{}\"}}", p.name),
                p.count,
            ));
            snap.counters.push((
                format!("awdit_phase_us_total{{phase=\"{}\"}}", p.name),
                p.total_us,
            ));
        }
        snap.counters.sort();
        snap.to_prometheus()
    }
}

/// One aggregated phase: how many spans with this name closed and how
/// much wall time they covered.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PhaseTiming {
    /// The span name.
    pub name: &'static str,
    /// Spans closed.
    pub count: u64,
    /// Total wall-clock duration, microseconds.
    pub total_us: u64,
}

impl PhaseTiming {
    /// Total wall-clock duration in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_us as f64 / 1e3
    }
}

/// The difference `after - before` of two phase-timing snapshots, for
/// attributing phase time to one checked history out of a longer run.
/// Phases absent from `before` are taken whole; phases that did not
/// advance are dropped.
pub fn phase_delta(before: &[PhaseTiming], after: &[PhaseTiming]) -> Vec<PhaseTiming> {
    let mut out = Vec::new();
    for a in after {
        let prev = before.iter().find(|b| b.name == a.name);
        let (count, total_us) = match prev {
            Some(b) => (a.count - b.count, a.total_us - b.total_us),
            None => (a.count, a.total_us),
        };
        if count > 0 {
            out.push(PhaseTiming {
                name: a.name,
                count,
                total_us,
            });
        }
    }
    out
}

/// RAII span guard returned by [`Obs::span`]; records the exit event and
/// the phase aggregate when dropped. Owns its handle (an `Arc` bump per
/// span), so it never borrows the [`Obs`] it came from.
#[must_use = "a span records its duration when dropped; binding it to _ closes it immediately"]
pub struct Span {
    live: Option<(Arc<Inner>, &'static str, u64, u64)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((inner, name, tid, start)) = self.live.take() {
            let end = now_micros();
            if let Some(r) = &inner.recorder {
                r.span_exit(name, tid, end);
            }
            inner.phases.record(name, end.saturating_sub(start));
        }
    }
}

/// The per-phase aggregate table. Phase names are `&'static str` and few
/// (span sites are static), so a small locked vector with linear lookup
/// beats a hashing structure — and spans are phase-granular, not
/// per-event, so the lock is cold.
#[derive(Default)]
struct Phases {
    slots: Mutex<Vec<(&'static str, u64, u64)>>,
}

impl Phases {
    fn record(&self, name: &'static str, us: u64) {
        let mut slots = self.slots.lock().expect("phase table lock");
        match slots.iter_mut().find(|(n, _, _)| *n == name) {
            Some((_, count, total)) => {
                *count += 1;
                *total += us;
            }
            None => slots.push((name, 1, us)),
        }
    }

    fn snapshot(&self) -> Vec<PhaseTiming> {
        self.slots
            .lock()
            .expect("phase table lock")
            .iter()
            .map(|&(name, count, total_us)| PhaseTiming {
                name,
                count,
                total_us,
            })
            .collect()
    }
}

thread_local! {
    static CURRENT: RefCell<Obs> = RefCell::new(Obs::disabled());
}

/// The calling thread's current [`Obs`] context (disabled unless a
/// [`set_current`] guard is live). This is how instrumented leaves that
/// cannot take an `Obs` parameter — the saturators, the clock pass —
/// find their handle.
pub fn current() -> Obs {
    CURRENT.with(|c| c.borrow().clone())
}

/// Installs `obs` as the calling thread's current context, returning a
/// guard that restores the previous context on drop. Pools re-install
/// the captured context inside each worker thread.
pub fn set_current(obs: &Obs) -> CurrentGuard {
    let prev = CURRENT.with(|c| c.replace(obs.clone()));
    CurrentGuard { prev: Some(prev) }
}

/// Restores the previously current [`Obs`] when dropped (see
/// [`set_current`]).
#[must_use = "dropping the guard immediately restores the previous context"]
pub struct CurrentGuard {
    prev: Option<Obs>,
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| {
                *c.borrow_mut() = prev;
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::ChromeTraceRecorder;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        {
            let _s = obs.span("anything");
        }
        obs.instant("nothing");
        assert!(obs.metrics().is_none());
        assert!(obs.phase_timings().is_empty());
        assert_eq!(obs.export_prometheus(), "");
    }

    #[test]
    fn spans_aggregate_phase_timings() {
        let obs = Obs::new();
        for _ in 0..3 {
            let _s = obs.span("alpha");
        }
        {
            let _s = obs.span("beta");
        }
        let timings = obs.phase_timings();
        assert_eq!(timings.len(), 2);
        let alpha = timings.iter().find(|t| t.name == "alpha").unwrap();
        assert_eq!(alpha.count, 3);
        let beta = timings.iter().find(|t| t.name == "beta").unwrap();
        assert_eq!(beta.count, 1);
    }

    #[test]
    fn recorder_sees_balanced_events() {
        let rec = std::sync::Arc::new(ChromeTraceRecorder::new());
        let obs = Obs::builder().recorder_arc(rec.clone()).build();
        {
            let _outer = obs.span("outer");
            let _inner = obs.span("inner");
            obs.instant("tick");
        }
        let events = rec.events();
        // B outer, B inner, i tick, E inner, E outer.
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].phase, 'B');
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[2].phase, 'i');
        assert_eq!(events[4].phase, 'E');
        assert_eq!(events[4].name, "outer");
    }

    #[test]
    fn current_guard_nests_and_restores() {
        assert!(!current().enabled());
        let outer = Obs::new();
        {
            let _g1 = set_current(&outer);
            assert!(current().enabled());
            {
                let inner = Obs::disabled();
                let _g2 = set_current(&inner);
                assert!(!current().enabled());
            }
            assert!(current().enabled());
        }
        assert!(!current().enabled());
    }

    #[test]
    fn phase_delta_attributes_increments() {
        let obs = Obs::new();
        {
            let _s = obs.span("a");
        }
        let before = obs.phase_timings();
        {
            let _s = obs.span("a");
        }
        {
            let _s = obs.span("b");
        }
        let delta = phase_delta(&before, &obs.phase_timings());
        assert_eq!(delta.len(), 2);
        assert!(delta.iter().all(|p| p.count == 1));
    }

    #[test]
    fn export_prometheus_includes_phases_and_metrics() {
        let obs = Obs::new();
        obs.metrics().unwrap().counter("awdit_checks_total").add(2);
        {
            let _s = obs.span("saturate_cc");
        }
        let text = obs.export_prometheus();
        assert!(text.contains("awdit_checks_total 2"), "{text}");
        assert!(
            text.contains("awdit_phase_spans_total{phase=\"saturate_cc\"} 1"),
            "{text}"
        );
        assert!(crate::chrome::json_lint("{}").is_ok());
    }
}
