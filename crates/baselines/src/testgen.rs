//! Random history generation for differential testing.
//!
//! [`random_plausible_history`] produces histories whose reads always
//! observe *some* previously written value of the right key — so Read
//! Consistency holds by construction, and the interesting disagreements
//! between checkers (stale reads, fractured reads, causal violations) are
//! exercised rather than masked by thin-air rejections.
//! [`random_noisy_history`] additionally mixes in garbage reads and
//! aborted transactions to cover the Read Consistency paths.

use awdit_core::{History, HistoryBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for the random history generators.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct GenParams {
    /// Number of sessions.
    pub sessions: usize,
    /// Number of transactions.
    pub txns: usize,
    /// Number of distinct keys.
    pub keys: u64,
    /// Maximum operations per transaction.
    pub max_txn_ops: usize,
    /// Probability an operation is a read.
    pub read_ratio: f64,
    /// How far back reads look: 0.0 reads only the latest write of a key,
    /// 1.0 reads uniformly from all past writes.
    pub staleness: f64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            sessions: 3,
            txns: 10,
            keys: 4,
            max_txn_ops: 4,
            read_ratio: 0.5,
            staleness: 0.5,
        }
    }
}

/// Generates a read-consistent random history (see module docs). Verdicts
/// under RC/RA/CC vary with the seed.
pub fn random_plausible_history(seed: u64, params: GenParams) -> History {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = HistoryBuilder::new();
    let sessions: Vec<_> = (0..params.sessions).map(|_| b.session()).collect();
    // All values committed to each key so far (only final writes per txn,
    // so axiom (e) holds).
    let mut committed: Vec<Vec<u64>> = vec![Vec::new(); params.keys as usize];
    let mut next_value = 1u64;

    for _ in 0..params.txns {
        let s = sessions[rng.gen_range(0..params.sessions)];
        b.begin(s);
        let ops = rng.gen_range(1..=params.max_txn_ops);
        let mut pending: Vec<(u64, u64)> = Vec::new();
        let mut written_this_txn: Vec<u64> = Vec::new();
        for _ in 0..ops {
            let key = rng.gen_range(0..params.keys);
            let read = rng.gen_bool(params.read_ratio.clamp(0.0, 1.0));
            if read {
                let vs = &committed[key as usize];
                if let Some(&own) =
                    pending
                        .iter()
                        .rev()
                        .find_map(|(k, v)| if *k == key { Some(v) } else { None })
                {
                    // Reading after an own write must observe it.
                    b.read(s, key, own);
                } else if !vs.is_empty() {
                    let idx = if rng.gen_bool(params.staleness.clamp(0.0, 1.0)) {
                        rng.gen_range(0..vs.len())
                    } else {
                        vs.len() - 1
                    };
                    b.read(s, key, vs[idx]);
                }
                // No committed value yet: skip the read.
            } else if !written_this_txn.contains(&key) {
                // One write per key per transaction keeps every write
                // final (axiom (e)).
                let v = next_value;
                next_value += 1;
                b.write(s, key, v);
                pending.push((key, v));
                written_this_txn.push(key);
            }
        }
        b.commit(s);
        for (k, v) in pending {
            committed[k as usize].push(v);
        }
    }
    b.finish().expect("generator produces unique values")
}

/// Like [`random_plausible_history`] but with occasional thin-air reads,
/// stale-own-write patterns, and aborted transactions, to exercise the
/// Read Consistency axioms as well.
pub fn random_noisy_history(seed: u64, params: GenParams) -> History {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD00D);
    let mut b = HistoryBuilder::new();
    let sessions: Vec<_> = (0..params.sessions).map(|_| b.session()).collect();
    let mut committed: Vec<Vec<u64>> = vec![Vec::new(); params.keys as usize];
    let mut next_value = 1u64;
    let mut phantom = u64::MAX;

    for _ in 0..params.txns {
        let s = sessions[rng.gen_range(0..params.sessions)];
        b.begin(s);
        let ops = rng.gen_range(1..=params.max_txn_ops);
        let mut pending: Vec<(u64, u64)> = Vec::new();
        for _ in 0..ops {
            let key = rng.gen_range(0..params.keys);
            if rng.gen_bool(params.read_ratio.clamp(0.0, 1.0)) {
                if rng.gen_bool(0.1) {
                    // Thin-air read.
                    b.read(s, key, phantom);
                    phantom -= 1;
                } else {
                    let vs = &committed[key as usize];
                    if !vs.is_empty() {
                        b.read(s, key, vs[rng.gen_range(0..vs.len())]);
                    }
                }
            } else {
                let v = next_value;
                next_value += 1;
                b.write(s, key, v);
                pending.push((key, v));
            }
        }
        if rng.gen_bool(0.15) {
            b.abort(s);
        } else {
            b.commit(s);
            for (k, v) in pending {
                committed[k as usize].push(v);
            }
        }
    }
    b.finish().expect("generator produces unique values")
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::{check, check_read_consistency, IsolationLevel};

    #[test]
    fn plausible_histories_are_read_consistent() {
        for seed in 0..30 {
            let h = random_plausible_history(seed, GenParams::default());
            assert!(
                check_read_consistency(&h).is_empty(),
                "seed {seed} produced a read-inconsistent history"
            );
        }
    }

    #[test]
    fn plausible_histories_have_varied_verdicts() {
        let mut consistent = 0;
        let mut inconsistent = 0;
        for seed in 0..60 {
            let h = random_plausible_history(seed, GenParams::default());
            if check(&h, IsolationLevel::Causal).is_consistent() {
                consistent += 1;
            } else {
                inconsistent += 1;
            }
        }
        assert!(consistent > 5, "generator never consistent: {consistent}");
        assert!(
            inconsistent > 5,
            "generator never inconsistent: {inconsistent}"
        );
    }

    #[test]
    fn noisy_histories_build() {
        for seed in 0..20 {
            let h = random_noisy_history(seed, GenParams::default());
            // Must not panic; verdict may be anything.
            let _ = check(&h, IsolationLevel::ReadCommitted);
        }
    }
}
