//! # awdit-baselines — competitor isolation testers and reference oracles
//!
//! The AWDIT paper (Section 5) compares against every weak-isolation
//! tester from recent literature. This crate rebuilds them (or faithful
//! stand-ins preserving their algorithmic character) for the reproduction's
//! experiments, plus two slow-but-obviously-correct oracles used for
//! differential testing:
//!
//! | Module | Stands in for | Character |
//! |---|---|---|
//! | [`plume`] | Plume (Liu et al. 2024) | exhaustive TAP saturation, vector clocks, eager construction phase |
//! | [`dbcop`] | DBCop (Biswas & Enea 2019) | bitset transitive closure, CC only |
//! | [`sat`] | CausalC+/TCC-Mono/PolySI | commit order as SAT over `O(m³)` transitivity clauses (via `awdit-sat`) |
//! | [`naive`] | — | exhaustive-saturation and brute-force permutation oracles |
//!
//! All checkers are *sound and complete* for their levels; they differ
//! from AWDIT only in asymptotics, reproducing the performance spread of
//! the paper's Figs. 7–8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dbcop;
pub mod naive;
pub mod plume;
pub mod sat;
pub mod testgen;

pub use dbcop::check_dbcop_cc;
pub use naive::{check_bruteforce, check_naive, BRUTE_FORCE_LIMIT};
pub use plume::{check_plume, PlumeChecker, PlumeStats};
pub use sat::{check_sat, check_serializable_sat, DEFAULT_MAX_TXNS};
pub use testgen::{random_noisy_history, random_plausible_history, GenParams};
