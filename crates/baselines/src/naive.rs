//! Reference oracles for differential testing.
//!
//! * [`check_naive`] — exhaustive single-pass saturation in the style of
//!   Biswas & Enea 2019: enumerate *every* instance of the level's axiom
//!   premise (which only involves the fixed relations `po`, `so`, `wr`,
//!   and `(so ∪ wr)+`), add all implied commit edges, and test acyclicity.
//!   No minimality tricks; cubic-ish and obviously correct.
//! * [`check_bruteforce`] — for tiny histories, enumerate all permutations
//!   of the committed transactions and ask the independent axiom validator
//!   whether any is a witnessing commit order. The ground truth of ground
//!   truths.

use awdit_core::{
    base_commit_graph, check_read_consistency, validate_commit_order, EdgeKind, History,
    HistoryIndex, IsolationLevel, SessionId, TxnId,
};

/// Exhaustive-saturation consistency check (see module docs).
pub fn check_naive(history: &History, level: IsolationLevel) -> bool {
    if !check_read_consistency(history).is_empty() {
        return false;
    }
    let index = HistoryIndex::new(history);
    let mut g = base_commit_graph(&index);
    let m = index.num_committed();

    match level {
        IsolationLevel::ReadCommitted => {
            // For every pair of reads r (from t2) po-before r_x (from t1):
            // t2 writes r_x.key ∧ t1 ≠ t2 ⇒ t2 → t1.
            for t3 in 0..m as u32 {
                let reads = index.ext_reads(t3);
                for (i, r) in reads.iter().enumerate() {
                    let t2 = r.writer;
                    for rx in &reads[i + 1..] {
                        let t1 = rx.writer;
                        if t1 != t2 && index.writes_key(t2, rx.key) {
                            g.add_edge(t2, t1, EdgeKind::Inferred(rx.key));
                        }
                    }
                }
            }
        }
        IsolationLevel::ReadAtomic => {
            // Visible set = all session predecessors ∪ all direct writers.
            for t3 in 0..m as u32 {
                let visible = ra_visible(&index, t3);
                infer_from_visible(&index, &mut g, t3, &visible);
            }
        }
        IsolationLevel::Causal => {
            // Visible set = all happens-before predecessors, via per-node
            // reverse reachability over so ∪ wr.
            if g.topological_order().is_none() {
                return false;
            }
            let preds = predecessor_lists(&index);
            for t3 in 0..m as u32 {
                let visible = hb_visible(&preds, m, t3);
                infer_from_visible(&index, &mut g, t3, &visible);
            }
        }
    }
    g.is_acyclic()
}

fn ra_visible(index: &HistoryIndex, t3: u32) -> Vec<u32> {
    let mut vis = Vec::new();
    let tid = index.txn_id(t3);
    let list = index.session_committed(SessionId(tid.session));
    let pos = index.committed_pos(t3) as usize;
    vis.extend_from_slice(&list[..pos]);
    for r in index.ext_reads(t3) {
        vis.push(r.writer);
    }
    vis.sort_unstable();
    vis.dedup();
    vis
}

fn predecessor_lists(index: &HistoryIndex) -> Vec<Vec<u32>> {
    let m = index.num_committed();
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); m];
    for s in 0..index.num_sessions() {
        let list = index.session_committed(SessionId(s as u32));
        for w in list.windows(2) {
            preds[w[1] as usize].push(w[0]);
        }
    }
    for t in 0..m as u32 {
        for r in index.ext_reads(t) {
            preds[t as usize].push(r.writer);
        }
    }
    preds
}

fn hb_visible(preds: &[Vec<u32>], m: usize, t3: u32) -> Vec<u32> {
    let mut seen = vec![false; m];
    let mut stack = preds[t3 as usize].clone();
    let mut out = Vec::new();
    while let Some(v) = stack.pop() {
        if seen[v as usize] || v == t3 {
            continue;
        }
        seen[v as usize] = true;
        out.push(v);
        stack.extend_from_slice(&preds[v as usize]);
    }
    out
}

fn infer_from_visible(
    index: &HistoryIndex,
    g: &mut awdit_core::CommitGraph,
    t3: u32,
    visible: &[u32],
) {
    for &(x, t1) in index.read_pairs(t3) {
        for &t2 in visible {
            if t2 != t1 && index.writes_key(t2, x) {
                g.add_edge(t2, t1, EdgeKind::Inferred(x));
            }
        }
    }
}

/// Maximum committed transactions [`check_bruteforce`] will attempt.
pub const BRUTE_FORCE_LIMIT: usize = 8;

/// Brute-force oracle: tries every permutation of the committed
/// transactions as a commit order. Returns `None` if the history has more
/// than [`BRUTE_FORCE_LIMIT`] committed transactions.
pub fn check_bruteforce(history: &History, level: IsolationLevel) -> Option<bool> {
    if history.num_committed() > BRUTE_FORCE_LIMIT {
        return None;
    }
    if !check_read_consistency(history).is_empty() {
        return Some(false);
    }
    let ids: Vec<TxnId> = history.committed_txns().map(|(t, _)| t).collect();
    let mut perm = ids.clone();
    Some(permutations_any(&mut perm, 0, &mut |order| {
        validate_commit_order(history, level, order).is_ok()
    }))
}

fn permutations_any(
    items: &mut [TxnId],
    k: usize,
    pred: &mut impl FnMut(&[TxnId]) -> bool,
) -> bool {
    if k == items.len() {
        return pred(items);
    }
    for i in k..items.len() {
        items.swap(k, i);
        if permutations_any(items, k + 1, pred) {
            items.swap(k, i);
            return true;
        }
        items.swap(k, i);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::{check, HistoryBuilder};

    fn fig4b() -> History {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let (x, y) = (0, 1);
        b.begin(s1);
        b.write(s1, x, 1);
        b.commit(s1);
        b.begin(s1);
        b.write(s1, x, 2);
        b.write(s1, y, 2);
        b.commit(s1);
        b.begin(s2);
        b.read(s2, x, 1);
        b.read(s2, y, 2);
        b.commit(s2);
        b.finish().unwrap()
    }

    #[test]
    fn oracles_agree_on_fig4b() {
        let h = fig4b();
        assert!(check_naive(&h, IsolationLevel::ReadCommitted));
        assert!(!check_naive(&h, IsolationLevel::ReadAtomic));
        assert!(!check_naive(&h, IsolationLevel::Causal));
        assert_eq!(
            check_bruteforce(&h, IsolationLevel::ReadCommitted),
            Some(true)
        );
        assert_eq!(
            check_bruteforce(&h, IsolationLevel::ReadAtomic),
            Some(false)
        );
        assert_eq!(check_bruteforce(&h, IsolationLevel::Causal), Some(false));
    }

    #[test]
    fn oracles_agree_with_awdit_on_random_small_histories() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..60 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut b = HistoryBuilder::new();
            let sessions: Vec<_> = (0..3).map(|_| b.session()).collect();
            let mut value = 1u64;
            for _ in 0..6 {
                let s = sessions[rng.gen_range(0..3)];
                b.begin(s);
                for _ in 0..rng.gen_range(1..4) {
                    let key = rng.gen_range(0..3);
                    if rng.gen_bool(0.5) {
                        b.write(s, key, value);
                        value += 1;
                    } else {
                        // Read a random previously-written value (or a
                        // fresh bogus one occasionally).
                        let v = rng.gen_range(0..value.max(2));
                        b.read(s, key, v);
                    }
                }
                b.commit(s);
            }
            let h = b.finish().unwrap();
            for level in IsolationLevel::ALL {
                let fast = check(&h, level).is_consistent();
                let slow = check_naive(&h, level);
                assert_eq!(fast, slow, "seed {seed} level {level} (naive)");
                if let Some(brute) = check_bruteforce(&h, level) {
                    assert_eq!(fast, brute, "seed {seed} level {level} (brute)");
                }
            }
        }
    }

    #[test]
    fn brute_force_respects_limit() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        for i in 0..(BRUTE_FORCE_LIMIT as u64 + 1) {
            b.begin(s);
            b.write(s, i, i);
            b.commit(s);
        }
        let h = b.finish().unwrap();
        assert_eq!(check_bruteforce(&h, IsolationLevel::Causal), None);
    }
}
