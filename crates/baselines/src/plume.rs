//! A Plume-style baseline checker (after Liu et al., OOPSLA 2024).
//!
//! Plume checks weak isolation levels by enumerating *Transactional
//! Anomalous Patterns* over an eagerly constructed dependency graph, using
//! vector clocks for happens-before. It is sound and complete but — unlike
//! AWDIT — performs **no minimality pruning**: every instance of an axiom
//! premise becomes an explicit edge, and its up-front construction phase
//! dominates on easy inputs (both effects are visible in the paper's
//! Figs. 7–8).
//!
//! This reimplementation preserves exactly those characteristics:
//!
//! * a construction phase that materializes the full dependency state
//!   (indexes, per-transaction key sets, the complete happens-before
//!   clock table for CC);
//! * exhaustive saturation — `O(Σ|t|²)` read pairs for RC, all session
//!   predecessors for RA's `so` case, every visible writer (not just the
//!   latest) for CC;
//! * a final monolithic cycle check.

use awdit_core::{
    base_commit_graph, check_read_consistency, compute_hb, CommitGraph, EdgeKind, History,
    HistoryIndex, IsolationLevel, SessionId, VectorClock,
};

/// Statistics from a Plume-style run, for the benchmark harness.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct PlumeStats {
    /// Edges in the saturated dependency graph.
    pub edges: usize,
    /// Committed transactions processed.
    pub txns: usize,
}

/// The Plume-style checker. Holds the constructed dependency state so the
/// construction and solving phases can be timed separately (the paper's
/// Fig. 8 discussion).
#[derive(Debug)]
pub struct PlumeChecker<'h> {
    history: &'h History,
    index: HistoryIndex,
    read_consistent: bool,
    /// Topological order of `so ∪ wr`, or `None` if cyclic.
    topo: Option<Vec<u32>>,
    /// The full happens-before clock table — Plume's pipeline materializes
    /// its dependency graph (vector/tree clocks included) for *every*
    /// level, which is why its construction phase dominates on easy inputs
    /// (the paper's Fig. 8 discussion).
    clocks: Vec<VectorClock>,
}

impl<'h> PlumeChecker<'h> {
    /// Construction phase: build all dependency state eagerly — indexes,
    /// the base dependency graph, and the happens-before clock table.
    pub fn construct(history: &'h History) -> Self {
        let read_consistent = check_read_consistency(history).is_empty();
        let index = HistoryIndex::new(history);
        let g = base_commit_graph(&index);
        let topo = g.topological_order();
        let clocks = match &topo {
            Some(t) => compute_hb(&index, &g, t),
            None => Vec::new(),
        };
        PlumeChecker {
            history,
            index,
            read_consistent,
            topo,
            clocks,
        }
    }

    /// Solving phase: saturate exhaustively and check for cycles.
    pub fn solve(&self, level: IsolationLevel) -> bool {
        self.solve_with_stats(level).0
    }

    /// Solving phase, also reporting graph statistics.
    pub fn solve_with_stats(&self, level: IsolationLevel) -> (bool, PlumeStats) {
        let mut stats = PlumeStats {
            txns: self.index.num_committed(),
            ..PlumeStats::default()
        };
        if !self.read_consistent {
            return (false, stats);
        }
        let index = &self.index;
        let mut g = base_commit_graph(index);
        let m = index.num_committed();

        match level {
            IsolationLevel::ReadCommitted => {
                for t3 in 0..m as u32 {
                    let reads = index.ext_reads(t3);
                    for (i, r) in reads.iter().enumerate() {
                        let t2 = r.writer;
                        for rx in &reads[i + 1..] {
                            let t1 = rx.writer;
                            if t1 != t2 && index.writes_key(t2, rx.key) {
                                g.add_edge(t2, t1, EdgeKind::Inferred(rx.key));
                            }
                        }
                    }
                }
            }
            IsolationLevel::ReadAtomic => {
                for t3 in 0..m as u32 {
                    // so case, exhaustively over *all* session predecessors.
                    let tid = index.txn_id(t3);
                    let list = index.session_committed(SessionId(tid.session));
                    let pos = index.committed_pos(t3) as usize;
                    for &t2 in &list[..pos] {
                        self.infer_all_keys(&mut g, t2, t3);
                    }
                    // wr case, without writer deduplication.
                    for r in index.ext_reads(t3) {
                        self.infer_all_keys(&mut g, r.writer, t3);
                    }
                }
            }
            IsolationLevel::Causal => {
                if self.topo.is_none() {
                    return (false, stats);
                }
                let clocks = &self.clocks;
                let k = index.num_sessions();
                for t3 in 0..m as u32 {
                    let clock = &clocks[t3 as usize];
                    let own = index.txn_id(t3).session;
                    for &(x, t1) in index.read_pairs(t3) {
                        for s in 0..k as u32 {
                            let bound = if s == own {
                                clock.get(s as usize).saturating_sub(1)
                            } else {
                                clock.get(s as usize)
                            };
                            // Every visible writer gets an edge — no
                            // latest-writer minimality.
                            for &t2 in index.session_writes(s, x) {
                                if index.committed_pos(t2) >= bound {
                                    break;
                                }
                                if t2 != t1 {
                                    g.add_edge(t2, t1, EdgeKind::Inferred(x));
                                }
                            }
                        }
                    }
                }
            }
        }
        stats.edges = g.num_edges();
        (g.is_acyclic(), stats)
    }

    fn infer_all_keys(&self, g: &mut CommitGraph, t2: u32, t3: u32) {
        // Full scan of KeysWt(t2) against *all* (key, writer) read pairs —
        // no smaller-set selection, and complete even when t3 reads a key
        // from several writers (a repeatable-reads violation then closes a
        // cycle between the writers).
        let pairs = self.index.read_pairs(t3);
        for &x in self.index.keys_written(t2) {
            let lo = pairs.partition_point(|&(k, _)| k < x);
            for &(k, t1) in &pairs[lo..] {
                if k != x {
                    break;
                }
                if t1 != t2 {
                    g.add_edge(t2, t1, EdgeKind::Inferred(x));
                }
            }
        }
    }

    /// The history being checked.
    pub fn history(&self) -> &History {
        self.history
    }
}

/// One-shot convenience: construct + solve.
pub fn check_plume(history: &History, level: IsolationLevel) -> bool {
    PlumeChecker::construct(history).solve(level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::check_naive;
    use crate::testgen::{random_plausible_history, GenParams};
    use awdit_core::check;

    #[test]
    fn plume_agrees_with_awdit_and_naive_on_random_histories() {
        for seed in 0..40 {
            let h = random_plausible_history(seed, GenParams::default());
            for level in IsolationLevel::ALL {
                let awdit = check(&h, level).is_consistent();
                let plume = check_plume(&h, level);
                let naive = check_naive(&h, level);
                assert_eq!(awdit, plume, "seed {seed} level {level} (plume)");
                assert_eq!(awdit, naive, "seed {seed} level {level} (naive)");
            }
        }
    }

    #[test]
    fn construction_and_solve_phases_are_separable() {
        let h = random_plausible_history(
            1,
            GenParams {
                sessions: 4,
                txns: 20,
                keys: 6,
                ..GenParams::default()
            },
        );
        let checker = PlumeChecker::construct(&h);
        for level in IsolationLevel::ALL {
            let (ok, stats) = checker.solve_with_stats(level);
            assert_eq!(ok, check(&h, level).is_consistent());
            assert!(stats.edges > 0);
            assert_eq!(stats.txns, h.num_committed());
        }
    }

    #[test]
    fn plume_adds_at_least_as_many_edges_as_awdit() {
        // Non-minimal saturation must produce at least as many edges.
        let h = random_plausible_history(
            7,
            GenParams {
                sessions: 4,
                txns: 40,
                keys: 3,
                staleness: 0.0, // keep it consistent so both saturate fully
                ..GenParams::default()
            },
        );
        let checker = PlumeChecker::construct(&h);
        let (_, stats) = checker.solve_with_stats(IsolationLevel::Causal);
        let awdit_stats = check(&h, IsolationLevel::Causal).stats();
        assert!(
            stats.edges >= awdit_stats.graph_edges,
            "plume {} < awdit {}",
            stats.edges,
            awdit_stats.graph_edges
        );
    }
}
