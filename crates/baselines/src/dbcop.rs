//! A DBCop-style Causal Consistency checker (after Biswas & Enea, OOPSLA
//! 2019).
//!
//! DBCop checks CC by computing the full transitive closure of `so ∪ wr`
//! and then saturating the commit relation against it. The closure is the
//! dominating cost: stored as one bitset per transaction, it takes
//! `O(m²/64)` space and `O(m·e/64)` time — polynomial, but a full factor
//! of `m` behind AWDIT's vector-clock representation, which is exactly the
//! scaling gap Fig. 7 shows.

use awdit_core::{base_commit_graph, check_read_consistency, EdgeKind, History, HistoryIndex};

/// A dense bitset over transaction ids.
#[derive(Clone, Debug)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    #[inline]
    fn set(&mut self, i: u32) {
        self.words[(i / 64) as usize] |= 1 << (i % 64);
    }

    #[inline]
    fn get(&self, i: u32) -> bool {
        self.words[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    fn union_with(&mut self, other: &BitSet) {
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

/// DBCop-style CC check: bitset transitive closure + exhaustive
/// saturation. Returns `true` iff the history satisfies Causal
/// Consistency.
pub fn check_dbcop_cc(history: &History) -> bool {
    if !check_read_consistency(history).is_empty() {
        return false;
    }
    let index = HistoryIndex::new(history);
    let mut g = base_commit_graph(&index);
    let m = index.num_committed();
    let topo = match g.topological_order() {
        Some(t) => t,
        None => return false,
    };

    // Transitive closure of so ∪ wr in reverse topological order:
    // reach[v] = ⋃ over successors w of ({w} ∪ reach[w]).
    let mut reach: Vec<BitSet> = vec![BitSet::new(m); m];
    for &v in topo.iter().rev() {
        let mut r = BitSet::new(m);
        for &(w, _) in g.successors(v) {
            r.set(w);
            r.union_with(&reach[w as usize]);
        }
        reach[v as usize] = r;
    }

    // Saturation: for each read (x, t1) of t3 and every t2 writing x with
    // t2 →+ t3 (closure membership), add t2 → t1.
    let mut writers_of: std::collections::HashMap<awdit_core::Key, Vec<u32>> =
        std::collections::HashMap::new();
    for t in 0..m as u32 {
        for &x in index.keys_written(t) {
            writers_of.entry(x).or_default().push(t);
        }
    }
    for t3 in 0..m as u32 {
        for &(x, t1) in index.read_pairs(t3) {
            if let Some(ws) = writers_of.get(&x) {
                for &t2 in ws {
                    if t2 != t1 && t2 != t3 && reach[t2 as usize].get(t3) {
                        g.add_edge(t2, t1, EdgeKind::Inferred(x));
                    }
                }
            }
        }
    }
    g.is_acyclic()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testgen::{random_noisy_history, random_plausible_history, GenParams};
    use awdit_core::{check, IsolationLevel};

    #[test]
    fn agrees_with_awdit_on_random_histories() {
        for seed in 0..40 {
            let h = random_plausible_history(
                seed,
                GenParams {
                    sessions: 4,
                    txns: 12,
                    ..GenParams::default()
                },
            );
            assert_eq!(
                check_dbcop_cc(&h),
                check(&h, IsolationLevel::Causal).is_consistent(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn agrees_with_awdit_on_noisy_histories() {
        for seed in 0..25 {
            let h = random_noisy_history(seed, GenParams::default());
            assert_eq!(
                check_dbcop_cc(&h),
                check(&h, IsolationLevel::Causal).is_consistent(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn bitset_basics() {
        let mut a = BitSet::new(130);
        a.set(0);
        a.set(64);
        a.set(129);
        assert!(a.get(0) && a.get(64) && a.get(129));
        assert!(!a.get(1) && !a.get(65));
        let mut b = BitSet::new(130);
        b.set(65);
        b.union_with(&a);
        assert!(b.get(65) && b.get(129));
    }
}
