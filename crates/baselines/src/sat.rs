//! A SAT-encoded isolation checker — the stand-in for the MonoSAT-backed
//! baselines (CausalC+, TCC-Mono, PolySI).
//!
//! The existence of a witnessing commit order is encoded propositionally:
//! one variable per unordered transaction pair (`before(i, j)`), `O(m³)`
//! transitivity clauses, unit clauses for `so ∪ wr`, and unit clauses for
//! every axiom-implied ordering (the premises are fixed relations, so all
//! axiom constraints are units — the hardness is entirely in the eager
//! transitivity encoding, which is precisely why these tools scale poorly
//! in the paper's Fig. 7).

use awdit_core::{
    base_commit_graph, check_read_consistency, EdgeKind, History, HistoryIndex, IsolationLevel,
    SessionId,
};
use awdit_sat::{Lit, Solver, Var};

/// Default cap on committed transactions before the encoder refuses (the
/// `O(m³)` clause count dominates memory beyond this).
pub const DEFAULT_MAX_TXNS: usize = 220;

/// SAT-based consistency check. Returns `None` if the history exceeds
/// `max_txns` committed transactions (modeling the baselines' timeouts) —
/// otherwise `Some(consistent)`.
pub fn check_sat(history: &History, level: IsolationLevel, max_txns: usize) -> Option<bool> {
    let m = history.num_committed();
    if m > max_txns {
        return None;
    }
    if !check_read_consistency(history).is_empty() {
        return Some(false);
    }
    let index = HistoryIndex::new(history);
    let mut solver = Solver::new();

    // before(i, j) for i < j; before(j, i) = ¬before(i, j).
    let mut vars: Vec<Var> = Vec::with_capacity(m * (m.saturating_sub(1)) / 2);
    for _ in 0..m * m.saturating_sub(1) / 2 {
        vars.push(solver.new_var());
    }
    let pair = |i: u32, j: u32| -> usize {
        let (i, j) = (i as usize, j as usize);
        debug_assert!(i < j);
        // Index into the upper-triangle enumeration.
        i * m - i * (i + 1) / 2 + (j - i - 1)
    };
    let before = |i: u32, j: u32| -> Lit {
        if i < j {
            Lit::pos(vars[pair(i, j)])
        } else {
            Lit::neg(vars[pair(j, i)])
        }
    };

    // Transitivity: before(a,b) ∧ before(b,c) → before(a,c), for all
    // ordered triples of distinct transactions.
    for a in 0..m as u32 {
        for b in 0..m as u32 {
            if b == a {
                continue;
            }
            for c in 0..m as u32 {
                if c == a || c == b {
                    continue;
                }
                solver.add_clause([before(a, b).negate(), before(b, c).negate(), before(a, c)]);
            }
        }
    }

    // so ∪ wr as unit clauses.
    let base = base_commit_graph(&index);
    for v in 0..m as u32 {
        for &(w, _) in base.successors(v) {
            if v != w {
                solver.add_clause([before(v, w)]);
            }
        }
    }

    // Axiom-implied orderings as units (premises are fixed).
    let mut add_unit = |t2: u32, t1: u32| {
        if t2 != t1 {
            solver.add_clause([before(t2, t1)]);
        }
    };
    match level {
        IsolationLevel::ReadCommitted => {
            for t3 in 0..m as u32 {
                let reads = index.ext_reads(t3);
                for (i, r) in reads.iter().enumerate() {
                    let t2 = r.writer;
                    for rx in &reads[i + 1..] {
                        if rx.writer != t2 && index.writes_key(t2, rx.key) {
                            add_unit(t2, rx.writer);
                        }
                    }
                }
            }
        }
        IsolationLevel::ReadAtomic => {
            for t3 in 0..m as u32 {
                let tid = index.txn_id(t3);
                let list = index.session_committed(SessionId(tid.session));
                let pos = index.committed_pos(t3) as usize;
                let mut visible: Vec<u32> = list[..pos].to_vec();
                visible.extend(index.ext_reads(t3).iter().map(|r| r.writer));
                visible.sort_unstable();
                visible.dedup();
                for &(x, t1) in index.read_pairs(t3) {
                    for &t2 in &visible {
                        if t2 != t1 && index.writes_key(t2, x) {
                            add_unit(t2, t1);
                        }
                    }
                }
            }
        }
        IsolationLevel::Causal => {
            // hb reachability by per-node DFS over predecessors.
            let mut preds: Vec<Vec<u32>> = vec![Vec::new(); m];
            for s in 0..index.num_sessions() {
                let list = index.session_committed(SessionId(s as u32));
                for w in list.windows(2) {
                    preds[w[1] as usize].push(w[0]);
                }
            }
            for t in 0..m as u32 {
                for r in index.ext_reads(t) {
                    preds[t as usize].push(r.writer);
                }
            }
            for t3 in 0..m as u32 {
                let mut seen = vec![false; m];
                let mut stack = preds[t3 as usize].clone();
                let mut visible = Vec::new();
                while let Some(v) = stack.pop() {
                    if seen[v as usize] || v == t3 {
                        continue;
                    }
                    seen[v as usize] = true;
                    visible.push(v);
                    stack.extend_from_slice(&preds[v as usize]);
                }
                for &(x, t1) in index.read_pairs(t3) {
                    for &t2 in &visible {
                        if t2 != t1 && index.writes_key(t2, x) {
                            add_unit(t2, t1);
                        }
                    }
                }
            }
        }
    }
    let _ = EdgeKind::SessionOrder; // (edge labels unused by the encoding)
    Some(solver.solve())
}

/// SAT-based **serializability** check — the paper's conclusion points at
/// stronger levels as future work; testing them is NP-complete
/// (Papadimitriou 1979), which is exactly where a CDCL solver earns its
/// keep: unlike the weak levels above, the axiom constraints here are real
/// clauses, not units.
///
/// A history is serializable iff there is a total order `co ⊇ so ∪ wr`
/// such that every external read of `x` observes the `co`-latest write of
/// `x` before it: for a read `t1 →wr_x→ t3` and any other writer `t2` of
/// `x`, forbid `t1 <co t2 <co t3` — the clause
/// `¬before(t1,t2) ∨ ¬before(t2,t3)`.
///
/// Returns `None` above `max_txns` committed transactions.
pub fn check_serializable_sat(history: &History, max_txns: usize) -> Option<bool> {
    let m = history.num_committed();
    if m > max_txns {
        return None;
    }
    if !check_read_consistency(history).is_empty() {
        return Some(false);
    }
    let index = HistoryIndex::new(history);
    let mut solver = Solver::new();
    let mut vars: Vec<Var> = Vec::with_capacity(m * m.saturating_sub(1) / 2);
    for _ in 0..m * m.saturating_sub(1) / 2 {
        vars.push(solver.new_var());
    }
    let pair = |i: u32, j: u32| -> usize {
        let (i, j) = (i as usize, j as usize);
        i * m - i * (i + 1) / 2 + (j - i - 1)
    };
    let before = |i: u32, j: u32| -> Lit {
        if i < j {
            Lit::pos(vars[pair(i, j)])
        } else {
            Lit::neg(vars[pair(j, i)])
        }
    };
    for a in 0..m as u32 {
        for b in 0..m as u32 {
            if b == a {
                continue;
            }
            for c in 0..m as u32 {
                if c == a || c == b {
                    continue;
                }
                solver.add_clause([before(a, b).negate(), before(b, c).negate(), before(a, c)]);
            }
        }
    }
    let base = base_commit_graph(&index);
    for v in 0..m as u32 {
        for &(w, _) in base.successors(v) {
            if v != w {
                solver.add_clause([before(v, w)]);
            }
        }
    }
    // Read freshness: no other writer of x may fall between the read's
    // writer and the reader.
    for t3 in 0..m as u32 {
        for &(x, t1) in index.read_pairs(t3) {
            for (_, writers) in index.key_writes(x) {
                for &t2 in writers {
                    if t2 != t1 && t2 != t3 {
                        solver.add_clause([before(t1, t2).negate(), before(t2, t3).negate()]);
                    }
                }
            }
        }
    }
    Some(solver.solve())
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::{check, HistoryBuilder};

    #[test]
    fn agrees_with_awdit_on_random_histories() {
        use crate::testgen::{random_plausible_history, GenParams};
        for seed in 0..25 {
            let h = random_plausible_history(
                seed,
                GenParams {
                    txns: 8,
                    ..GenParams::default()
                },
            );
            for level in IsolationLevel::ALL {
                let expected = check(&h, level).is_consistent();
                assert_eq!(
                    check_sat(&h, level, DEFAULT_MAX_TXNS),
                    Some(expected),
                    "seed {seed} level {level}"
                );
            }
        }
    }

    #[test]
    fn respects_txn_cap() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        for i in 0..5u64 {
            b.begin(s);
            b.write(s, i, i);
            b.commit(s);
        }
        let h = b.finish().unwrap();
        assert_eq!(check_sat(&h, IsolationLevel::Causal, 3), None);
        assert_eq!(check_sat(&h, IsolationLevel::Causal, 5), Some(true));
    }

    #[test]
    fn serializable_accepts_serial_history() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        b.begin(s1);
        b.write(s1, 0, 1);
        b.commit(s1);
        b.begin(s2);
        b.read(s2, 0, 1);
        b.write(s2, 0, 2);
        b.commit(s2);
        b.begin(s1);
        b.read(s1, 0, 2);
        b.commit(s1);
        let h = b.finish().unwrap();
        assert_eq!(check_serializable_sat(&h, 100), Some(true));
    }

    #[test]
    fn write_skew_is_not_serializable_but_causal() {
        // Classic write skew: both transactions read both keys' initial
        // versions and each overwrites one of them.
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        let s2 = b.session();
        b.begin(s0);
        b.write(s0, 0, 10);
        b.write(s0, 1, 20);
        b.commit(s0);
        b.begin(s1);
        b.read(s1, 0, 10);
        b.read(s1, 1, 20);
        b.write(s1, 0, 11);
        b.commit(s1);
        b.begin(s2);
        b.read(s2, 0, 10);
        b.read(s2, 1, 20);
        b.write(s2, 1, 21);
        b.commit(s2);
        let h = b.finish().unwrap();
        assert_eq!(check_serializable_sat(&h, 100), Some(false));
        // ... yet causally consistent (and hence RA/RC too).
        assert!(check(&h, IsolationLevel::Causal).is_consistent());
    }

    #[test]
    fn fig4d_is_causal_but_not_serializable() {
        // Example 2.9 notes Fig. 4d is CC-consistent yet non-serializable.
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let s3 = b.session();
        let x = 0;
        b.begin(s1);
        b.write(s1, x, 1);
        b.commit(s1);
        b.begin(s2);
        b.read(s2, x, 1);
        b.write(s2, x, 2);
        b.commit(s2);
        b.begin(s1);
        b.read(s1, x, 2);
        b.commit(s1);
        b.begin(s3);
        b.read(s3, x, 1);
        b.write(s3, x, 3);
        b.commit(s3);
        b.begin(s3);
        b.read(s3, x, 3);
        b.commit(s3);
        let h = b.finish().unwrap();
        assert!(check(&h, IsolationLevel::Causal).is_consistent());
        assert_eq!(check_serializable_sat(&h, 100), Some(false));
    }

    #[test]
    fn serializability_implies_all_weak_levels() {
        use crate::testgen::{random_plausible_history, GenParams};
        for seed in 0..30 {
            let h = random_plausible_history(
                seed,
                GenParams {
                    txns: 7,
                    ..GenParams::default()
                },
            );
            if check_serializable_sat(&h, 64) == Some(true) {
                for level in IsolationLevel::ALL {
                    assert!(
                        check(&h, level).is_consistent(),
                        "seed {seed}: serializable history violates {level}"
                    );
                }
            }
        }
    }
}
