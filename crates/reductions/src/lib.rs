//! # awdit-reductions — the paper's lower-bound constructions
//!
//! Section 4 of the AWDIT paper proves `n^{3/2}` conditional lower bounds
//! for weak isolation testing by *fine-grained reductions* from triangle
//! freeness: an undirected graph `G` becomes a history `H(G)` such that
//! `H(G)` satisfies the isolation level iff `G` is triangle-free.
//!
//! This crate implements the graph substrate ([`UndirectedGraph`], with
//! reference triangle finders including the classic `O(m^{3/2})`
//! degree-ordered counter) and all three constructions:
//!
//! | Construction | Sessions | Level | Paper |
//! |---|---|---|---|
//! | [`general_reduction`] | one per transaction | any `CC ⊑ I ⊑ RC` | Thm. 1.3, Fig. 5 |
//! | [`ra_two_session_reduction`] | 2 | RA | Thm. 1.4, Fig. 6 |
//! | [`rc_one_session_reduction`] | 1 | RC | Thm. 1.5 |
//!
//! Besides exhibiting the lower-bound instances (the benches use them as
//! adversarial inputs), the equivalence doubles as a correctness oracle:
//! checking `H(G)` must agree with an independent triangle search.
//!
//! ```
//! use awdit_core::{check, IsolationLevel};
//! use awdit_reductions::{general_reduction, UndirectedGraph};
//!
//! let mut g = UndirectedGraph::cycle(5); // triangle-free
//! let h = general_reduction(&g);
//! assert!(check(&h, IsolationLevel::Causal).is_consistent());
//! assert!(!g.has_triangle());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod construct;
pub mod graph;

pub use construct::{general_reduction, ra_two_session_reduction, rc_one_session_reduction};
pub use graph::UndirectedGraph;
