//! Undirected graphs and triangle detection: the substrate for the
//! fine-grained reductions of Section 4.
//!
//! The reductions map triangle-freeness to isolation-consistency, so this
//! module provides both sides' ground truth: graph generators (random,
//! bipartite, planted-triangle) and reference triangle finders.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A simple undirected graph on nodes `0..n`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UndirectedGraph {
    n: usize,
    edges: Vec<(u32, u32)>,
    adj: Vec<Vec<u32>>,
}

impl UndirectedGraph {
    /// An empty graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        UndirectedGraph {
            n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges, as `(min, max)` pairs in insertion order.
    #[inline]
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Neighbors of `v`, sorted after any triangle query (e.g.
    /// [`has_triangle`](Self::has_triangle)).
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Adds the undirected edge `{a, b}`. Self-loops and duplicates are
    /// ignored.
    ///
    /// # Panics
    ///
    /// Panics if a node is out of range.
    pub fn add_edge(&mut self, a: u32, b: u32) {
        assert!((a as usize) < self.n && (b as usize) < self.n);
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if self.adj[lo as usize].contains(&hi) {
            return;
        }
        self.adj[lo as usize].push(hi);
        self.adj[hi as usize].push(lo);
        self.edges.push((lo, hi));
    }

    /// Sorts adjacency lists (idempotent; called by the detectors).
    fn sort_adj(&mut self) {
        for l in &mut self.adj {
            l.sort_unstable();
        }
    }

    /// Reference triangle test: for each edge `{a, b}`, intersect the
    /// neighborhoods. `O(m · Δ)` where `Δ` is the max degree.
    pub fn has_triangle(&mut self) -> bool {
        self.find_triangle().is_some()
    }

    /// Like [`has_triangle`](Self::has_triangle) but returns a witness.
    pub fn find_triangle(&mut self) -> Option<(u32, u32, u32)> {
        self.sort_adj();
        let mut mark = vec![false; self.n];
        for &(a, b) in &self.edges {
            for &x in &self.adj[a as usize] {
                mark[x as usize] = true;
            }
            for &c in &self.adj[b as usize] {
                if c != a && mark[c as usize] {
                    for &x in &self.adj[a as usize] {
                        mark[x as usize] = false;
                    }
                    return Some((a, b, c));
                }
            }
            for &x in &self.adj[a as usize] {
                mark[x as usize] = false;
            }
        }
        None
    }

    /// Counts triangles (each once) with the degree-ordering technique —
    /// the classic `O(m^{3/2})` combinatorial algorithm, matching the
    /// complexity class the paper's lower bound is calibrated against.
    pub fn count_triangles(&mut self) -> u64 {
        self.sort_adj();
        // Orient each edge from lower-(degree, id) to higher-(degree, id).
        let rank = |v: u32| (self.adj[v as usize].len(), v);
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); self.n];
        for &(a, b) in &self.edges {
            if rank(a) < rank(b) {
                out[a as usize].push(b);
            } else {
                out[b as usize].push(a);
            }
        }
        let mut mark = vec![false; self.n];
        let mut count = 0u64;
        for v in 0..self.n as u32 {
            for &w in &out[v as usize] {
                mark[w as usize] = true;
            }
            for &w in &out[v as usize] {
                for &x in &out[w as usize] {
                    if mark[x as usize] {
                        count += 1;
                    }
                }
            }
            for &w in &out[v as usize] {
                mark[w as usize] = false;
            }
        }
        count
    }

    /// Erdős–Rényi random graph `G(n, p)`.
    pub fn random(n: usize, p: f64, seed: u64) -> Self {
        let mut g = UndirectedGraph::new(n);
        let mut rng = SmallRng::seed_from_u64(seed);
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    g.add_edge(a, b);
                }
            }
        }
        g
    }

    /// A random graph with a fixed number of edges (sparse-friendly).
    pub fn random_with_edges(n: usize, m: usize, seed: u64) -> Self {
        let mut g = UndirectedGraph::new(n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut attempts = 0;
        while g.num_edges() < m && attempts < 20 * m + 100 {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            g.add_edge(a, b);
            attempts += 1;
        }
        g
    }

    /// A random *bipartite* graph: triangle-free by construction.
    pub fn random_bipartite(n: usize, p: f64, seed: u64) -> Self {
        let mut g = UndirectedGraph::new(n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let half = n / 2;
        for a in 0..half as u32 {
            for b in half as u32..n as u32 {
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    g.add_edge(a, b);
                }
            }
        }
        g
    }

    /// The cycle graph `C_n` (triangle-free for `n ≥ 4` or `n < 3`).
    pub fn cycle(n: usize) -> Self {
        let mut g = UndirectedGraph::new(n);
        if n >= 2 {
            for v in 0..n as u32 {
                g.add_edge(v, (v + 1) % n as u32);
            }
        }
        g
    }

    /// Plants a triangle on three random nodes (no-op if `n < 3`).
    pub fn plant_triangle(&mut self, seed: u64) {
        if self.n < 3 {
            return;
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = rng.gen_range(0..self.n as u32);
        let mut b = rng.gen_range(0..self.n as u32);
        while b == a {
            b = rng.gen_range(0..self.n as u32);
        }
        let mut c = rng.gen_range(0..self.n as u32);
        while c == a || c == b {
            c = rng.gen_range(0..self.n as u32);
        }
        self.add_edge(a, b);
        self.add_edge(b, c);
        self.add_edge(a, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_detection_on_known_graphs() {
        // Fig. 5a: the triangle on 3 nodes.
        let mut g = UndirectedGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        assert!(g.has_triangle());
        assert_eq!(g.count_triangles(), 1);
        let (a, b, c) = g.find_triangle().unwrap();
        assert!(a != b && b != c && a != c);
    }

    #[test]
    fn path_and_cycles() {
        let mut p = UndirectedGraph::new(4);
        p.add_edge(0, 1);
        p.add_edge(1, 2);
        p.add_edge(2, 3);
        assert!(!p.has_triangle());

        let mut c3 = UndirectedGraph::cycle(3);
        assert!(c3.has_triangle());
        let mut c4 = UndirectedGraph::cycle(4);
        assert!(!c4.has_triangle());
        let mut c5 = UndirectedGraph::cycle(5);
        assert!(!c5.has_triangle());
    }

    #[test]
    fn bipartite_graphs_are_triangle_free() {
        for seed in 0..5 {
            let mut g = UndirectedGraph::random_bipartite(30, 0.4, seed);
            assert!(!g.has_triangle());
            assert_eq!(g.count_triangles(), 0);
        }
    }

    #[test]
    fn planted_triangle_is_found() {
        for seed in 0..5 {
            let mut g = UndirectedGraph::random_bipartite(30, 0.2, seed);
            g.plant_triangle(seed + 100);
            assert!(g.has_triangle());
            assert!(g.count_triangles() >= 1);
        }
    }

    #[test]
    fn counting_agrees_with_detection_on_random_graphs() {
        for seed in 0..10 {
            let mut g = UndirectedGraph::random(25, 0.15, seed);
            let found = g.has_triangle();
            let count = g.count_triangles();
            assert_eq!(found, count > 0, "seed {seed}");
        }
    }

    #[test]
    fn duplicate_edges_and_self_loops_ignored() {
        let mut g = UndirectedGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn complete_graph_triangle_count() {
        // K5 has C(5,3) = 10 triangles.
        let mut g = UndirectedGraph::random(5, 1.0, 0);
        assert_eq!(g.count_triangles(), 10);
    }

    #[test]
    fn random_with_edges_hits_target() {
        let g = UndirectedGraph::random_with_edges(50, 100, 3);
        assert_eq!(g.num_edges(), 100);
    }
}
