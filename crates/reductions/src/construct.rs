//! The three history constructions of Section 4: given an undirected graph
//! `G`, build a history `H(G)` that satisfies the target isolation level iff
//! `G` is triangle-free.
//!
//! * [`general_reduction`] (Section 4.1, Fig. 5): one session per
//!   transaction; `H` satisfies *any* level between CC and RC iff `G` is
//!   triangle-free. Underlies Theorem 1.3.
//! * [`ra_two_session_reduction`] (Section 4.2, Fig. 6): all write
//!   transactions in one session, all read transactions in another;
//!   `H` satisfies RA iff `G` is triangle-free. Underlies Theorem 1.4.
//! * [`rc_one_session_reduction`] (Section 4.2): the general construction
//!   squeezed into a single session (writes first); `H` satisfies RC iff
//!   `G` is triangle-free. Underlies Theorem 1.5.
//!
//! Key encoding: node key `x_a ↦ a`, pair key `x^a_b ↦ (1 << 48) | (a << 24) | b`
//! (node ids must fit 24 bits). Write values are the writer's node id — per
//! key, every writer is a distinct node, so values stay unique.

use awdit_core::{History, HistoryBuilder};

use crate::graph::UndirectedGraph;

const PAIR_TAG: u64 = 1 << 48;

fn node_key(a: u32) -> u64 {
    a as u64
}

/// The key `x^a_b`: node `a`'s private copy of neighbor `b`'s edge key.
fn pair_key(a: u32, b: u32) -> u64 {
    assert!(a < (1 << 24) && b < (1 << 24), "node id exceeds 24 bits");
    PAIR_TAG | ((a as u64) << 24) | b as u64
}

/// Section 4.1 (Fig. 5): the general reduction. Every transaction runs in
/// its own session (`so = ∅`).
///
/// For each node `a` with neighbors `b`:
/// * the *write* transaction `t^W_a` writes `x_b` and `x^b_a` (value `a`)
///   for each edge `{a, b}`, plus `x_a := a`;
/// * the *read* transaction `t^R_a` first reads all pair keys
///   `x^a_b = b`, then all node keys `x_b = b`.
///
/// The resulting history has size `O(m)` for a graph with `m` edges and
/// satisfies any isolation level `I` with `CC ⊑ I ⊑ RC` iff `G` is
/// triangle-free (Lemma 4.2).
pub fn general_reduction(g: &UndirectedGraph) -> History {
    let n = g.num_nodes() as u32;
    let mut b = HistoryBuilder::new();

    // Write transactions, one session each.
    for a in 0..n {
        let s = b.session();
        b.begin(s);
        for &nb in g.neighbors(a) {
            b.write(s, node_key(nb), a as u64);
            b.write(s, pair_key(nb, a), a as u64);
        }
        b.write(s, node_key(a), a as u64);
        b.commit(s);
    }
    // Read transactions, one session each.
    for a in 0..n {
        let s = b.session();
        b.begin(s);
        for &nb in g.neighbors(a) {
            b.read(s, pair_key(a, nb), nb as u64);
        }
        for &nb in g.neighbors(a) {
            b.read(s, node_key(nb), nb as u64);
        }
        b.commit(s);
    }
    b.finish().expect("reduction histories are well-formed")
}

/// Section 4.2 (Fig. 6): the two-session RA reduction. Pair keys are
/// dropped; all write transactions share session `s_W` and all read
/// transactions share session `s_R`.
///
/// Satisfies RA iff `G` is triangle-free (Lemma 4.3).
pub fn ra_two_session_reduction(g: &UndirectedGraph) -> History {
    let n = g.num_nodes() as u32;
    let mut b = HistoryBuilder::new();
    let s_w = b.session();
    let s_r = b.session();

    for a in 0..n {
        b.begin(s_w);
        for &nb in g.neighbors(a) {
            b.write(s_w, node_key(nb), a as u64);
        }
        b.write(s_w, node_key(a), a as u64);
        b.commit(s_w);
    }
    for a in 0..n {
        b.begin(s_r);
        for &nb in g.neighbors(a) {
            b.read(s_r, node_key(nb), nb as u64);
        }
        b.commit(s_r);
    }
    b.finish().expect("reduction histories are well-formed")
}

/// Section 4.2: the one-session RC reduction — the general construction
/// with all transactions in a single session, write transactions first.
///
/// Satisfies RC iff `G` is triangle-free (Lemma 4.4).
pub fn rc_one_session_reduction(g: &UndirectedGraph) -> History {
    let n = g.num_nodes() as u32;
    let mut b = HistoryBuilder::new();
    let s = b.session();

    for a in 0..n {
        b.begin(s);
        for &nb in g.neighbors(a) {
            b.write(s, node_key(nb), a as u64);
            b.write(s, pair_key(nb, a), a as u64);
        }
        b.write(s, node_key(a), a as u64);
        b.commit(s);
    }
    for a in 0..n {
        b.begin(s);
        for &nb in g.neighbors(a) {
            b.read(s, pair_key(a, nb), nb as u64);
        }
        for &nb in g.neighbors(a) {
            b.read(s, node_key(nb), nb as u64);
        }
        b.commit(s);
    }
    b.finish().expect("reduction histories are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::{check, IsolationLevel};

    fn fig5_graph() -> UndirectedGraph {
        // Fig. 5a: the triangle 1-2-3 (0-indexed: 0-1-2).
        let mut g = UndirectedGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        g
    }

    #[test]
    fn fig5_triangle_makes_all_levels_inconsistent() {
        let h = general_reduction(&fig5_graph());
        for level in IsolationLevel::ALL {
            assert!(
                !check(&h, level).is_consistent(),
                "triangle graph must violate {level}"
            );
        }
    }

    #[test]
    fn triangle_free_general_reduction_is_cc_consistent() {
        let mut g = UndirectedGraph::cycle(5);
        assert!(!g.has_triangle());
        let h = general_reduction(&g);
        for level in IsolationLevel::ALL {
            assert!(
                check(&h, level).is_consistent(),
                "triangle-free graph must satisfy {level}"
            );
        }
    }

    #[test]
    fn general_reduction_matches_triangle_freeness_on_random_graphs() {
        for seed in 0..15 {
            let mut g = UndirectedGraph::random(12, 0.2, seed);
            let triangle_free = !g.has_triangle();
            let h = general_reduction(&g);
            for level in IsolationLevel::ALL {
                assert_eq!(
                    check(&h, level).is_consistent(),
                    triangle_free,
                    "seed {seed} level {level}"
                );
            }
        }
    }

    #[test]
    fn fig6_two_session_ra_reduction() {
        let h = ra_two_session_reduction(&fig5_graph());
        assert_eq!(h.num_sessions(), 2);
        assert!(!check(&h, IsolationLevel::ReadAtomic).is_consistent());

        let mut g = UndirectedGraph::cycle(6);
        assert!(!g.has_triangle());
        let h = ra_two_session_reduction(&g);
        assert!(check(&h, IsolationLevel::ReadAtomic).is_consistent());
    }

    #[test]
    fn ra_two_session_matches_triangle_freeness_on_random_graphs() {
        for seed in 20..35 {
            let mut g = UndirectedGraph::random(12, 0.25, seed);
            let triangle_free = !g.has_triangle();
            let h = ra_two_session_reduction(&g);
            assert_eq!(
                check(&h, IsolationLevel::ReadAtomic).is_consistent(),
                triangle_free,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn rc_one_session_reduction_has_one_session() {
        let h = rc_one_session_reduction(&fig5_graph());
        assert_eq!(h.num_sessions(), 1);
        assert!(!check(&h, IsolationLevel::ReadCommitted).is_consistent());

        let mut g = UndirectedGraph::random_bipartite(10, 0.4, 1);
        assert!(!g.has_triangle());
        let h = rc_one_session_reduction(&g);
        assert!(check(&h, IsolationLevel::ReadCommitted).is_consistent());
    }

    #[test]
    fn rc_one_session_matches_triangle_freeness_on_random_graphs() {
        for seed in 40..55 {
            let mut g = UndirectedGraph::random(10, 0.25, seed);
            let triangle_free = !g.has_triangle();
            let h = rc_one_session_reduction(&g);
            assert_eq!(
                check(&h, IsolationLevel::ReadCommitted).is_consistent(),
                triangle_free,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn reduction_size_is_linear_in_edges() {
        let g = UndirectedGraph::random_with_edges(40, 120, 9);
        let h = general_reduction(&g);
        // Size O(m): each edge contributes 4 writes + 4 reads, each node 1.
        assert!(h.size() <= 8 * g.num_edges() + g.num_nodes() + 8);
    }

    #[test]
    fn empty_graph_reductions_are_consistent() {
        let g = UndirectedGraph::new(4);
        for h in [
            general_reduction(&g),
            ra_two_session_reduction(&g),
            rc_one_session_reduction(&g),
        ] {
            for level in IsolationLevel::ALL {
                assert!(check(&h, level).is_consistent());
            }
        }
    }
}
