//! End-to-end tests of the `awdit` binary: generate → stats → convert →
//! check → shrink, via real process invocations.

use std::path::PathBuf;
use std::process::Command;

fn awdit() -> Command {
    Command::new(env!("CARGO_BIN_EXE_awdit"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("awdit-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn generate_check_roundtrip() {
    let file = tmp("gen.awdit");
    let out = awdit()
        .args(["generate", "--benchmark", "rubis", "--db", "causal"])
        .args(["--sessions", "6", "--txns", "200", "--seed", "9"])
        .args(["-o", file.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A causal store's history passes CC.
    let out = awdit()
        .args(["check", "--isolation", "cc", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("verdict:  consistent"), "{stdout}");

    // Stats prints the session count.
    let out = awdit()
        .args(["stats", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("6 sessions"));
    let _ = std::fs::remove_file(file);
}

#[test]
fn convert_between_formats() {
    let src = tmp("conv.awdit");
    let dst = tmp("conv.cobra");
    awdit()
        .args(["generate", "--benchmark", "uniform", "--db", "ser"])
        .args(["--sessions", "3", "--txns", "50", "--seed", "1"])
        .args(["-o", src.to_str().unwrap()])
        .output()
        .unwrap();
    let out = awdit()
        .args(["convert", "--to", "cobra", "-o", dst.to_str().unwrap()])
        .arg(src.to_str().unwrap())
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = std::fs::read_to_string(&dst).unwrap();
    assert!(text.starts_with("cobra-log"));
    // Auto-detection parses the converted file.
    let out = awdit()
        .args(["stats", dst.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let _ = std::fs::remove_file(src);
    let _ = std::fs::remove_file(dst);
}

#[test]
fn check_reports_violations_with_nonzero_exit() {
    let file = tmp("bad.awdit");
    // rc-tier store checked at RA: inconsistent with this seed (fractured
    // reads appear quickly under interleaving).
    awdit()
        .args(["generate", "--benchmark", "uniform", "--db", "rc"])
        .args(["--sessions", "6", "--txns", "400", "--seed", "5"])
        .args(["-o", file.to_str().unwrap()])
        .output()
        .unwrap();
    let out = awdit()
        .args(["check", "--isolation", "ra", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("inconsistent"), "{stdout}");
    assert!(stdout.contains("violations"), "{stdout}");

    // Shrink produces a small repro on stdout.
    let out = awdit()
        .args(["shrink", "--isolation", "ra", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("shrunk"), "{stderr}");
    let _ = std::fs::remove_file(file);
}

#[test]
fn check_all_levels_and_threads() {
    let file = tmp("all.awdit");
    // rc-tier store: RC passes, RA and CC fail — `--isolation all` must
    // print one verdict per level and exit 1.
    awdit()
        .args(["generate", "--benchmark", "uniform", "--db", "rc"])
        .args(["--sessions", "6", "--txns", "400", "--seed", "5"])
        .args(["-o", file.to_str().unwrap()])
        .output()
        .unwrap();
    let out = awdit()
        .args(["check", "--isolation", "all", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[rc]"), "{stdout}");
    assert!(stdout.contains("[ra]"), "{stdout}");
    assert!(stdout.contains("[cc]"), "{stdout}");
    assert!(stdout.contains("shared index"), "{stdout}");

    // Thread count is a perf knob only: the printed verdicts are identical.
    let verdicts = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.starts_with("verdict:") || l.trim_start().starts_with("- "))
            .map(str::to_string)
            .collect()
    };
    let out8 = awdit()
        .args(["check", "--isolation", "all", "--threads", "8"])
        .arg(file.to_str().unwrap())
        .output()
        .unwrap();
    assert_eq!(out8.status.code(), Some(1));
    assert_eq!(
        verdicts(&stdout),
        verdicts(&String::from_utf8_lossy(&out8.stdout))
    );
    let _ = std::fs::remove_file(file);
}

#[test]
fn bad_arguments_exit_2() {
    let out = awdit().args(["frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = awdit()
        .args(["check", "--isolation", "nonsense", "/nonexistent"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

/// The documented exit-code contract: 0 consistent, 1 inconsistent,
/// 2 usage/parse error — including the multi-file batch mode (1 if *any*
/// history is inconsistent) and directory inputs.
#[test]
fn exit_code_contract_multi_file() {
    let good = tmp("contract-good.awdit");
    let bad = tmp("contract-bad.awdit");
    // A causal store passes RA; an rc-tier store violates it.
    awdit()
        .args(["generate", "--benchmark", "uniform", "--db", "causal"])
        .args(["--sessions", "4", "--txns", "150", "--seed", "3"])
        .args(["-o", good.to_str().unwrap()])
        .output()
        .unwrap();
    awdit()
        .args(["generate", "--benchmark", "uniform", "--db", "rc"])
        .args(["--sessions", "6", "--txns", "400", "--seed", "5"])
        .args(["-o", bad.to_str().unwrap()])
        .output()
        .unwrap();

    // 0: all histories consistent.
    let out = awdit()
        .args(["check", "--isolation", "ra"])
        .args([good.to_str().unwrap(), good.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("verdict:").count(), 2, "{stdout}");

    // 1: any history inconsistent fails the whole batch.
    let out = awdit()
        .args(["check", "--isolation", "ra"])
        .args([good.to_str().unwrap(), bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("verdict:  consistent"), "{stdout}");
    assert!(stdout.contains("verdict:  inconsistent"), "{stdout}");

    // 2: parse errors (one bad file poisons the batch before checking).
    let garbage = tmp("contract-garbage.awdit");
    std::fs::write(&garbage, "not a history\n").unwrap();
    let out = awdit()
        .args(["check", good.to_str().unwrap(), garbage.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    // 2: missing positional / unknown flag value.
    let out = awdit().args(["check"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = awdit()
        .args(["check", "--report", "xml", good.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    for f in [good, bad, garbage] {
        let _ = std::fs::remove_file(f);
    }
}

/// A directory positional checks every file inside it (sorted), and the
/// batch verdict aggregates across them.
#[test]
fn check_a_directory_of_histories() {
    let dir = {
        let mut d = std::env::temp_dir();
        d.push(format!("awdit-cli-dir-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    };
    for seed in 0..3 {
        awdit()
            .args(["generate", "--benchmark", "uniform", "--db", "causal"])
            .args(["--sessions", "4", "--txns", "120"])
            .args(["--seed", &seed.to_string()])
            .args(["-o", dir.join(format!("h{seed}.awdit")).to_str().unwrap()])
            .output()
            .unwrap();
    }
    let out = awdit()
        .args(["check", "--isolation", "cc", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("history:").count(), 3, "{stdout}");
    assert_eq!(
        stdout.matches("verdict:  consistent").count(),
        3,
        "{stdout}"
    );

    // An empty directory is a usage error.
    let empty = dir.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let out = awdit()
        .args(["check", empty.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(dir);
}

/// `--report json` emits the versioned schema and parses back through
/// `awdit_formats::Report::from_json` (round-trip), both to stdout and
/// through `--output FILE`.
#[test]
fn json_report_round_trips() {
    let file = tmp("json.awdit");
    awdit()
        .args(["generate", "--benchmark", "uniform", "--db", "rc"])
        .args(["--sessions", "6", "--txns", "400", "--seed", "5"])
        .args(["-o", file.to_str().unwrap()])
        .output()
        .unwrap();
    let out = awdit()
        .args(["check", "--isolation", "all", "--report", "json"])
        .arg(file.to_str().unwrap())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1)); // rc store fails ra/cc
    let stdout = String::from_utf8_lossy(&out.stdout);
    let report = awdit_formats::Report::from_json(&stdout).expect("stdout parses as the schema");
    assert_eq!(report.schema_version, awdit_formats::SCHEMA_VERSION);
    assert!(report.any_inconsistent());
    assert_eq!(report.histories.len(), 1);
    assert_eq!(report.histories[0].levels.len(), 3);
    assert!(report.histories[0].levels[0].is_consistent()); // rc
    assert!(!report.histories[0].levels[2].is_consistent()); // cc
                                                             // Inconsistent levels carry violations with cycle provenance.
    assert!(report.histories[0].levels[2]
        .violations
        .iter()
        .any(|v| v.cycle.is_some() || !v.message.is_empty()));
    // Round-trip: parse(to_json) == parsed.
    assert_eq!(
        awdit_formats::Report::from_json(&report.to_json()).unwrap(),
        report
    );

    // --output writes the same document to a file.
    let json_path = tmp("report.json");
    let out = awdit()
        .args(["check", "--isolation", "all", "--report", "json"])
        .args(["--output", json_path.to_str().unwrap()])
        .arg(file.to_str().unwrap())
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = std::fs::read_to_string(&json_path).unwrap();
    let from_file = awdit_formats::Report::from_json(&text).unwrap();
    assert_eq!(from_file.histories[0].levels.len(), 3);
    let _ = std::fs::remove_file(file);
    let _ = std::fs::remove_file(json_path);
}

/// `--cc-strategy` is reachable from the CLI on both `check` and `watch`,
/// and both strategies agree on the verdict.
#[test]
fn cc_strategy_flag_on_check_and_watch() {
    let file = tmp("strat.awdit");
    let events = tmp("strat.ndjson");
    awdit()
        .args(["generate", "--benchmark", "uniform", "--db", "causal"])
        .args(["--sessions", "4", "--txns", "200", "--seed", "11"])
        .args(["-o", file.to_str().unwrap()])
        .output()
        .unwrap();
    awdit()
        .args(["convert", "--to", "events"])
        .args(["-o", events.to_str().unwrap()])
        .arg(file.to_str().unwrap())
        .output()
        .unwrap();

    for strategy in ["pointer-scan", "binary-search"] {
        let out = awdit()
            .args(["check", "--isolation", "cc", "--cc-strategy", strategy])
            .arg(file.to_str().unwrap())
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(0), "{strategy}");
        assert!(String::from_utf8_lossy(&out.stdout).contains("verdict:  consistent"));

        let out = awdit()
            .args(["watch", "--isolation", "cc", "--cc-strategy", strategy])
            .arg(events.to_str().unwrap())
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(0), "watch {strategy}");
    }
    // A bogus strategy is a usage error.
    let out = awdit()
        .args(["check", "--cc-strategy", "quantum", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_file(file);
    let _ = std::fs::remove_file(events);
}

/// An NDJSON event log checks batch-style straight through `awdit check`
/// (auto-detected, replayed into a history).
#[test]
fn check_accepts_ndjson_event_logs() {
    let file = tmp("ndj.awdit");
    let events = tmp("ndj.ndjson");
    awdit()
        .args(["generate", "--benchmark", "uniform", "--db", "causal"])
        .args(["--sessions", "3", "--txns", "80", "--seed", "2"])
        .args(["-o", file.to_str().unwrap()])
        .output()
        .unwrap();
    awdit()
        .args(["convert", "--to", "events"])
        .args(["-o", events.to_str().unwrap()])
        .arg(file.to_str().unwrap())
        .output()
        .unwrap();
    let out = awdit()
        .args(["check", "--isolation", "cc", events.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("verdict:  consistent"));
    let _ = std::fs::remove_file(file);
    let _ = std::fs::remove_file(events);
}

/// The positional `convert IN OUT` form: the output format is inferred
/// from OUT's extension, chaining a history through every supported
/// format (and the NDJSON event form) and back without changing its
/// verdicts.
#[test]
fn convert_positional_chains_all_formats() {
    let src = tmp("chain.awdit");
    awdit()
        .args(["generate", "--benchmark", "uniform", "--db", "ser"])
        .args(["--sessions", "3", "--txns", "60", "--seed", "5"])
        .args(["-o", src.to_str().unwrap()])
        .output()
        .unwrap();

    // native -> dbcop -> cobra -> plume -> events -> native, each leg
    // inferring the target format from the output path's extension.
    let mut files = vec![src.clone()];
    for ext in ["dbcop", "cobra", "plume", "ndjson", "awdit"] {
        let prev = files.last().unwrap().clone();
        let next = tmp(&format!("chain2.{ext}"));
        let out = awdit()
            .args(["convert", prev.to_str().unwrap(), next.to_str().unwrap()])
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(0),
            "convert -> {ext}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        files.push(next);
    }

    // The fully chained file still checks consistent at every level.
    let last = files.last().unwrap();
    let out = awdit()
        .args(["check", "--isolation", "all", last.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));

    // ...and is byte-identical to converting the original directly
    // (the chain loses nothing: ser histories are fully committed).
    let direct = tmp("chain-direct.awdit");
    awdit()
        .args(["convert", src.to_str().unwrap(), direct.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        std::fs::read_to_string(last).unwrap(),
        std::fs::read_to_string(&direct).unwrap()
    );

    for f in files {
        let _ = std::fs::remove_file(f);
    }
    let _ = std::fs::remove_file(direct);
}

/// `check --trace --metrics` writes a well-formed Chrome trace covering
/// the engine's phases and a Prometheus snapshot that reconciles with
/// the JSON report's engine-stats block; the report carries per-phase
/// timings (schema v2).
#[test]
fn trace_and_metrics_outputs_validate() {
    let file = tmp("obs.awdit");
    let trace = tmp("obs-trace.json");
    let metrics = tmp("obs-metrics.prom");
    awdit()
        .args(["generate", "--benchmark", "uniform", "--db", "causal"])
        .args(["--sessions", "4", "--txns", "200", "--seed", "7"])
        .args(["-o", file.to_str().unwrap()])
        .output()
        .unwrap();
    let out = awdit()
        .args(["check", "--isolation", "all", "--report", "json"])
        .args(["--trace", trace.to_str().unwrap()])
        .args(["--metrics", metrics.to_str().unwrap()])
        .arg(file.to_str().unwrap())
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The JSON report carries the v2 timings + engine blocks.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let report = awdit_formats::Report::from_json(&stdout).expect("schema v2 parses");
    let timings = &report.histories[0].timings;
    for phase in ["ingest", "index_rebuild", "saturate_cc", "cycle_extraction"] {
        assert!(
            timings.iter().any(|t| t.phase == phase && t.spans > 0),
            "missing phase `{phase}` in {timings:?}"
        );
    }
    let engine = report.engine.expect("engine stats block");
    assert_eq!(engine.histories, 1);
    assert_eq!(engine.checks, 3);
    assert!(engine.arena_bytes > 0);

    // The trace file is valid Chrome trace_event JSON with nested,
    // balanced spans (`check` wraps the per-level phases).
    let text = std::fs::read_to_string(&trace).unwrap();
    let summary = awdit_obs::chrome::validate_trace(&text).expect("trace validates");
    assert!(summary.complete_spans >= 10, "{summary:?}");
    assert!(summary.max_depth >= 2, "{summary:?}");
    for phase in ["check", "saturate_cc", "cycle_extraction"] {
        assert!(
            summary.phase_names.contains(&phase.to_string()),
            "{summary:?}"
        );
    }

    // The Prometheus snapshot parses and reconciles with the report.
    let prom = std::fs::read_to_string(&metrics).unwrap();
    let series = awdit_obs::metrics::parse_prometheus(&prom).expect("prometheus parses");
    let get = |name: &str| {
        series
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing series `{name}`"))
            .1
    };
    assert_eq!(get("awdit_engine_histories_total"), engine.histories as f64);
    assert_eq!(get("awdit_engine_checks_total"), engine.checks as f64);
    assert_eq!(get("awdit_engine_arena_bytes"), engine.arena_bytes as f64);

    for f in [file, trace, metrics] {
        let _ = std::fs::remove_file(f);
    }
}

/// `watch --metrics` exports the stream-side gauges/counters, and GC
/// activity shows up as `stream_gc` spans in the trace.
#[test]
fn watch_exports_stream_metrics_and_gc_spans() {
    let file = tmp("wobs.awdit");
    let events = tmp("wobs.ndjson");
    let trace = tmp("wobs-trace.json");
    let metrics = tmp("wobs-metrics.prom");
    awdit()
        .args(["generate", "--benchmark", "uniform", "--db", "causal"])
        .args(["--sessions", "4", "--txns", "200", "--seed", "7"])
        .args(["-o", file.to_str().unwrap()])
        .output()
        .unwrap();
    awdit()
        .args(["convert", "--to", "events"])
        .args(["-o", events.to_str().unwrap()])
        .arg(file.to_str().unwrap())
        .output()
        .unwrap();
    let out = awdit()
        .args(["watch", "--isolation", "cc", "--interval", "16"])
        .args(["--trace", trace.to_str().unwrap()])
        .args(["--metrics", metrics.to_str().unwrap()])
        .arg(events.to_str().unwrap())
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let prom = std::fs::read_to_string(&metrics).unwrap();
    let series = awdit_obs::metrics::parse_prometheus(&prom).expect("prometheus parses");
    let get = |name: &str| {
        series
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing series `{name}`"))
            .1
    };
    assert!(get("awdit_stream_events_total") > 0.0);
    assert!(get("awdit_stream_processed_total") > 0.0);
    assert!(get("awdit_stream_gcs_total") >= 1.0, "prune every 16 txns");

    let text = std::fs::read_to_string(&trace).unwrap();
    let summary = awdit_obs::chrome::validate_trace(&text).expect("trace validates");
    assert!(
        summary.phase_names.contains(&"stream_gc".to_string()),
        "{summary:?}"
    );

    for f in [file, events, trace, metrics] {
        let _ = std::fs::remove_file(f);
    }
}

/// `stats --report json` emits a standalone machine-readable stats
/// object, arena footprint included.
#[test]
fn stats_report_json_is_machine_readable() {
    let file = tmp("sjson.awdit");
    awdit()
        .args(["generate", "--benchmark", "uniform", "--db", "causal"])
        .args(["--sessions", "6", "--txns", "100", "--seed", "4"])
        .args(["-o", file.to_str().unwrap()])
        .output()
        .unwrap();
    let out = awdit()
        .args(["stats", "--report", "json", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = awdit_obs::chrome::json_lint(&stdout).expect("valid json");
    let awdit_obs::chrome::Json::Object(fields) = value else {
        panic!("stats json is not an object: {stdout}");
    };
    for key in ["sessions", "txns", "ops", "keys", "arena_bytes"] {
        assert!(fields.iter().any(|(n, _)| n == key), "missing `{key}`");
    }
    let _ = std::fs::remove_file(file);
}

/// Convert usage errors keep the exit-code contract: code 2, nothing
/// written.
#[test]
fn convert_usage_errors_exit_2() {
    let src = tmp("cerr.awdit");
    awdit()
        .args(["generate", "--benchmark", "uniform", "--db", "ser"])
        .args(["--sessions", "2", "--txns", "20", "--seed", "8"])
        .args(["-o", src.to_str().unwrap()])
        .output()
        .unwrap();
    // No --to and no output path: cannot infer a format.
    let out = awdit()
        .args(["convert", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Unknown extension without --to.
    let out = awdit()
        .args(["convert", src.to_str().unwrap(), "/tmp/x.unknownext"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Missing input file.
    let out = awdit()
        .args(["convert", "/nonexistent.awdit", "--to", "cobra"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_file(src);
}

#[test]
fn convert_to_awb_and_back_checks_identically() {
    let src = tmp("awb.awdit");
    let bin = tmp("awb.awb");
    let back = tmp("awb-back.plume");
    awdit()
        .args(["generate", "--benchmark", "uniform", "--db", "causal"])
        .args(["--sessions", "4", "--txns", "120", "--seed", "11"])
        .args(["-o", src.to_str().unwrap()])
        .output()
        .unwrap();

    // Text -> binary: the output must carry the magic.
    let out = awdit()
        .args(["convert", src.to_str().unwrap(), bin.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&bin).unwrap();
    assert!(bytes.starts_with(b"AWBHIST\0"), "missing .awb magic");

    // Binary -> text again (input format is magic-sniffed).
    let out = awdit()
        .args(["convert", bin.to_str().unwrap(), back.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Stable JSON reports of the text and binary runs agree except for
    // the history name.
    let report = |path: &PathBuf| {
        let out = awdit()
            .args([
                "check",
                "--isolation",
                "all",
                "--stable-report",
                "--report",
                "json",
            ])
            .arg(path.to_str().unwrap())
            .output()
            .unwrap();
        assert!(out.status.success());
        String::from_utf8(out.stdout).unwrap()
    };
    let text_json = report(&src).replace(src.file_name().unwrap().to_str().unwrap(), "H");
    let bin_json = report(&bin).replace(bin.file_name().unwrap().to_str().unwrap(), "H");
    assert_eq!(text_json, bin_json, "stable reports diverged");

    for f in [&src, &bin, &back] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn check_threads_and_overlap_flags_agree() {
    let file = tmp("flags.awdit");
    awdit()
        .args(["generate", "--benchmark", "uniform", "--db", "causal"])
        .args(["--sessions", "4", "--txns", "150", "--seed", "3"])
        .args(["-o", file.to_str().unwrap()])
        .output()
        .unwrap();
    let run = |extra: &[&str]| {
        let out = awdit()
            .args([
                "check",
                "--isolation",
                "all",
                "--stable-report",
                "--report",
                "json",
            ])
            .args(extra)
            .arg(file.to_str().unwrap())
            .output()
            .unwrap();
        assert!(out.status.success(), "{extra:?}");
        String::from_utf8(out.stdout).unwrap()
    };
    let reference = run(&[]);
    assert_eq!(reference, run(&["--no-overlap"]));
    assert_eq!(reference, run(&["--threads", "8"]));
    assert_eq!(reference, run(&["--threads", "2", "--no-overlap"]));
    let _ = std::fs::remove_file(file);
}

#[test]
fn unrecognized_binary_input_exits_2_with_clean_error() {
    let junk = tmp("junk.awdit");
    let bytes: Vec<u8> = (0..512u32).map(|i| (i * 7 % 256) as u8).collect();
    std::fs::write(&junk, bytes).unwrap();
    let out = awdit()
        .args(["check", junk.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unrecognized binary data"),
        "unexpected stderr: {stderr}"
    );
    let _ = std::fs::remove_file(junk);
}
