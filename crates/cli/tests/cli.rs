//! End-to-end tests of the `awdit` binary: generate → stats → convert →
//! check → shrink, via real process invocations.

use std::path::PathBuf;
use std::process::Command;

fn awdit() -> Command {
    Command::new(env!("CARGO_BIN_EXE_awdit"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("awdit-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn generate_check_roundtrip() {
    let file = tmp("gen.awdit");
    let out = awdit()
        .args(["generate", "--benchmark", "rubis", "--db", "causal"])
        .args(["--sessions", "6", "--txns", "200", "--seed", "9"])
        .args(["-o", file.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A causal store's history passes CC.
    let out = awdit()
        .args(["check", "--isolation", "cc", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("verdict:  consistent"), "{stdout}");

    // Stats prints the session count.
    let out = awdit()
        .args(["stats", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("6 sessions"));
    let _ = std::fs::remove_file(file);
}

#[test]
fn convert_between_formats() {
    let src = tmp("conv.awdit");
    let dst = tmp("conv.cobra");
    awdit()
        .args(["generate", "--benchmark", "uniform", "--db", "ser"])
        .args(["--sessions", "3", "--txns", "50", "--seed", "1"])
        .args(["-o", src.to_str().unwrap()])
        .output()
        .unwrap();
    let out = awdit()
        .args(["convert", "--to", "cobra", "-o", dst.to_str().unwrap()])
        .arg(src.to_str().unwrap())
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = std::fs::read_to_string(&dst).unwrap();
    assert!(text.starts_with("cobra-log"));
    // Auto-detection parses the converted file.
    let out = awdit()
        .args(["stats", dst.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let _ = std::fs::remove_file(src);
    let _ = std::fs::remove_file(dst);
}

#[test]
fn check_reports_violations_with_nonzero_exit() {
    let file = tmp("bad.awdit");
    // rc-tier store checked at RA: inconsistent with this seed (fractured
    // reads appear quickly under interleaving).
    awdit()
        .args(["generate", "--benchmark", "uniform", "--db", "rc"])
        .args(["--sessions", "6", "--txns", "400", "--seed", "5"])
        .args(["-o", file.to_str().unwrap()])
        .output()
        .unwrap();
    let out = awdit()
        .args(["check", "--isolation", "ra", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("inconsistent"), "{stdout}");
    assert!(stdout.contains("violations"), "{stdout}");

    // Shrink produces a small repro on stdout.
    let out = awdit()
        .args(["shrink", "--isolation", "ra", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("shrunk"), "{stderr}");
    let _ = std::fs::remove_file(file);
}

#[test]
fn check_all_levels_and_threads() {
    let file = tmp("all.awdit");
    // rc-tier store: RC passes, RA and CC fail — `--isolation all` must
    // print one verdict per level and exit 1.
    awdit()
        .args(["generate", "--benchmark", "uniform", "--db", "rc"])
        .args(["--sessions", "6", "--txns", "400", "--seed", "5"])
        .args(["-o", file.to_str().unwrap()])
        .output()
        .unwrap();
    let out = awdit()
        .args(["check", "--isolation", "all", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[rc]"), "{stdout}");
    assert!(stdout.contains("[ra]"), "{stdout}");
    assert!(stdout.contains("[cc]"), "{stdout}");
    assert!(stdout.contains("shared index"), "{stdout}");

    // Thread count is a perf knob only: the printed verdicts are identical.
    let verdicts = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.starts_with("verdict:") || l.trim_start().starts_with("- "))
            .map(str::to_string)
            .collect()
    };
    let out8 = awdit()
        .args(["check", "--isolation", "all", "--threads", "8"])
        .arg(file.to_str().unwrap())
        .output()
        .unwrap();
    assert_eq!(out8.status.code(), Some(1));
    assert_eq!(
        verdicts(&stdout),
        verdicts(&String::from_utf8_lossy(&out8.stdout))
    );
    let _ = std::fs::remove_file(file);
}

#[test]
fn bad_arguments_exit_2() {
    let out = awdit().args(["frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = awdit()
        .args(["check", "--isolation", "nonsense", "/nonexistent"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
