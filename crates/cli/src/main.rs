//! `awdit` — command-line interface to the AWDIT isolation tester
//! reproduction.
//!
//! ```text
//! awdit check [--isolation rc|ra|cc|all] [--threads N]
//!             [--format auto|native|plume|dbcop|cobra] FILE
//! awdit watch [--isolation rc|ra|cc] [--threads N] [--no-prune] [--follow] FILE|-
//! awdit stats FILE
//! awdit convert --to FORMAT -o OUT FILE
//! awdit generate --benchmark tpcc|ctwitter|rubis|uniform --db ser|causal|ra|rc
//!                --sessions K --txns N --seed S [-o OUT] [--format FORMAT]
//! ```

use std::process::ExitCode;

use awdit_core::{
    check_all_levels_with, check_with, CheckOptions, HistoryStats, IsolationLevel, Verdict,
};
use awdit_formats::{parse_auto, parse_history, write_history, Format};
use awdit_simdb::{collect_history, DbIsolation, SimConfig};
use awdit_stream::{events_of_history, OnlineChecker, StreamConfig};
use awdit_workloads::{Benchmark, Uniform};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("awdit: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(ExitCode::from(2));
    };
    match cmd.as_str() {
        "check" => cmd_check(&args[1..]),
        "watch" => cmd_watch(&args[1..]),
        "shrink" => cmd_shrink(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "convert" => cmd_convert(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}` (try `awdit help`)")),
    }
}

fn print_usage() {
    eprintln!(
        "AWDIT — a weak database isolation tester (reproduction)

USAGE:
    awdit check [--isolation rc|ra|cc|all] [--threads N] [--format FMT]
                [--witnesses N] FILE
    awdit watch [--isolation rc|ra|cc] [--threads N] [--interval N]
                [--witnesses N] [--no-prune] [--follow] FILE|-   (NDJSON event stream)
    awdit shrink [--isolation rc|ra|cc] [--format FMT] [-o OUT] FILE
    awdit stats FILE
    awdit convert --to FMT [-o OUT] FILE
    awdit generate --benchmark NAME --db MODE --sessions K --txns N
                   [--seed S] [--format FMT] [-o OUT]

FORMATS: native (default), plume, dbcop, cobra, auto (check/stats only);
         convert also accepts --to events (streaming NDJSON)
BENCHMARKS: tpcc, ctwitter, rubis, uniform
DB MODES: ser, causal, ra, rc
THREADS: saturation worker threads (1 = sequential, 0 = all cores);
         the verdict and witnesses are identical for every value"
    );
}

/// Pulls `--flag value` pairs out of an argument list; returns positionals.
struct Flags {
    pairs: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut positional = Vec::new();
        const SWITCHES: [&str; 2] = ["no-prune", "follow"];
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if SWITCHES.contains(&name) {
                    pairs.push((name.to_string(), "true".to_string()));
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                pairs.push((name.to_string(), value.clone()));
            } else if a == "-o" {
                let value = it.next().ok_or("flag -o needs a value")?;
                pairs.push(("out".to_string(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Flags { pairs, positional })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn load_history(path: &str, format: Option<&str>) -> Result<awdit_core::History, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    match format {
        None | Some("auto") => parse_auto(&text).map_err(|e| format!("{path}: {e}")),
        Some(f) => {
            let fmt: Format = f.parse()?;
            parse_history(&text, fmt).map_err(|e| format!("{path}: {e}"))
        }
    }
}

fn parse_threads(flags: &Flags) -> Result<usize, String> {
    flags
        .get("threads")
        .map(|w| w.parse().map_err(|_| "bad --threads value".to_string()))
        .transpose()
        .map(|t| t.unwrap_or(1))
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    let path = flags
        .positional
        .first()
        .ok_or("check: missing history file")?;
    let isolation = flags.get("isolation").unwrap_or("cc");
    let max_cycles: usize = flags
        .get("witnesses")
        .map(|w| w.parse().map_err(|_| "bad --witnesses value".to_string()))
        .transpose()?
        .unwrap_or(16);
    let opts = CheckOptions {
        max_cycles,
        threads: parse_threads(&flags)?,
        ..CheckOptions::default()
    };
    let history = load_history(path, flags.get("format"))?;
    let stats = HistoryStats::of(&history);
    println!("history:  {stats}");

    let outcomes = if isolation == "all" {
        // One shared index + Read Consistency pass across all three levels.
        let started = std::time::Instant::now();
        let all = check_all_levels_with(&history, &opts);
        let elapsed = started.elapsed();
        println!("levels:   rc, ra, cc (shared index)");
        println!("time:     {:.3} ms", elapsed.as_secs_f64() * 1e3);
        all.to_vec()
    } else {
        let level: IsolationLevel = isolation.parse().map_err(|e| format!("{e}"))?;
        let started = std::time::Instant::now();
        let outcome = check_with(&history, level, &opts);
        let elapsed = started.elapsed();
        println!("level:    {level}");
        println!("time:     {:.3} ms", elapsed.as_secs_f64() * 1e3);
        vec![outcome]
    };

    let mut failed = false;
    for outcome in &outcomes {
        if outcomes.len() > 1 {
            println!(
                "verdict:  {} [{}]",
                outcome.verdict(),
                outcome.level().short_name()
            );
        } else {
            println!("verdict:  {}", outcome.verdict());
        }
        if outcome.verdict() == Verdict::Inconsistent {
            failed = true;
            println!("violations ({} shown):", outcome.violations().len());
            for v in outcome.violations() {
                println!("  - {v}");
            }
        }
    }
    if failed {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_shrink(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    let path = flags
        .positional
        .first()
        .ok_or("shrink: missing history file")?;
    let level: IsolationLevel = flags
        .get("isolation")
        .unwrap_or("cc")
        .parse()
        .map_err(|e| format!("{e}"))?;
    let history = load_history(path, flags.get("format"))?;
    let Some(small) = awdit_core::shrink_history(&history, level) else {
        println!("history satisfies {level}; nothing to shrink");
        return Ok(ExitCode::SUCCESS);
    };
    eprintln!(
        "shrunk {} -> {} transactions ({} -> {} ops)",
        history.num_txns(),
        small.num_txns(),
        history.size(),
        small.size()
    );
    let text = write_history(&small, Format::Native);
    match flags.get("out") {
        Some(out) => std::fs::write(out, text).map_err(|e| format!("cannot write `{out}`: {e}"))?,
        None => print!("{text}"),
    }
    // Show the witness on the shrunk history.
    let outcome = check_with(&small, level, &CheckOptions::default());
    for v in outcome.violations().iter().take(3) {
        eprintln!("witness: {v}");
    }
    Ok(ExitCode::FAILURE)
}

fn cmd_stats(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    let path = flags
        .positional
        .first()
        .ok_or("stats: missing history file")?;
    let history = load_history(path, flags.get("format"))?;
    println!("{}", HistoryStats::of(&history));
    Ok(ExitCode::SUCCESS)
}

fn cmd_convert(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    let path = flags
        .positional
        .first()
        .ok_or("convert: missing history file")?;
    let to = flags.get("to").ok_or("convert: missing --to FORMAT")?;
    let history = load_history(path, flags.get("format"))?;
    let text = if to == "events" {
        awdit_formats::write_events(&events_of_history(&history))
    } else {
        let to: Format = to.parse()?;
        write_history(&history, to)
    };
    match flags.get("out") {
        Some(out) => std::fs::write(out, text).map_err(|e| format!("cannot write `{out}`: {e}"))?,
        None => print!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_generate(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    let sessions: usize = flags
        .get("sessions")
        .unwrap_or("10")
        .parse()
        .map_err(|_| "bad --sessions value".to_string())?;
    let txns: usize = flags
        .get("txns")
        .unwrap_or("1000")
        .parse()
        .map_err(|_| "bad --txns value".to_string())?;
    let seed: u64 = flags
        .get("seed")
        .unwrap_or("0")
        .parse()
        .map_err(|_| "bad --seed value".to_string())?;
    let db = match flags.get("db").unwrap_or("causal") {
        "ser" | "serializable" => DbIsolation::Serializable,
        "causal" | "cc" => DbIsolation::Causal,
        "ra" => DbIsolation::ReadAtomic,
        "rc" => DbIsolation::ReadCommitted,
        other => return Err(format!("unknown db mode `{other}`")),
    };
    let config = SimConfig::new(db, sessions, seed);
    let bench_name = flags.get("benchmark").unwrap_or("uniform");
    let history = if bench_name == "uniform" {
        let mut w = Uniform::default();
        collect_history(config, &mut w, txns)
    } else {
        let bench: Benchmark = bench_name.parse()?;
        let mut w = bench.build();
        collect_history(config, &mut *w, txns)
    }
    .map_err(|e| format!("generation failed: {e}"))?;

    let format: Format = flags.get("format").unwrap_or("native").parse()?;
    let text = write_history(&history, format);
    match flags.get("out") {
        Some(out) => {
            std::fs::write(out, text).map_err(|e| format!("cannot write `{out}`: {e}"))?;
            eprintln!("wrote {} ({})", out, HistoryStats::of(&history));
        }
        None => print!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_watch(args: &[String]) -> Result<ExitCode, String> {
    use std::io::{BufRead, Read, Seek};

    let flags = Flags::parse(args)?;
    let path = flags
        .positional
        .first()
        .ok_or("watch: missing event file (or `-` for stdin)")?;
    let level: IsolationLevel = flags
        .get("isolation")
        .unwrap_or("cc")
        .parse()
        .map_err(|e| format!("{e}"))?;
    let prune = flags.get("no-prune").is_none();
    let follow = flags.get("follow").is_some();
    let prune_interval: u64 = flags
        .get("interval")
        .map(|w| w.parse().map_err(|_| "bad --interval value".to_string()))
        .transpose()?
        .unwrap_or(256);
    let max_cycle_reports: usize = flags
        .get("witnesses")
        .map(|w| w.parse().map_err(|_| "bad --witnesses value".to_string()))
        .transpose()?
        .unwrap_or(64);

    let mut checker = OnlineChecker::with_config(StreamConfig {
        level,
        prune,
        prune_interval,
        max_cycle_reports,
        threads: parse_threads(&flags)?,
    });
    eprintln!(
        "watching {path} for {level} violations (pruning {})",
        if prune { "on" } else { "off" }
    );

    let mut line_no = 0usize;
    let mut feed = |checker: &mut OnlineChecker, line: &str| -> Result<(), String> {
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Ok(());
        }
        let event = awdit_formats::parse_event(trimmed, line_no).map_err(|e| e.to_string())?;
        checker
            .apply(&event)
            .map_err(|e| format!("line {line_no}: {e}"))?;
        for v in checker.drain_violations() {
            println!("[event {}] VIOLATION: {v}", checker.stats().events);
        }
        Ok(())
    };

    if path == "-" {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line.map_err(|e| format!("stdin: {e}"))?;
            feed(&mut checker, &line)?;
        }
    } else {
        let mut file =
            std::fs::File::open(path).map_err(|e| format!("cannot open `{path}`: {e}"))?;
        let mut buf = String::new();
        let mut pos = 0u64;
        loop {
            file.seek(std::io::SeekFrom::Start(pos))
                .map_err(|e| format!("{path}: {e}"))?;
            buf.clear();
            file.read_to_string(&mut buf)
                .map_err(|e| format!("{path}: {e}"))?;
            // Only consume whole lines; a partial tail is re-read next poll.
            let consumed = buf.rfind('\n').map(|i| i + 1).unwrap_or(0);
            for line in buf[..consumed].lines() {
                feed(&mut checker, line)?;
            }
            pos += consumed as u64;
            if !follow {
                for line in buf[consumed..].lines() {
                    feed(&mut checker, line)?;
                }
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(200));
        }
    }

    let outcome = checker.finish().map_err(|e| format!("{e}"))?;
    let stats = outcome.stats();
    // Violations found while streaming were already printed live; only the
    // ones surfaced by finish (thin-air reads, so∪wr deadlocks) are new.
    for v in outcome.violations() {
        println!("[finish] VIOLATION: {v}");
    }
    println!(
        "processed {} events / {} txns ({} live, {} retired, peak live {})",
        stats.events, stats.processed, stats.live_txns, stats.retired_txns, stats.peak_live_txns
    );
    println!(
        "verdict:  {} ({} violations)",
        if outcome.is_consistent() {
            "consistent"
        } else {
            "inconsistent"
        },
        stats.violations
    );
    if !outcome.is_consistent() {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}
