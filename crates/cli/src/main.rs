//! `awdit` — command-line interface to the AWDIT isolation tester
//! reproduction.
//!
//! ```text
//! awdit check [--isolation rc|ra|cc|all] [--threads N] [--cc-strategy S]
//!             [--format auto|native|plume|dbcop|cobra] [--report text|json]
//!             [--trace FILE] [--metrics FILE|-]
//!             [--output FILE] FILE... | DIR
//! awdit watch [--isolation rc|ra|cc] [--threads N] [--cc-strategy S]
//!             [--no-prune] [--follow] [--trace FILE] [--metrics FILE|-]
//!             [--stats-interval SECS] FILE|-
//! awdit serve [--addr HOST:PORT] [--threads N] [--isolation rc|ra|cc]
//!             [--no-prune] [--interval N] [--staging-budget N]
//! awdit stats [--report text|json] FILE
//! awdit convert [--to FORMAT] IN [OUT]
//! awdit generate --benchmark tpcc|ctwitter|rubis|uniform --db ser|causal|ra|rc
//!                --sessions K --txns N --seed S [-o OUT] [--format FORMAT]
//! ```
//!
//! Every `check`/`watch`/`shrink` invocation runs through one
//! [`Engine`]: the CLI is a thin shell around the embedding API.
//!
//! # Exit codes
//!
//! * `0` — every checked history satisfies its level(s);
//! * `1` — at least one history is inconsistent (any file of a
//!   multi-file batch, any level of `--isolation all`);
//! * `2` — usage or input error (unknown flags, unreadable files, parse
//!   failures).

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

use awdit_core::{
    collect_source, CcStrategy, Engine, EngineConfig, History, HistoryBuilder, HistorySource,
    HistoryStats, IsolationLevel, Outcome, SourcedHistory,
};
use awdit_formats::{
    detect_bytes, detect_path, history_stats_json, looks_binary, read_auto, read_history,
    write_history_events_to, write_history_to, Detected, DirSource, EngineStatsReport, FilesSource,
    Format, HistoryReport, JsonSink, PhaseTimingReport, Report, ReportSink, TextSink,
};
use awdit_obs::chrome::ChromeTraceRecorder;
use awdit_obs::{phase_delta, Obs, PhaseTiming};
use awdit_serve::{install_signal_handlers, HttpLimits, ServeConfig, Server};
use awdit_simdb::{collect_history, DbIsolation, SimConfig};
use awdit_stream::{EngineExt, OnlineChecker, ShutdownToken, StreamConfig};
use awdit_workloads::{Benchmark, Uniform};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("awdit: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(ExitCode::from(2));
    };
    match cmd.as_str() {
        "check" => cmd_check(&args[1..]),
        "watch" => cmd_watch(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "shrink" => cmd_shrink(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "convert" => cmd_convert(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}` (try `awdit help`)")),
    }
}

fn print_usage() {
    eprintln!(
        "AWDIT — a weak database isolation tester (reproduction)

USAGE:
    awdit check [--isolation rc|ra|cc|all] [--threads N] [--format FMT]
                [--witnesses N] [--cc-strategy STRAT] [--report text|json]
                [--stable-report] [--no-overlap] [--trace FILE]
                [--metrics FILE|-] [--output FILE] FILE... | DIR
    awdit watch [--isolation rc|ra|cc] [--threads N] [--interval N]
                [--witnesses N] [--cc-strategy STRAT] [--no-prune]
                [--trace FILE] [--metrics FILE|-] [--stats-interval SECS]
                [--follow] FILE|-   (NDJSON event stream)
    awdit serve [--addr HOST:PORT] [--threads N] [--check-threads N]
                [--isolation rc|ra|cc] [--no-prune] [--interval N]
                [--staging-budget N] [--warm-pool N] [--max-body BYTES]
                [--timeout SECS] [--trace FILE] [--metrics FILE|-]
    awdit shrink [--isolation rc|ra|cc] [--format FMT] [-o OUT] FILE
    awdit stats [--report text|json] FILE
    awdit convert [--format FMT] [--to FMT] IN [OUT]
    awdit generate --benchmark NAME --db MODE --sessions K --txns N
                   [--seed S] [--format FMT] [-o OUT]

FORMATS: native (default), plume, dbcop, cobra, auto (check/stats only);
         check and convert also auto-detect NDJSON event logs and the
         binary columnar .awb form (magic-sniffed, mmap-loaded)
BENCHMARKS: tpcc, ctwitter, rubis, uniform
DB MODES: ser, causal, ra, rc
THREADS: saturation worker threads (1 = sequential, 0 = auto: all
         available cores, resolved once when the engine starts and
         reported in stats//healthz); the verdict and witnesses are
         identical for every value;
         at 1 thread `check` streams each file straight into the
         engine's recycled ingest arenas (lowest peak memory);
         above 1, text files also parse in parallel byte-range
         shards, bit-identical to the sequential parse
CC STRATEGIES: binary-search (default), pointer-scan — interchangeable
         implementations of the batch Causal Consistency checker
         (Algorithm 3); `watch` accepts the flag for config parity, but
         the streaming checker runs a single incremental CC kernel, so
         its verdicts are strategy-independent
CHECK: accepts several FILEs and/or a DIR (every file inside, sorted);
         --report json emits the versioned machine-readable report
         (schema v2: per-phase timings + engine stats when traced),
         --output writes the report to a file; --stable-report zeroes
         timings and omits engine stats so identical inputs give
         byte-identical JSON; --no-overlap disables the read/check
         pipeline (parse and check strictly alternate)
OBSERVABILITY: --trace FILE writes a Chrome trace_event JSON of every
         engine phase (open in chrome://tracing or Perfetto); --metrics
         writes a Prometheus text snapshot to FILE (`-` = stdout);
         `watch --stats-interval SECS` prints a [stats] heartbeat on
         stderr while following a stream
SERVE: a multi-tenant daemon over the online checker — stream NDJSON
         into named sessions (POST /v1/sessions/ID/events), upload whole
         histories for a batch verdict (POST /v1/check), poll violations
         (GET /v1/sessions/ID/violations), scrape GET /metrics and
         /healthz; --threads sets the accept/worker threads and
         --check-threads the batch-check engine behind POST /v1/check
         (both 0 = all cores); --warm-pool caps the finished checkers
         parked for tenant reuse (default 32, surfaced in /healthz);
         port 0 picks an ephemeral port (printed on stdout);
         SIGINT/SIGTERM drains every open session and prints its final
         summary; exits 1 if any drained session was inconsistent
CONVERT: streams IN (any supported format, auto-detected) to OUT via the
         incremental reader/writer pairs; the output format comes from
         --to (native|plume|dbcop|cobra|events|awb) or OUT's extension
         (.awdit/.plume/.dbcop/.cobra/.ndjson/.awb); `-o OUT` also
         works, and omitting OUT writes to stdout (--to required)
EXIT CODES: 0 = consistent, 1 = any history inconsistent,
         2 = usage or parse error"
    );
}

/// Pulls `--flag value` pairs out of an argument list; returns positionals.
struct Flags {
    pairs: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut positional = Vec::new();
        const SWITCHES: [&str; 4] = ["no-prune", "follow", "no-overlap", "stable-report"];
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if SWITCHES.contains(&name) {
                    pairs.push((name.to_string(), "true".to_string()));
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                pairs.push((name.to_string(), value.clone()));
            } else if a == "-o" {
                let value = it.next().ok_or("flag -o needs a value")?;
                pairs.push(("out".to_string(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Flags { pairs, positional })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Streams one history file into a fresh builder — line by line, no
/// full-file `String` (the `check` path goes further and streams into the
/// engine's recycled arenas).
fn load_history(path: &str, format: Option<&str>) -> Result<History, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let reader = std::io::BufReader::new(file);
    let mut b = HistoryBuilder::new();
    match format {
        None | Some("auto") => {
            read_auto(reader, &mut b).map_err(|e| format!("{path}: {e}"))?;
        }
        Some(f) => {
            let fmt: Format = f.parse()?;
            read_history(reader, fmt, &mut b).map_err(|e| format!("{path}: {e}"))?;
        }
    }
    b.finish().map_err(|e| format!("{path}: {e}"))
}

fn parse_threads(flags: &Flags) -> Result<usize, String> {
    flags
        .get("threads")
        .map(|w| w.parse().map_err(|_| "bad --threads value".to_string()))
        .transpose()
        .map(|t| t.unwrap_or(1))
}

fn parse_cc_strategy(flags: &Flags) -> Result<CcStrategy, String> {
    flags
        .get("cc-strategy")
        .map(|s| s.parse())
        .transpose()
        .map(|s| s.unwrap_or_default())
}

fn parse_witnesses(flags: &Flags, default: usize) -> Result<usize, String> {
    flags
        .get("witnesses")
        .map(|w| w.parse().map_err(|_| "bad --witnesses value".to_string()))
        .transpose()
        .map(|w| w.unwrap_or(default))
}

/// The observability side of `check`/`watch`: `--trace FILE` records a
/// Chrome `trace_event` JSON of every engine phase, `--metrics FILE|-`
/// exports the Prometheus text snapshot when the command finishes.
/// Either flag switches the engine's [`Obs`] handle on; with neither the
/// run pays only the disabled-path check per would-be span.
struct ObsSetup {
    obs: Obs,
    trace: Option<(String, Arc<ChromeTraceRecorder>)>,
    metrics: Option<String>,
}

impl ObsSetup {
    fn from_flags(flags: &Flags) -> Self {
        let trace_path = flags.get("trace").map(str::to_string);
        let metrics = flags.get("metrics").map(str::to_string);
        if trace_path.is_none() && metrics.is_none() {
            return ObsSetup {
                obs: Obs::disabled(),
                trace: None,
                metrics: None,
            };
        }
        let trace = trace_path.map(|p| (p, Arc::new(ChromeTraceRecorder::new())));
        let mut builder = Obs::builder();
        if let Some((_, rec)) = &trace {
            builder = builder.recorder_arc(rec.clone());
        }
        ObsSetup {
            obs: builder.build(),
            trace,
            metrics,
        }
    }

    /// Snapshot of the phase aggregates, for per-history deltas.
    fn phases(&self) -> Vec<PhaseTiming> {
        self.obs.phase_timings()
    }

    /// The phases closed since `before`, in report wire form.
    fn timings_since(&self, before: &[PhaseTiming]) -> Vec<PhaseTimingReport> {
        phase_delta(before, &self.phases())
            .iter()
            .map(|t| PhaseTimingReport {
                phase: t.name.to_string(),
                spans: t.count,
                total_ms: t.total_ms(),
            })
            .collect()
    }

    /// Writes the trace and metrics outputs (called once, at the end).
    fn finish(&self) -> Result<(), String> {
        if let Some((path, rec)) = &self.trace {
            rec.write_json(std::path::Path::new(path))
                .map_err(|e| format!("cannot write trace `{path}`: {e}"))?;
            eprintln!("trace:    wrote {} ({} events)", path, rec.events().len());
        }
        if let Some(dest) = &self.metrics {
            let text = self.obs.export_prometheus();
            if dest == "-" {
                let mut out = std::io::stdout().lock();
                out.write_all(text.as_bytes())
                    .and_then(|()| out.flush())
                    .map_err(|e| format!("cannot write metrics: {e}"))?;
            } else {
                std::fs::write(dest, text)
                    .map_err(|e| format!("cannot write metrics `{dest}`: {e}"))?;
            }
        }
        Ok(())
    }
}

/// The optional `--format` pin shared by `check`/`convert`.
fn parse_format_flag(flags: &Flags) -> Result<Option<Format>, String> {
    match flags.get("format") {
        None | Some("auto") => Ok(None),
        Some(f) => Ok(Some(f.parse()?)),
    }
}

/// Resolves one `check` positional — a file or a directory — into a
/// history source (shared by the streaming and materializing paths).
/// `threads > 1` turns on sharded text parsing inside the source.
fn make_source(
    path: &str,
    format: Option<Format>,
    threads: usize,
) -> Result<Box<dyn HistorySource>, String> {
    if std::path::Path::new(path).is_dir() {
        let mut src = DirSource::new(path)
            .map_err(|e| e.to_string())?
            .with_threads(threads);
        if let Some(f) = format {
            src = src.with_format(f);
        }
        if src.is_empty() {
            return Err(format!("{path}: directory holds no history files"));
        }
        Ok(Box::new(src))
    } else {
        let mut src = FilesSource::new([path]).with_threads(threads);
        if let Some(f) = format {
            src = src.with_format(f);
        }
        Ok(Box::new(src))
    }
}

/// Expands the `check` positionals — files and/or directories — into
/// named histories, in argument order (directory contents sorted).
fn gather_histories(flags: &Flags, threads: usize) -> Result<Vec<SourcedHistory>, String> {
    let format = parse_format_flag(flags)?;
    let mut sourced = Vec::new();
    for p in &flags.positional {
        let mut src = make_source(p, format, threads)?;
        sourced.extend(collect_source(src.as_mut()).map_err(|e| e.to_string())?);
    }
    Ok(sourced)
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    if flags.positional.is_empty() {
        return Err("check: missing history file(s) or directory".to_string());
    }
    let isolation = flags.get("isolation").unwrap_or("cc");
    let report_mode = flags.get("report").unwrap_or("text");
    if !matches!(report_mode, "text" | "json") {
        return Err(format!("bad --report value `{report_mode}` (text|json)"));
    }
    let stable = flags.get("stable-report").is_some();
    let cfg = EngineConfig {
        max_cycles: parse_witnesses(&flags, 16)?,
        threads: parse_threads(&flags)?,
        cc_strategy: parse_cc_strategy(&flags)?,
        overlap: flags.get("no-overlap").is_none(),
        ..EngineConfig::default()
    };

    let setup = ObsSetup::from_flags(&flags);
    let mut engine = Engine::with_config(cfg);
    engine.set_obs(setup.obs.clone());
    let mut reports: Vec<HistoryReport> = Vec::new();

    if cfg.threads == 1 {
        // Streaming fast path: every file's records go straight into the
        // engine's recycled ingest arenas — no whole-file `String`, no
        // per-history materialization outside the engine. The reported
        // per-history time covers load + check.
        let level: Option<IsolationLevel> = if isolation == "all" {
            None
        } else {
            Some(isolation.parse().map_err(|e| format!("{e}"))?)
        };
        let format = parse_format_flag(&flags)?;
        for p in &flags.positional {
            let mut src = make_source(p, format, cfg.threads)?;
            loop {
                let phases_before = setup.phases();
                let started = std::time::Instant::now();
                let next = {
                    let _s = setup.obs.span("ingest");
                    src.next_into(&mut engine)
                };
                let name = match next {
                    None => break,
                    Some(Err(e)) => return Err(e.to_string()),
                    Some(Ok(name)) => name,
                };
                let outcomes: Vec<Outcome> = match level {
                    None => engine
                        .finish_ingest_all_levels()
                        .map_err(|e| format!("{name}: {e}"))?
                        .to_vec(),
                    Some(level) => vec![engine
                        .finish_ingest_level(level)
                        .map_err(|e| format!("{name}: {e}"))?],
                };
                let ms = if stable {
                    0.0
                } else {
                    started.elapsed().as_secs_f64() * 1e3
                };
                reports.push(
                    HistoryReport::new(&name, engine.ingested(), &outcomes, ms)
                        .with_timings(setup.timings_since(&phases_before)),
                );
            }
        }
    } else {
        let sourced = gather_histories(&flags, cfg.threads)?;
        if isolation == "all" {
            // One shared index + Read Consistency pass across all three
            // levels.
            for s in &sourced {
                let phases_before = setup.phases();
                let started = std::time::Instant::now();
                let outcomes = engine.check_all_levels(&s.history);
                let ms = if stable {
                    0.0
                } else {
                    started.elapsed().as_secs_f64() * 1e3
                };
                reports.push(
                    HistoryReport::new(&s.name, &s.history, &outcomes, ms)
                        .with_timings(setup.timings_since(&phases_before)),
                );
            }
        } else {
            // Batched through the engine's pool; per-history time is the
            // amortized share of the batch wall-clock.
            let level: IsolationLevel = isolation.parse().map_err(|e| format!("{e}"))?;
            let started = std::time::Instant::now();
            let outcomes = engine.check_many_level(sourced.iter().map(|s| &s.history), level);
            let ms = if stable {
                0.0
            } else {
                started.elapsed().as_secs_f64() * 1e3 / sourced.len().max(1) as f64
            };
            for (s, outcome) in sourced.iter().zip(outcomes) {
                reports.push(HistoryReport::new(&s.name, &s.history, &[outcome], ms));
            }
        }
    }

    let stats = engine.stats();
    let mut report = Report::new(reports);
    if !stable {
        // `--stable-report` omits the run-specific engine stats (and
        // zeroes every timing) so identical inputs produce byte-identical
        // JSON across runs and ingest paths.
        report = report.with_engine(EngineStatsReport {
            histories: stats.histories,
            checks: stats.checks,
            arena_growths: stats.arena_growths,
            arena_bytes: stats.arena_bytes as u64,
        });
    }
    emit_report(
        &report,
        report_mode,
        flags.get("output").or(flags.get("out")),
    )?;
    setup.finish()?;
    if report.any_inconsistent() {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// Routes a finished report to stdout or `--output`, as text or JSON.
fn emit_report(report: &Report, mode: &str, output: Option<&str>) -> Result<(), String> {
    fn to<W: std::io::Write>(w: W, mode: &str, report: &Report) -> std::io::Result<()> {
        if mode == "json" {
            JsonSink(w).emit(report)
        } else {
            TextSink(w).emit(report)
        }
    }
    let result = match output {
        Some(path) => {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            to(file, mode, report)
        }
        None => to(std::io::stdout().lock(), mode, report),
    };
    result.map_err(|e| format!("cannot emit report: {e}"))
}

fn cmd_shrink(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    let path = flags
        .positional
        .first()
        .ok_or("shrink: missing history file")?;
    let level: IsolationLevel = flags
        .get("isolation")
        .unwrap_or("cc")
        .parse()
        .map_err(|e| format!("{e}"))?;
    let history = load_history(path, flags.get("format"))?;
    let Some(small) = awdit_core::shrink_history(&history, level) else {
        println!("history satisfies {level}; nothing to shrink");
        return Ok(ExitCode::SUCCESS);
    };
    eprintln!(
        "shrunk {} -> {} transactions ({} -> {} ops)",
        history.num_txns(),
        small.num_txns(),
        history.size(),
        small.size()
    );
    match flags.get("out") {
        Some(out) => {
            let file =
                std::fs::File::create(out).map_err(|e| format!("cannot write `{out}`: {e}"))?;
            let mut w = std::io::BufWriter::new(file);
            write_history_to(&small, Format::Native, &mut w)
                .and_then(|()| w.flush())
                .map_err(|e| format!("cannot write `{out}`: {e}"))?;
        }
        None => {
            let mut out = std::io::stdout().lock();
            write_history_to(&small, Format::Native, &mut out)
                .and_then(|()| out.flush())
                .map_err(|e| format!("cannot write shrunk history: {e}"))?;
        }
    }
    // Show the witness on the shrunk history (through the engine, like
    // every other check the CLI runs).
    let outcome = Engine::builder()
        .level(level)
        .cc_strategy(parse_cc_strategy(&flags)?)
        .build()
        .check(&small);
    for v in outcome.violations().iter().take(3) {
        eprintln!("witness: {v}");
    }
    Ok(ExitCode::FAILURE)
}

fn cmd_stats(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    let path = flags
        .positional
        .first()
        .ok_or("stats: missing history file")?;
    let history = load_history(path, flags.get("format"))?;
    match flags.get("report").unwrap_or("text") {
        "text" => println!("{}", HistoryStats::of(&history)),
        "json" => {
            // `arena_bytes` is the columnar heap footprint of the loaded
            // history — what an engine's ingest arena would hold for it.
            let json = history_stats_json(
                &HistoryStats::of(&history),
                Some(history.heap_bytes() as u64),
            );
            println!("{json}");
        }
        other => return Err(format!("bad --report value `{other}` (text|json)")),
    }
    Ok(ExitCode::SUCCESS)
}

/// What `convert` writes: a history file format, the NDJSON event
/// stream `awdit watch` consumes, or the binary columnar `.awb` form.
enum ConvertTarget {
    History(Format),
    Events,
    Binary,
}

/// Resolves the output format of `convert`: an explicit `--to`, or the
/// output path's extension (`.ndjson`/`.jsonl` mean events, `.awb` the
/// binary columnar form).
fn convert_target(to: Option<&str>, out_path: Option<&str>) -> Result<ConvertTarget, String> {
    if let Some(to) = to {
        if matches!(to, "events" | "ndjson") {
            return Ok(ConvertTarget::Events);
        }
        if to == "awb" || to == "binary" {
            return Ok(ConvertTarget::Binary);
        }
        return Ok(ConvertTarget::History(to.parse()?));
    }
    let Some(path) = out_path else {
        return Err("convert: missing --to FORMAT (required when writing to stdout)".to_string());
    };
    let ext = std::path::Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    if matches!(ext, "ndjson" | "jsonl") {
        return Ok(ConvertTarget::Events);
    }
    if ext.eq_ignore_ascii_case("awb") {
        return Ok(ConvertTarget::Binary);
    }
    ext.parse()
        .map(ConvertTarget::History)
        .map_err(|_| format!("convert: cannot infer a format from `{path}` (use --to FORMAT)"))
}

fn cmd_convert(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    let input = flags
        .positional
        .first()
        .ok_or("convert: missing input history file")?;
    // `awdit convert IN OUT`, or the flag spelling `-o OUT`.
    let out_path = flags
        .positional
        .get(1)
        .map(String::as_str)
        .or(flags.get("out"));
    let target = convert_target(flags.get("to"), out_path)?;

    // Input side: stream-parse (auto-detected, NDJSON event logs
    // included) into one columnar history; `--format` pins the reader.
    let format = parse_format_flag(&flags)?;
    let mut src = FilesSource::new([input.as_str()]);
    if let Some(f) = format {
        src = src.with_format(f);
    }
    let sourced = src
        .next_history()
        .expect("one input path")
        .map_err(|e| e.to_string())?;

    // Output side: the symmetric streaming writers — records go to the
    // (buffered) sink as they are produced, no output `String`.
    fn emit<W: std::io::Write>(
        history: &History,
        target: &ConvertTarget,
        mut out: W,
    ) -> std::io::Result<()> {
        match target {
            ConvertTarget::History(f) => write_history_to(history, *f, &mut out)?,
            ConvertTarget::Events => write_history_events_to(history, &mut out)?,
            ConvertTarget::Binary => awdit_formats::write_awb_to(history, &mut out)?,
        }
        out.flush()
    }
    let result = match out_path {
        Some(path) => {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            emit(&sourced.history, &target, std::io::BufWriter::new(file))
        }
        None => emit(&sourced.history, &target, std::io::stdout().lock()),
    };
    result.map_err(|e| format!("convert: {e}"))?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_generate(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    let sessions: usize = flags
        .get("sessions")
        .unwrap_or("10")
        .parse()
        .map_err(|_| "bad --sessions value".to_string())?;
    let txns: usize = flags
        .get("txns")
        .unwrap_or("1000")
        .parse()
        .map_err(|_| "bad --txns value".to_string())?;
    let seed: u64 = flags
        .get("seed")
        .unwrap_or("0")
        .parse()
        .map_err(|_| "bad --seed value".to_string())?;
    let db = match flags.get("db").unwrap_or("causal") {
        "ser" | "serializable" => DbIsolation::Serializable,
        "causal" | "cc" => DbIsolation::Causal,
        "ra" => DbIsolation::ReadAtomic,
        "rc" => DbIsolation::ReadCommitted,
        other => return Err(format!("unknown db mode `{other}`")),
    };
    let config = SimConfig::new(db, sessions, seed);
    let bench_name = flags.get("benchmark").unwrap_or("uniform");
    let history = if bench_name == "uniform" {
        let mut w = Uniform::default();
        collect_history(config, &mut w, txns)
    } else {
        let bench: Benchmark = bench_name.parse()?;
        let mut w = bench.build();
        collect_history(config, &mut *w, txns)
    }
    .map_err(|e| format!("generation failed: {e}"))?;

    let format: Format = flags.get("format").unwrap_or("native").parse()?;
    match flags.get("out") {
        Some(out) => {
            let file =
                std::fs::File::create(out).map_err(|e| format!("cannot write `{out}`: {e}"))?;
            let mut w = std::io::BufWriter::new(file);
            write_history_to(&history, format, &mut w)
                .and_then(|()| w.flush())
                .map_err(|e| format!("cannot write `{out}`: {e}"))?;
            eprintln!("wrote {} ({})", out, HistoryStats::of(&history));
        }
        None => {
            let mut out = std::io::stdout().lock();
            write_history_to(&history, format, &mut out)
                .and_then(|()| out.flush())
                .map_err(|e| format!("cannot write history: {e}"))?;
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_watch(args: &[String]) -> Result<ExitCode, String> {
    use std::io::{BufRead, Read, Seek};

    let flags = Flags::parse(args)?;
    let path = flags
        .positional
        .first()
        .ok_or("watch: missing event file (or `-` for stdin)")?;
    let level: IsolationLevel = flags
        .get("isolation")
        .unwrap_or("cc")
        .parse()
        .map_err(|e| format!("{e}"))?;
    let prune = flags.get("no-prune").is_none();
    let follow = flags.get("follow").is_some();
    let prune_interval: u64 = flags
        .get("interval")
        .map(|w| w.parse().map_err(|_| "bad --interval value".to_string()))
        .transpose()?
        .unwrap_or(256);
    let stats_interval: Option<u64> = flags
        .get("stats-interval")
        .map(|w| {
            w.parse()
                .map_err(|_| "bad --stats-interval value".to_string())
        })
        .transpose()?;

    // The online monitor hangs off the same engine config as `check`.
    let setup = ObsSetup::from_flags(&flags);
    let mut engine = Engine::with_config(EngineConfig {
        level,
        prune,
        prune_interval,
        max_cycles: parse_witnesses(&flags, 64)?,
        threads: parse_threads(&flags)?,
        cc_strategy: parse_cc_strategy(&flags)?,
        want_commit_order: false,
        ..EngineConfig::default()
    });
    engine.set_obs(setup.obs.clone());
    let mut checker = engine.watch();

    // Long-lived invocations (`--follow`, stdin pipes) finalize cleanly
    // on SIGINT/SIGTERM instead of dying mid-stream: the handler trips
    // the token, the read loop notices, and the terminal summary below
    // still runs.
    let shutdown = ShutdownToken::new();
    if follow || path == "-" {
        install_signal_handlers(shutdown.clone());
    }
    checker.set_shutdown(shutdown.clone());
    eprintln!(
        "watching {path} for {level} violations (pruning {})",
        if prune { "on" } else { "off" }
    );

    let mut line_no = 0usize;
    let mut feed = |checker: &mut OnlineChecker, line: &str| -> Result<(), String> {
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Ok(());
        }
        let event = awdit_formats::parse_event(trimmed, line_no).map_err(|e| e.to_string())?;
        checker
            .apply(&event)
            .map_err(|e| format!("line {line_no}: {e}"))?;
        let mut printed = false;
        for v in checker.drain_violations() {
            println!("[event {}] VIOLATION: {v}", checker.stats().events);
            printed = true;
        }
        // Downstream monitors tailing a pipe must see each violation as
        // it happens, not when the block buffer fills.
        if printed {
            std::io::stdout()
                .flush()
                .map_err(|e| format!("stdout: {e}"))?;
        }
        Ok(())
    };

    // `--stats-interval N`: a periodic heartbeat on stderr, so a
    // long-running `--follow` session shows progress between violations.
    let mut last_stats = std::time::Instant::now();
    fn maybe_heartbeat(last: &mut std::time::Instant, every: Option<u64>, checker: &OnlineChecker) {
        let Some(secs) = every else { return };
        if last.elapsed().as_secs() >= secs {
            let s = checker.stats();
            eprintln!(
                "[stats] events={} processed={} staged={} live={} retired={} violations={}",
                s.events, s.processed, s.staged_txns, s.live_txns, s.retired_txns, s.violations
            );
            *last = std::time::Instant::now();
        }
    }

    // Feeding a history file (or arbitrary binary junk) into the event
    // stream parser would drown the user in per-line parse errors; sniff
    // the input and fail once, cleanly, with the right exit code (2).
    fn reject_non_events(what: &str, detected: Option<Detected>) -> Result<(), String> {
        match detected {
            None | Some(Detected::Events) => Ok(()),
            Some(Detected::Binary) => Err(format!(
                "{what}: binary input is not an NDJSON event stream \
                 (use `awdit check` for .awb histories)"
            )),
            Some(Detected::History(fmt)) => Err(format!(
                "{what}: detected a {fmt} history, not an NDJSON event stream \
                 (use `awdit check`, or `awdit convert --to events`)"
            )),
        }
    }

    if path == "-" {
        let stdin = std::io::stdin();
        let mut lock = stdin.lock();
        let prefix = lock.fill_buf().map_err(|e| format!("stdin: {e}"))?;
        if looks_binary(prefix) {
            return Err("stdin: binary input is not an NDJSON event stream \
                 (use `awdit check` for .awb histories)"
                .to_string());
        }
        reject_non_events("stdin", detect_bytes(prefix))?;
        let mut line = String::new();
        loop {
            if shutdown.is_triggered() {
                eprintln!("shutdown requested; finalizing");
                break;
            }
            line.clear();
            match lock.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    feed(&mut checker, &line)?;
                    maybe_heartbeat(&mut last_stats, stats_interval, &checker);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(format!("stdin: {e}")),
            }
        }
    } else {
        let detected = detect_path(std::path::Path::new(path))
            .map_err(|e| format!("cannot open `{path}`: {e}"))?;
        reject_non_events(path, detected)?;
        let mut file =
            std::fs::File::open(path).map_err(|e| format!("cannot open `{path}`: {e}"))?;
        let mut buf = String::new();
        let mut pos = 0u64;
        loop {
            file.seek(std::io::SeekFrom::Start(pos))
                .map_err(|e| format!("{path}: {e}"))?;
            buf.clear();
            match file.read_to_string(&mut buf) {
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(format!("{path}: {e}")),
            }
            // Only consume whole lines; a partial tail is re-read next poll.
            let consumed = buf.rfind('\n').map(|i| i + 1).unwrap_or(0);
            for line in buf[..consumed].lines() {
                feed(&mut checker, line)?;
            }
            pos += consumed as u64;
            if !follow {
                for line in buf[consumed..].lines() {
                    feed(&mut checker, line)?;
                }
                break;
            }
            if shutdown.is_triggered() {
                eprintln!("shutdown requested; finalizing");
                break;
            }
            maybe_heartbeat(&mut last_stats, stats_interval, &checker);
            std::thread::sleep(std::time::Duration::from_millis(200));
        }
    }

    let outcome = checker.finish().map_err(|e| format!("{e}"))?;
    let stats = outcome.stats();
    // Violations found while streaming were already printed live; only the
    // ones surfaced by finish (thin-air reads, so∪wr deadlocks) are new.
    for v in outcome.violations() {
        println!("[finish] VIOLATION: {v}");
    }
    println!(
        "processed {} events / {} txns ({} live, {} retired, peak live {})",
        stats.events, stats.processed, stats.live_txns, stats.retired_txns, stats.peak_live_txns
    );
    println!(
        "verdict:  {} ({} violations)",
        if outcome.is_consistent() {
            "consistent"
        } else {
            "inconsistent"
        },
        stats.violations
    );
    setup.finish()?;
    if !outcome.is_consistent() {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args)?;
    if let Some(extra) = flags.positional.first() {
        return Err(format!("serve: unexpected argument `{extra}`"));
    }
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7878").to_string();
    let level: IsolationLevel = flags
        .get("isolation")
        .unwrap_or("cc")
        .parse()
        .map_err(|e| format!("{e}"))?;
    let prune = flags.get("no-prune").is_none();
    let prune_interval: u64 = flags
        .get("interval")
        .map(|w| w.parse().map_err(|_| "bad --interval value".to_string()))
        .transpose()?
        .unwrap_or(256);
    let staging_budget: u64 = flags
        .get("staging-budget")
        .map(|w| {
            w.parse()
                .map_err(|_| "bad --staging-budget value".to_string())
        })
        .transpose()?
        .unwrap_or(4096);
    let max_body_bytes: u64 = flags
        .get("max-body")
        .map(|w| w.parse().map_err(|_| "bad --max-body value".to_string()))
        .transpose()?
        .unwrap_or(64 * 1024 * 1024);
    let timeout_secs: u64 = flags
        .get("timeout")
        .map(|w| w.parse().map_err(|_| "bad --timeout value".to_string()))
        .transpose()?
        .unwrap_or(10);
    let threads = flags
        .get("threads")
        .map(|w| w.parse().map_err(|_| "bad --threads value".to_string()))
        .transpose()?
        .unwrap_or(0usize);
    let check_threads = flags
        .get("check-threads")
        .map(|w| {
            w.parse()
                .map_err(|_| "bad --check-threads value".to_string())
        })
        .transpose()?
        .unwrap_or(0usize);
    let warm_pool = flags
        .get("warm-pool")
        .map(|w| w.parse().map_err(|_| "bad --warm-pool value".to_string()))
        .transpose()?
        .unwrap_or(32usize);

    // The /metrics endpoint is the point of running a daemon, so metrics
    // stay on even without --metrics; --trace/--metrics additionally get
    // their usual end-of-run exports.
    let setup = ObsSetup::from_flags(&flags);
    let obs = if setup.obs.enabled() {
        setup.obs.clone()
    } else {
        Obs::new()
    };
    let stream = StreamConfig {
        level,
        prune,
        prune_interval: prune_interval.max(1),
        max_cycle_reports: parse_witnesses(&flags, 64)?,
        threads: 1,
    };
    let server = Server::bind(ServeConfig {
        addr,
        threads,
        check_threads,
        stream,
        staging_budget,
        warm_pool,
        limits: HttpLimits {
            max_body_bytes,
            read_timeout: std::time::Duration::from_secs(timeout_secs.max(1)),
        },
        obs,
    })
    .map_err(|e| format!("serve: cannot bind: {e}"))?;
    install_signal_handlers(server.shutdown_token());

    // The bound address goes to stdout (scripts bind port 0 and scrape
    // it); everything chatty stays on stderr.
    println!("awdit serve listening on {}", server.local_addr());
    std::io::stdout()
        .flush()
        .map_err(|e| format!("stdout: {e}"))?;
    eprintln!(
        "level {level}, pruning {}, staging budget {staging_budget}; ctrl-c drains",
        if prune { "on" } else { "off" },
    );

    let summary = server.run().map_err(|e| format!("serve: {e}"))?;
    let mut inconsistent = false;
    for s in &summary.sessions {
        inconsistent |= !s.consistent;
        let verdict = match (&s.error, s.consistent) {
            (Some(e), _) => format!("error ({e})"),
            (None, true) => "consistent".to_string(),
            (None, false) => "inconsistent".to_string(),
        };
        println!(
            "session {}: {} ({} events, {} violations)",
            s.id, verdict, s.stats.events, s.stats.violations
        );
    }
    setup.finish()?;
    if inconsistent {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}
