//! [`HistorySource`] implementations over the file formats: explicit file
//! lists, whole directories, and streaming NDJSON event logs.
//!
//! These are the "input edge" of the engine API
//! ([`Engine::check_source`](awdit_core::Engine::check_source)): the CLI's
//! multi-file `awdit check` mode is a [`FilesSource`]/[`DirSource`], and a
//! recorded `awdit watch` event log checks batch-style through the same
//! entry point (each NDJSON file replays into one [`History`]).

use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use awdit_core::parallel::Pool;
use awdit_core::{
    History, HistoryBuilder, HistorySink, HistorySource, SourceError, SourcedHistory,
};
use awdit_stream::Event;

use crate::binary::read_awb_path_into;
use crate::detect::{detect_bytes, detect_extension, looks_binary, read_prefix, Detected};
use crate::reader::LineReader;
use crate::shard::read_sharded_pool;
use crate::stream::{read_events_lines, EventReplayer};
use crate::{read_history_lines, Format, ParseError};

/// Replays a transaction event stream into any [`HistorySink`] (sessions
/// numbered by first appearance) — the slice-based sibling of
/// [`read_events`](crate::read_events).
///
/// # Errors
///
/// Returns a message when the stream is ill-formed (events outside an
/// open transaction, nested `begin`s, or a stream ending with an open
/// transaction), prefixed with the offending event's index.
pub fn events_into_sink<S: HistorySink + ?Sized>(
    events: &[Event],
    sink: &mut S,
) -> Result<(), String> {
    let mut replay = EventReplayer::new();
    for (i, event) in events.iter().enumerate() {
        replay
            .apply(sink, event)
            .map_err(|m| format!("event {i}: {m}"))?;
    }
    replay.finish()
}

/// Replays a transaction event stream into a complete [`History`]
/// (sessions are numbered by first appearance).
///
/// The inverse of [`events_of_history`](awdit_stream::events_of_history):
/// per-session event order becomes session order, and the builder
/// resolves read sources exactly as any other parser would.
///
/// # Errors
///
/// Returns a message when the stream is ill-formed (events outside an
/// open transaction, nested `begin`s, or a history that fails to build).
pub fn history_of_events(events: &[Event]) -> Result<History, String> {
    let mut b = HistoryBuilder::new();
    events_into_sink(events, &mut b)?;
    b.finish().map_err(|e| e.to_string())
}

/// Streams one history file into `sink`, dispatching on
/// [`detect`](crate::detect) (content sniff first, extension fallback)
/// unless a [`Format`] is pinned: binary `.awb` files bulk-load (mmap
/// where available), NDJSON event logs replay, and text histories either
/// stream line by line (`threads <= 1`, no full-file buffer anywhere) or
/// parse in parallel shards through the recycled `buf`.
fn read_path_into(
    pool: &Pool,
    path: &Path,
    format: Option<Format>,
    threads: usize,
    buf: &mut Vec<u8>,
    sink: &mut (impl HistorySink + ?Sized),
) -> Result<(), String> {
    use std::io::{Read, Seek, SeekFrom};

    let mut file = std::fs::File::open(path).map_err(|e| format!("cannot read: {e}"))?;
    let detected = match format {
        Some(f) => Detected::History(f),
        None => {
            let prefix = read_prefix(&mut file).map_err(|e| format!("cannot read: {e}"))?;
            // Content sniffing wins; binary-looking data must never fall
            // back to a *text* extension (it would misparse as UTF-8).
            let sniffed = match detect_bytes(&prefix) {
                Some(d) => Some(d),
                None if looks_binary(&prefix) => {
                    return Err("unrecognized binary data (not an .awb history)".to_string());
                }
                None => detect_extension(path),
            };
            match sniffed {
                Some(d) => {
                    file.seek(SeekFrom::Start(0))
                        .map_err(|e| format!("cannot read: {e}"))?;
                    d
                }
                None => {
                    return Err(ParseError::new(1, "unrecognized history format").to_string());
                }
            }
        }
    };
    let bytes = match detected {
        Detected::Binary => {
            drop(file);
            read_awb_path_into(path, sink).map_err(|e| e.to_string())?;
            std::fs::metadata(path).map_or(0, |m| m.len())
        }
        Detected::Events => {
            let mut lines = LineReader::new(BufReader::new(file));
            read_events_lines(&mut lines, sink).map_err(|e| e.to_string())?;
            std::fs::metadata(path).map_or(0, |m| m.len())
        }
        Detected::History(f) if threads > 1 => {
            buf.clear();
            file.read_to_end(buf)
                .map_err(|e| format!("cannot read: {e}"))?;
            read_sharded_pool(pool, buf, f, threads, sink).map_err(|e| e.to_string())?;
            buf.len() as u64
        }
        Detected::History(f) => {
            let mut lines = LineReader::new(BufReader::new(file));
            read_history_lines(&mut lines, f, sink).map_err(|e| e.to_string())?;
            std::fs::metadata(path).map_or(0, |m| m.len())
        }
    };
    if let Some(metrics) = awdit_obs::current().metrics() {
        metrics.counter("awdit_ingest_bytes_total").add(bytes);
    }
    Ok(())
}

/// A [`HistorySource`] over an explicit list of history files, yielded in
/// list order. Each file's kind — text format, binary `.awb`, NDJSON
/// event log — is auto-detected via [`detect`](crate::detect) unless
/// pinned with [`with_format`](Self::with_format). With
/// [`with_threads`](Self::with_threads) (or
/// [`HistorySource::set_threads`], as
/// [`Engine::check_source`](awdit_core::Engine::check_source) calls it)
/// above one, text files parse in parallel shards — bit-identical to the
/// streaming parse.
#[derive(Clone, Debug)]
pub struct FilesSource {
    paths: Vec<PathBuf>,
    format: Option<Format>,
    pos: usize,
    threads: usize,
    /// Whole-file buffer for sharded parsing, recycled across files
    /// (empty and unused while `threads <= 1`).
    buf: Vec<u8>,
    /// Lazily-created worker pool shared by the cross-file drain and
    /// every intra-file shard parse, so a fleet of files costs one set of
    /// parked threads instead of per-file spawns. Recreated only when the
    /// thread budget changes width; `None` until the first parallel use
    /// (a width-1 budget never creates one with workers).
    pool: Option<Arc<Pool>>,
}

impl FilesSource {
    /// A source over the given paths, in order.
    pub fn new<I, P>(paths: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: Into<PathBuf>,
    {
        FilesSource {
            paths: paths.into_iter().map(Into::into).collect(),
            format: None,
            pos: 0,
            threads: 1,
            buf: Vec::new(),
            pool: None,
        }
    }

    /// The source's worker pool at width `threads`, created on first use
    /// and kept warm across files (recreated only when the width
    /// changes).
    fn pool_for(&mut self, threads: usize) -> Arc<Pool> {
        match &self.pool {
            Some(pool) if pool.width() == awdit_core::parallel::effective_threads(threads) => {
                Arc::clone(pool)
            }
            _ => {
                let pool = Arc::new(Pool::new(threads));
                self.pool = Some(Arc::clone(&pool));
                pool
            }
        }
    }

    /// Pins every file to one explicit format instead of auto-detecting.
    pub fn with_format(mut self, format: Format) -> Self {
        self.format = Some(format);
        self
    }

    /// Parses text files in up to `threads` parallel shards (`1` =
    /// stream sequentially, `0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = awdit_core::parallel::effective_threads(threads);
        self
    }

    /// Number of files remaining.
    pub fn remaining(&self) -> usize {
        self.paths.len() - self.pos
    }

    /// Streams the file at `path` into `sink`, returning its display name.
    fn load_into(
        &mut self,
        path: &Path,
        sink: &mut (impl HistorySink + ?Sized),
    ) -> Result<String, SourceError> {
        let origin = path.display().to_string();
        let pool = self.pool_for(self.threads);
        read_path_into(&pool, path, self.format, self.threads, &mut self.buf, sink).map_err(
            |message| SourceError {
                origin: origin.clone(),
                message,
            },
        )?;
        Ok(origin)
    }

    fn load(&mut self, path: &Path) -> Result<SourcedHistory, SourceError> {
        let mut b = HistoryBuilder::new();
        let name = self.load_into(path, &mut b)?;
        let history = b.finish().map_err(|e| SourceError {
            origin: name.clone(),
            message: e.to_string(),
        })?;
        Ok(SourcedHistory { name, history })
    }
}

impl HistorySource for FilesSource {
    fn next_history(&mut self) -> Option<Result<SourcedHistory, SourceError>> {
        let path = self.paths.get(self.pos)?.clone();
        self.pos += 1;
        Some(self.load(&path))
    }

    /// The streaming edge: the file's records are pushed into `sink` as
    /// they are read — never materializing a [`History`], which is what
    /// lets [`Engine::check_source`](awdit_core::Engine::check_source)
    /// ingest straight into its recycled arenas.
    fn next_into(
        &mut self,
        sink: &mut dyn awdit_core::HistorySink,
    ) -> Option<Result<String, SourceError>> {
        let path = self.paths.get(self.pos)?.clone();
        self.pos += 1;
        Some(self.load_into(&path, sink))
    }

    fn set_threads(&mut self, threads: usize) {
        self.threads = awdit_core::parallel::effective_threads(threads);
    }

    /// The cross-file parallel drain: the thread budget is split into
    /// `W = min(threads, files)` file workers that steal whole files from
    /// a shared cursor, each parsing its file in `threads / W` shards —
    /// so a pile of small files parallelizes across files, a fleet of a
    /// few huge ones still shards within each file, and the two compose
    /// for everything in between. Histories come back in path order and
    /// are bit-identical to the sequential drain; on failure the
    /// first-failing file *in path order* wins, matching
    /// [`collect_source`](awdit_core::collect_source)'s fail-fast
    /// semantics.
    fn collect_parallel(
        &mut self,
        threads: usize,
    ) -> Option<Result<Vec<SourcedHistory>, SourceError>> {
        let threads = awdit_core::parallel::effective_threads(threads);
        let paths = &self.paths[self.pos.min(self.paths.len())..];
        if threads <= 1 || paths.len() <= 1 {
            // The sequential drain already shards within each file via
            // `self.threads` — nothing to gain here.
            return None;
        }
        let workers = threads.min(paths.len());
        let shard_threads = (threads / workers).max(1);
        let format = self.format;
        let pool = self.pool_for(threads);
        let paths = &self.paths[self.pos.min(self.paths.len())..];
        let results = awdit_core::parallel::map_shards_with(
            &pool,
            workers,
            "fleet_parse",
            paths,
            Vec::new,
            |buf: &mut Vec<u8>, _, path| {
                let origin = path.display().to_string();
                let mut b = HistoryBuilder::new();
                read_path_into(&pool, path, format, shard_threads, buf, &mut b).map_err(
                    |message| SourceError {
                        origin: origin.clone(),
                        message,
                    },
                )?;
                let history = b.finish().map_err(|e| SourceError {
                    origin: origin.clone(),
                    message: e.to_string(),
                })?;
                Ok(SourcedHistory {
                    name: origin,
                    history,
                })
            },
        );
        self.pos = self.paths.len();
        // Results are in path order, so the first `Err` here is the one
        // the sequential drain would have stopped at.
        Some(results.into_iter().collect())
    }
}

/// A [`HistorySource`] over every regular file of a directory, sorted by
/// file name for deterministic batch order (subdirectories are skipped).
#[derive(Clone, Debug)]
pub struct DirSource {
    inner: FilesSource,
}

impl DirSource {
    /// Scans `dir` and builds the sorted file list eagerly.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be read.
    pub fn new(dir: impl AsRef<Path>) -> Result<Self, SourceError> {
        let dir = dir.as_ref();
        let origin = dir.display().to_string();
        let entries = std::fs::read_dir(dir).map_err(|e| SourceError {
            origin: origin.clone(),
            message: format!("cannot read directory: {e}"),
        })?;
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| SourceError {
                origin: origin.clone(),
                message: format!("cannot read directory entry: {e}"),
            })?;
            let path = entry.path();
            if path.is_file() {
                paths.push(path);
            }
        }
        paths.sort();
        Ok(DirSource {
            inner: FilesSource::new(paths),
        })
    }

    /// Pins every file to one explicit format instead of auto-detecting.
    pub fn with_format(mut self, format: Format) -> Self {
        self.inner = self.inner.with_format(format);
        self
    }

    /// Parses text files in up to `threads` parallel shards (see
    /// [`FilesSource::with_threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.inner = self.inner.with_threads(threads);
        self
    }

    /// Number of files found.
    pub fn len(&self) -> usize {
        self.inner.remaining()
    }

    /// Whether the directory held no regular files.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl HistorySource for DirSource {
    fn next_history(&mut self) -> Option<Result<SourcedHistory, SourceError>> {
        self.inner.next_history()
    }

    fn next_into(
        &mut self,
        sink: &mut dyn awdit_core::HistorySink,
    ) -> Option<Result<String, SourceError>> {
        self.inner.next_into(sink)
    }

    fn set_threads(&mut self, threads: usize) {
        self.inner.set_threads(threads);
    }

    fn collect_parallel(
        &mut self,
        threads: usize,
    ) -> Option<Result<Vec<SourcedHistory>, SourceError>> {
        self.inner.collect_parallel(threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::{check, collect_source, Engine, IsolationLevel};
    use awdit_stream::events_of_history;

    fn sample() -> History {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        b.begin(s0);
        b.write(s0, 100, 2);
        b.write(s0, 200, 4);
        b.commit(s0);
        b.begin(s1);
        b.read(s1, 100, 2);
        b.read(s1, 200, 4);
        b.abort(s1);
        b.finish().unwrap()
    }

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("awdit-source-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn events_round_trip_to_history() {
        let h = sample();
        let events = events_of_history(&h);
        let h2 = history_of_events(&events).unwrap();
        assert_eq!(h.num_txns(), h2.num_txns());
        assert_eq!(h.size(), h2.size());
        for level in IsolationLevel::ALL {
            assert_eq!(
                check(&h, level).is_consistent(),
                check(&h2, level).is_consistent()
            );
        }
    }

    #[test]
    fn malformed_event_streams_are_rejected() {
        let bad = [Event::Commit { session: 0 }];
        assert!(history_of_events(&bad).is_err());
        let bad = [Event::Begin { session: 0 }, Event::Begin { session: 0 }];
        assert!(history_of_events(&bad).is_err());
        let bad = [Event::Begin { session: 0 }];
        assert!(history_of_events(&bad).is_err());
    }

    fn committed_sample() -> History {
        // Plume-style files drop aborted transactions, so the cross-format
        // directory test uses a fully-committed history.
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        b.begin(s0);
        b.write(s0, 100, 2);
        b.write(s0, 200, 4);
        b.commit(s0);
        b.begin(s1);
        b.read(s1, 100, 2);
        b.read(s1, 200, 4);
        b.commit(s1);
        b.finish().unwrap()
    }

    #[test]
    fn dir_source_finds_files_sorted_and_mixed_formats() {
        let dir = tmpdir("dir");
        let h = committed_sample();
        std::fs::write(
            dir.join("b.awdit"),
            crate::write_history(&h, Format::Native),
        )
        .unwrap();
        std::fs::write(dir.join("a.plume"), crate::write_history(&h, Format::Plume)).unwrap();
        std::fs::write(
            dir.join("c.ndjson"),
            crate::write_events(&events_of_history(&h)),
        )
        .unwrap();
        let mut src = DirSource::new(&dir).unwrap();
        assert_eq!(src.len(), 3);
        let all = collect_source(&mut src).unwrap();
        assert_eq!(all.len(), 3);
        assert!(all[0].name.ends_with("a.plume"));
        assert!(all[1].name.ends_with("b.awdit"));
        assert!(all[2].name.ends_with("c.ndjson"));
        for s in &all {
            assert_eq!(s.history.size(), h.size(), "{}", s.name);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn files_source_reports_errors_with_origin() {
        let dir = tmpdir("err");
        let bad = dir.join("bad.awdit");
        std::fs::write(&bad, "definitely not a history\n").unwrap();
        let missing = dir.join("missing.awdit");
        let mut src = FilesSource::new([bad.clone(), missing.clone()]);
        let err = src.next_history().unwrap().unwrap_err();
        assert!(err.origin.ends_with("bad.awdit"));
        let err = src.next_history().unwrap().unwrap_err();
        assert!(err.message.contains("cannot read"), "{err}");
        assert!(src.next_history().is_none());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn parallel_collect_matches_sequential_drain() {
        let dir = tmpdir("par");
        let h = committed_sample();
        for i in 0..7 {
            std::fs::write(
                dir.join(format!("h{i}.awdit")),
                crate::write_history(&h, Format::Native),
            )
            .unwrap();
        }
        let expected = collect_source(&mut DirSource::new(&dir).unwrap()).unwrap();
        for threads in [2, 3, 8, 32] {
            let got = DirSource::new(&dir)
                .unwrap()
                .collect_parallel(threads)
                .expect("multi-file source has a parallel drain")
                .unwrap();
            assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g.name, e.name);
                assert_eq!(g.history, e.history);
            }
        }
        // One file or one thread: no parallel drain (callers fall back).
        let mut one = FilesSource::new([dir.join("h0.awdit")]);
        assert!(one.collect_parallel(8).is_none());
        let mut seq = DirSource::new(&dir).unwrap();
        assert!(seq.collect_parallel(1).is_none());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn parallel_collect_fails_on_first_bad_file_in_path_order() {
        let dir = tmpdir("par-err");
        let h = committed_sample();
        std::fs::write(
            dir.join("a.awdit"),
            crate::write_history(&h, Format::Native),
        )
        .unwrap();
        std::fs::write(dir.join("b.awdit"), "first bad file\n").unwrap();
        std::fs::write(dir.join("c.awdit"), "second bad file\n").unwrap();
        let err = DirSource::new(&dir)
            .unwrap()
            .collect_parallel(4)
            .unwrap()
            .unwrap_err();
        assert!(err.origin.ends_with("b.awdit"), "{err}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn engine_checks_a_directory_source() {
        let dir = tmpdir("engine");
        let h = sample();
        for i in 0..3 {
            std::fs::write(
                dir.join(format!("h{i}.awdit")),
                crate::write_history(&h, Format::Native),
            )
            .unwrap();
        }
        let mut engine = Engine::new();
        let mut src = DirSource::new(&dir).unwrap();
        let named = engine.check_source(&mut src).unwrap();
        assert_eq!(named.len(), 3);
        assert!(named.iter().all(|(_, o)| o.is_consistent()));
        let _ = std::fs::remove_dir_all(dir);
    }
}
