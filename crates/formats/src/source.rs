//! [`HistorySource`] implementations over the file formats: explicit file
//! lists, whole directories, and streaming NDJSON event logs.
//!
//! These are the "input edge" of the engine API
//! ([`Engine::check_source`](awdit_core::Engine::check_source)): the CLI's
//! multi-file `awdit check` mode is a [`FilesSource`]/[`DirSource`], and a
//! recorded `awdit watch` event log checks batch-style through the same
//! entry point (each NDJSON file replays into one [`History`]).

use std::io::BufReader;
use std::path::{Path, PathBuf};

use awdit_core::{
    History, HistoryBuilder, HistorySink, HistorySource, SourceError, SourcedHistory,
};
use awdit_stream::Event;

use crate::reader::LineReader;
use crate::stream::{read_events_lines, EventReplayer};
use crate::{read_history_lines, sniff_format, Format, ParseError};

/// Replays a transaction event stream into any [`HistorySink`] (sessions
/// numbered by first appearance) — the slice-based sibling of
/// [`read_events`](crate::read_events).
///
/// # Errors
///
/// Returns a message when the stream is ill-formed (events outside an
/// open transaction, nested `begin`s, or a stream ending with an open
/// transaction), prefixed with the offending event's index.
pub fn events_into_sink<S: HistorySink + ?Sized>(
    events: &[Event],
    sink: &mut S,
) -> Result<(), String> {
    let mut replay = EventReplayer::new();
    for (i, event) in events.iter().enumerate() {
        replay
            .apply(sink, event)
            .map_err(|m| format!("event {i}: {m}"))?;
    }
    replay.finish()
}

/// Replays a transaction event stream into a complete [`History`]
/// (sessions are numbered by first appearance).
///
/// The inverse of [`events_of_history`](awdit_stream::events_of_history):
/// per-session event order becomes session order, and the builder
/// resolves read sources exactly as any other parser would.
///
/// # Errors
///
/// Returns a message when the stream is ill-formed (events outside an
/// open transaction, nested `begin`s, or a history that fails to build).
pub fn history_of_events(events: &[Event]) -> Result<History, String> {
    let mut b = HistoryBuilder::new();
    events_into_sink(events, &mut b)?;
    b.finish().map_err(|e| e.to_string())
}

/// Streams one history file into `sink`: an explicit [`Format`], or
/// sniffing — including NDJSON event logs (first line starts with `{`).
/// The file is read line by line; no full-file `String` exists at any
/// point.
fn read_file_into(
    path: &Path,
    format: Option<Format>,
    sink: &mut (impl HistorySink + ?Sized),
) -> Result<(), String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot read: {e}"))?;
    let mut lines = LineReader::new(BufReader::new(file));
    let result: Result<(), ParseError> = (|| {
        if let Some(f) = format {
            return read_history_lines(&mut lines, f, sink);
        }
        if lines.skip_blank_lines()? {
            if let Some((line, _)) = lines.peek_line()? {
                if line.trim_start().starts_with('{') {
                    return read_events_lines(&mut lines, sink);
                }
            }
        }
        match sniff_format(&mut lines)? {
            Some(f) => read_history_lines(&mut lines, f, sink),
            None => Err(ParseError::new(
                1,
                "unrecognized history format".to_string(),
            )),
        }
    })();
    result.map_err(|e| e.to_string())
}

/// A [`HistorySource`] over an explicit list of history files, yielded in
/// list order. Formats are auto-detected per file (NDJSON event logs
/// included) unless pinned with [`with_format`](Self::with_format).
#[derive(Clone, Debug)]
pub struct FilesSource {
    paths: Vec<PathBuf>,
    format: Option<Format>,
    pos: usize,
}

impl FilesSource {
    /// A source over the given paths, in order.
    pub fn new<I, P>(paths: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: Into<PathBuf>,
    {
        FilesSource {
            paths: paths.into_iter().map(Into::into).collect(),
            format: None,
            pos: 0,
        }
    }

    /// Pins every file to one explicit format instead of auto-detecting.
    pub fn with_format(mut self, format: Format) -> Self {
        self.format = Some(format);
        self
    }

    /// Number of files remaining.
    pub fn remaining(&self) -> usize {
        self.paths.len() - self.pos
    }

    /// Streams the file at `path` into `sink`, returning its display name.
    fn load_into(
        &self,
        path: &Path,
        sink: &mut (impl HistorySink + ?Sized),
    ) -> Result<String, SourceError> {
        let origin = path.display().to_string();
        read_file_into(path, self.format, sink).map_err(|message| SourceError {
            origin: origin.clone(),
            message,
        })?;
        Ok(origin)
    }

    fn load(&self, path: &Path) -> Result<SourcedHistory, SourceError> {
        let mut b = HistoryBuilder::new();
        let name = self.load_into(path, &mut b)?;
        let history = b.finish().map_err(|e| SourceError {
            origin: name.clone(),
            message: e.to_string(),
        })?;
        Ok(SourcedHistory { name, history })
    }
}

impl HistorySource for FilesSource {
    fn next_history(&mut self) -> Option<Result<SourcedHistory, SourceError>> {
        let path = self.paths.get(self.pos)?.clone();
        self.pos += 1;
        Some(self.load(&path))
    }

    /// The streaming edge: the file's records are pushed into `sink` as
    /// they are read — never materializing a [`History`], which is what
    /// lets [`Engine::check_source`](awdit_core::Engine::check_source)
    /// ingest straight into its recycled arenas.
    fn next_into(
        &mut self,
        sink: &mut dyn awdit_core::HistorySink,
    ) -> Option<Result<String, SourceError>> {
        let path = self.paths.get(self.pos)?.clone();
        self.pos += 1;
        Some(self.load_into(&path, sink))
    }
}

/// A [`HistorySource`] over every regular file of a directory, sorted by
/// file name for deterministic batch order (subdirectories are skipped).
#[derive(Clone, Debug)]
pub struct DirSource {
    inner: FilesSource,
}

impl DirSource {
    /// Scans `dir` and builds the sorted file list eagerly.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be read.
    pub fn new(dir: impl AsRef<Path>) -> Result<Self, SourceError> {
        let dir = dir.as_ref();
        let origin = dir.display().to_string();
        let entries = std::fs::read_dir(dir).map_err(|e| SourceError {
            origin: origin.clone(),
            message: format!("cannot read directory: {e}"),
        })?;
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| SourceError {
                origin: origin.clone(),
                message: format!("cannot read directory entry: {e}"),
            })?;
            let path = entry.path();
            if path.is_file() {
                paths.push(path);
            }
        }
        paths.sort();
        Ok(DirSource {
            inner: FilesSource::new(paths),
        })
    }

    /// Pins every file to one explicit format instead of auto-detecting.
    pub fn with_format(mut self, format: Format) -> Self {
        self.inner = self.inner.with_format(format);
        self
    }

    /// Number of files found.
    pub fn len(&self) -> usize {
        self.inner.remaining()
    }

    /// Whether the directory held no regular files.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl HistorySource for DirSource {
    fn next_history(&mut self) -> Option<Result<SourcedHistory, SourceError>> {
        self.inner.next_history()
    }

    fn next_into(
        &mut self,
        sink: &mut dyn awdit_core::HistorySink,
    ) -> Option<Result<String, SourceError>> {
        self.inner.next_into(sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::{check, collect_source, Engine, IsolationLevel};
    use awdit_stream::events_of_history;

    fn sample() -> History {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        b.begin(s0);
        b.write(s0, 100, 2);
        b.write(s0, 200, 4);
        b.commit(s0);
        b.begin(s1);
        b.read(s1, 100, 2);
        b.read(s1, 200, 4);
        b.abort(s1);
        b.finish().unwrap()
    }

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("awdit-source-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn events_round_trip_to_history() {
        let h = sample();
        let events = events_of_history(&h);
        let h2 = history_of_events(&events).unwrap();
        assert_eq!(h.num_txns(), h2.num_txns());
        assert_eq!(h.size(), h2.size());
        for level in IsolationLevel::ALL {
            assert_eq!(
                check(&h, level).is_consistent(),
                check(&h2, level).is_consistent()
            );
        }
    }

    #[test]
    fn malformed_event_streams_are_rejected() {
        let bad = [Event::Commit { session: 0 }];
        assert!(history_of_events(&bad).is_err());
        let bad = [Event::Begin { session: 0 }, Event::Begin { session: 0 }];
        assert!(history_of_events(&bad).is_err());
        let bad = [Event::Begin { session: 0 }];
        assert!(history_of_events(&bad).is_err());
    }

    fn committed_sample() -> History {
        // Plume-style files drop aborted transactions, so the cross-format
        // directory test uses a fully-committed history.
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        b.begin(s0);
        b.write(s0, 100, 2);
        b.write(s0, 200, 4);
        b.commit(s0);
        b.begin(s1);
        b.read(s1, 100, 2);
        b.read(s1, 200, 4);
        b.commit(s1);
        b.finish().unwrap()
    }

    #[test]
    fn dir_source_finds_files_sorted_and_mixed_formats() {
        let dir = tmpdir("dir");
        let h = committed_sample();
        std::fs::write(
            dir.join("b.awdit"),
            crate::write_history(&h, Format::Native),
        )
        .unwrap();
        std::fs::write(dir.join("a.plume"), crate::write_history(&h, Format::Plume)).unwrap();
        std::fs::write(
            dir.join("c.ndjson"),
            crate::write_events(&events_of_history(&h)),
        )
        .unwrap();
        let mut src = DirSource::new(&dir).unwrap();
        assert_eq!(src.len(), 3);
        let all = collect_source(&mut src).unwrap();
        assert_eq!(all.len(), 3);
        assert!(all[0].name.ends_with("a.plume"));
        assert!(all[1].name.ends_with("b.awdit"));
        assert!(all[2].name.ends_with("c.ndjson"));
        for s in &all {
            assert_eq!(s.history.size(), h.size(), "{}", s.name);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn files_source_reports_errors_with_origin() {
        let dir = tmpdir("err");
        let bad = dir.join("bad.awdit");
        std::fs::write(&bad, "definitely not a history\n").unwrap();
        let missing = dir.join("missing.awdit");
        let mut src = FilesSource::new([bad.clone(), missing.clone()]);
        let err = src.next_history().unwrap().unwrap_err();
        assert!(err.origin.ends_with("bad.awdit"));
        let err = src.next_history().unwrap().unwrap_err();
        assert!(err.message.contains("cannot read"), "{err}");
        assert!(src.next_history().is_none());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn engine_checks_a_directory_source() {
        let dir = tmpdir("engine");
        let h = sample();
        for i in 0..3 {
            std::fs::write(
                dir.join(format!("h{i}.awdit")),
                crate::write_history(&h, Format::Native),
            )
            .unwrap();
        }
        let mut engine = Engine::new();
        let mut src = DirSource::new(&dir).unwrap();
        let named = engine.check_source(&mut src).unwrap();
        assert_eq!(named.len(), 3);
        assert!(named.iter().all(|(_, o)| o.is_consistent()));
        let _ = std::fs::remove_dir_all(dir);
    }
}
