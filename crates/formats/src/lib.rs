//! # awdit-formats — history file formats
//!
//! The AWDIT tool "parses database transaction histories in various
//! formats also used by other isolation testers such as Plume, PolySI,
//! DBCop, and Cobra" (Section 5). This crate provides writers and parsers
//! for four text formats:
//!
//! | Format | Module | Shape |
//! |---|---|---|
//! | native | [`native`] | session blocks, one transaction per line |
//! | Plume-style | [`plume`] | one `op(key,value,session,txn)` per line |
//! | DBCop-style | [`dbcop`] | counted sessions/transactions/operations |
//! | Cobra-style | [`cobra`] | tagged per-session log records |
//! | streaming NDJSON | [`stream`] | one transaction event per line (for `awdit watch`) |
//!
//! Beyond the text formats, [`binary`] defines the mmap-able binary
//! columnar `.awb` format, [`shard`] parses large text files in parallel
//! byte-range shards with bit-identical output, and [`detect`]
//! centralizes content-sniff-then-extension dispatch across every kind
//! of input. [`detect_format`] sniffs a text header, and [`parse_auto`]
//! parses whichever format it finds.
//!
//! Two further modules form the edges of the engine API: [`source`]
//! implements [`HistorySource`](awdit_core::HistorySource) over file
//! lists, directories, and NDJSON event logs, and [`report`] defines the
//! versioned machine-readable JSON [`Report`] schema with pluggable
//! [`ReportSink`]s.
//!
//! ```
//! use awdit_formats::{parse_auto, write_history, Format};
//! use awdit_core::HistoryBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = HistoryBuilder::new();
//! let s = b.session();
//! b.begin(s);
//! b.write(s, 1, 1);
//! b.commit(s);
//! let history = b.finish()?;
//!
//! let text = write_history(&history, Format::Native);
//! let parsed = parse_auto(&text)?;
//! assert_eq!(parsed.size(), 1);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the one `#[allow(unsafe_code)]` island is
// the tiny mmap wrapper in [`binary`].
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod cobra;
pub mod dbcop;
pub mod detect;
pub mod error;
pub mod native;
pub mod plume;
pub mod reader;
pub mod report;
pub mod shard;
pub mod source;
pub mod stream;

pub use binary::{
    decode_awb_into, decode_awb_into_sink, parse_awb, read_awb_path_into, sniff_awb, write_awb,
    write_awb_to, AwbError, AWB_EXTENSION, AWB_MAGIC, AWB_VERSION,
};
pub use cobra::{parse_cobra, read_cobra, write_cobra, write_cobra_to, COBRA_HEADER};
pub use dbcop::{parse_dbcop, read_dbcop, write_dbcop, write_dbcop_to, DBCOP_HEADER};
pub use detect::{
    detect_bytes, detect_extension, detect_path, looks_binary, Detected, SNIFF_BYTES,
};
pub use error::ParseError;
pub use native::{parse_native, read_native, write_native, write_native_to, NATIVE_HEADER};
pub use plume::{parse_plume, read_plume, write_plume, write_plume_to};
pub use reader::LineReader;
pub use report::{
    history_stats_json, EdgeReport, EngineStatsReport, HistoryReport, JsonSink, LevelReport,
    PhaseTimingReport, Report, ReportSink, TextSink, ViolationReport, MIN_SCHEMA_VERSION,
    SCHEMA_VERSION,
};
pub use shard::{
    read_sharded, read_sharded_at, read_sharded_at_pool, read_sharded_pool, SHARD_MIN_BYTES,
};
pub use source::{events_into_sink, history_of_events, DirSource, FilesSource};
pub use stream::{
    parse_event, parse_events, read_events, write_event, write_event_to, write_events,
    write_events_to, write_history_events_to,
};

use std::io::{BufRead, Write};

use awdit_core::{History, HistorySink};

/// The supported history file formats.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Format {
    /// The native AWDIT format.
    Native,
    /// Plume-style one-op-per-line.
    Plume,
    /// DBCop-style counted records.
    Dbcop,
    /// Cobra-style tagged log.
    Cobra,
}

impl Format {
    /// All formats.
    pub const ALL: [Format; 4] = [Format::Native, Format::Plume, Format::Dbcop, Format::Cobra];

    /// Conventional file extension.
    pub fn extension(self) -> &'static str {
        match self {
            Format::Native => "awdit",
            Format::Plume => "plume",
            Format::Dbcop => "dbcop",
            Format::Cobra => "cobra",
        }
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.extension())
    }
}

impl std::str::FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "native" | "awdit" => Ok(Format::Native),
            "plume" => Ok(Format::Plume),
            "dbcop" => Ok(Format::Dbcop),
            "cobra" => Ok(Format::Cobra),
            _ => Err(format!("unknown format `{s}`")),
        }
    }
}

/// Sniffs the format from the first non-empty line. Headerless input is
/// assumed Plume-style (the only format without a header) when its first
/// line looks like an operation.
pub fn detect_format(text: &str) -> Option<Format> {
    let first = text.lines().find(|l| !l.trim().is_empty())?.trim();
    classify_first_line(first)
}

/// Streams `history` out in the chosen format (the allocation-free form
/// of [`write_history`]; wrap files in a `BufWriter`).
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_history_to<W: Write + ?Sized>(
    history: &History,
    format: Format,
    out: &mut W,
) -> std::io::Result<()> {
    match format {
        Format::Native => write_native_to(history, out),
        Format::Plume => write_plume_to(history, out),
        Format::Dbcop => write_dbcop_to(history, out),
        Format::Cobra => write_cobra_to(history, out),
    }
}

/// Serializes `history` in the chosen format.
pub fn write_history(history: &History, format: Format) -> String {
    match format {
        Format::Native => write_native(history),
        Format::Plume => write_plume(history),
        Format::Dbcop => write_dbcop(history),
        Format::Cobra => write_cobra(history),
    }
}

/// Incrementally reads a history in the chosen format from any
/// [`BufRead`], emitting events into `sink` as records are consumed — no
/// full-input buffering anywhere.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or I/O failure; the sink
/// may hold a partial history by then (discard it, e.g. with
/// [`HistoryBuilder::reset`](awdit_core::HistoryBuilder::reset)).
pub fn read_history<R: BufRead, S: HistorySink + ?Sized>(
    input: R,
    format: Format,
    sink: &mut S,
) -> Result<(), ParseError> {
    read_history_lines(&mut LineReader::new(input), format, sink)
}

pub(crate) fn read_history_lines<R: BufRead, S: HistorySink + ?Sized>(
    lines: &mut LineReader<R>,
    format: Format,
    sink: &mut S,
) -> Result<(), ParseError> {
    match format {
        Format::Native => native::read_native_lines(lines, sink),
        Format::Plume => plume::read_plume_lines(lines, sink),
        Format::Dbcop => dbcop::read_dbcop_lines(lines, sink),
        Format::Cobra => cobra::read_cobra_lines(lines, sink),
    }
}

/// [`detect_format`]'s per-line core.
pub(crate) fn classify_first_line(first: &str) -> Option<Format> {
    if first == NATIVE_HEADER {
        Some(Format::Native)
    } else if first == DBCOP_HEADER {
        Some(Format::Dbcop)
    } else if first == COBRA_HEADER {
        Some(Format::Cobra)
    } else if first.starts_with("w(") || first.starts_with("r(") {
        Some(Format::Plume)
    } else {
        None
    }
}

/// Detects the kind of input from any [`BufRead`] and reads into `sink`,
/// returning what was detected — the streaming form of [`parse_auto`]
/// that additionally understands binary `.awb` histories and NDJSON
/// event logs.
///
/// # Errors
///
/// Returns a [`ParseError`] if the input cannot be classified, on
/// malformed input, or on I/O failure.
pub fn read_auto<R: BufRead, S: HistorySink + ?Sized>(
    mut input: R,
    sink: &mut S,
) -> Result<Detected, ParseError> {
    use std::io::Read;

    // Pull just enough bytes to check for the `.awb` magic without
    // assuming the input is text.
    let mut prefix = Vec::with_capacity(AWB_MAGIC.len());
    (&mut input)
        .take(AWB_MAGIC.len() as u64)
        .read_to_end(&mut prefix)
        .map_err(|e| ParseError::new(0, format!("cannot read: {e}")))?;
    if sniff_awb(&prefix) {
        let mut bytes = prefix;
        input
            .read_to_end(&mut bytes)
            .map_err(|e| ParseError::new(0, format!("cannot read: {e}")))?;
        decode_awb_into_sink(&bytes, sink).map_err(|e| ParseError::new(0, e.to_string()))?;
        return Ok(Detected::Binary);
    }

    let mut lines = LineReader::new(prefix.as_slice().chain(input));
    let unrecognized = |lines: &LineReader<_>| {
        ParseError::new(lines.line_no().max(1), "unrecognized history format")
    };
    if !lines.skip_blank_lines()? {
        return Err(unrecognized(&lines));
    }
    let Some((line, _)) = lines.peek_line()? else {
        return Err(unrecognized(&lines));
    };
    if line.trim_start().starts_with('{') {
        stream::read_events_lines(&mut lines, sink)?;
        return Ok(Detected::Events);
    }
    let format = classify_first_line(line.trim()).ok_or_else(|| unrecognized(&lines))?;
    read_history_lines(&mut lines, format, sink)?;
    Ok(Detected::History(format))
}

/// Parses `text` in the chosen format.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_history(text: &str, format: Format) -> Result<History, ParseError> {
    match format {
        Format::Native => parse_native(text),
        Format::Plume => parse_plume(text),
        Format::Dbcop => parse_dbcop(text),
        Format::Cobra => parse_cobra(text),
    }
}

/// Detects the format and parses.
///
/// # Errors
///
/// Returns a [`ParseError`] if the format cannot be detected or the input
/// is malformed.
pub fn parse_auto(text: &str) -> Result<History, ParseError> {
    let format = detect_format(text)
        .ok_or_else(|| ParseError::new(1, "unrecognized history format".to_string()))?;
    parse_history(text, format)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::{check, HistoryBuilder, HistoryStats, IsolationLevel};

    fn sample() -> History {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        b.begin(s0);
        b.write(s0, 100, 2);
        b.write(s0, 200, 4);
        b.commit(s0);
        b.begin(s1);
        b.read(s1, 100, 2);
        b.read(s1, 200, 4);
        b.commit(s1);
        b.finish().unwrap()
    }

    #[test]
    fn detection_round_trips_all_formats() {
        let h = sample();
        for format in Format::ALL {
            let text = write_history(&h, format);
            assert_eq!(detect_format(&text), Some(format), "{format}");
            let h2 = parse_auto(&text).unwrap();
            assert_eq!(
                HistoryStats::of(&h).ops,
                HistoryStats::of(&h2).ops,
                "{format}"
            );
            for level in IsolationLevel::ALL {
                assert_eq!(
                    check(&h, level).is_consistent(),
                    check(&h2, level).is_consistent(),
                    "{format} {level}"
                );
            }
        }
    }

    #[test]
    fn format_names_parse() {
        for f in Format::ALL {
            let parsed: Format = f.extension().parse().unwrap();
            assert_eq!(parsed, f);
        }
        assert!("json".parse::<Format>().is_err());
    }

    #[test]
    fn unknown_input_is_rejected() {
        assert_eq!(detect_format("hello world\n"), None);
        assert!(parse_auto("hello world\n").is_err());
        assert_eq!(detect_format(""), None);
    }
}
