//! Parallel sharded parsing of text history files.
//!
//! A large history buffer is split into byte-range shards **snapped to
//! line starts**, each shard is parsed on the
//! [`awdit_core::parallel`] pool into a columnar *staging*
//! record of what its lines mean, and the stages are merged **in shard
//! order** into the sink — emitting exactly the event sequence the
//! sequential reader would, so the resulting history (key interning
//! included) is bit-identical at every thread count.
//!
//! Contextual line grammar is what makes this non-trivial: a native
//! shard can begin mid-session-block (its transactions belong to a
//! session line in an earlier shard), a Plume transaction can span a
//! shard cut, and DBCop lines mean nothing without the counted structure
//! around them. Each stage therefore records *context-free* facts only,
//! and the merge replays the contextual rules over the concatenated
//! stages — a cheap, allocation-light pass.
//!
//! **Error parity is by fallback**: shard parsers accept exactly the
//! lines the sequential reader accepts given *some* context; any
//! rejected line, contextual violation, or invalid UTF-8 marks the parse
//! *anomalous* and the whole buffer is re-parsed sequentially — before
//! anything reaches the sink — so error messages, line numbers, and
//! partial-sink contents match the sequential reader exactly. Valid
//! input never takes the fallback; malformed input pays one extra scan.

use std::ops::Range;

use awdit_core::{parallel, HistorySink, SessionId};

use crate::error::ParseError;
use crate::{read_history, Format, COBRA_HEADER, DBCOP_HEADER, NATIVE_HEADER};

/// Minimum bytes per shard: below this, per-shard overheads (staging
/// vectors, thread handoff) beat the parsing they save.
pub const SHARD_MIN_BYTES: usize = 64 * 1024;

/// Parses `data` in `format` into `sink` using up to `threads` parser
/// workers, producing a history bit-identical to
/// [`read_history`](crate::read_history()). Small inputs and
/// `threads <= 1` fall through to the sequential reader.
///
/// # Errors
///
/// Exactly the sequential reader's errors (see the module docs).
pub fn read_sharded<S: HistorySink + ?Sized>(
    data: &[u8],
    format: Format,
    threads: usize,
    sink: &mut S,
) -> Result<(), ParseError> {
    read_sharded_pool(&parallel::Pool::new(threads), data, format, threads, sink)
}

/// [`read_sharded`] dispatching on a caller-owned
/// [`Pool`](parallel::Pool) — how [`FilesSource`](crate::FilesSource)
/// parses a whole fleet of files on one persistent worker set.
///
/// # Errors
///
/// As [`read_sharded`].
pub fn read_sharded_pool<S: HistorySink + ?Sized>(
    pool: &parallel::Pool,
    data: &[u8],
    format: Format,
    threads: usize,
    sink: &mut S,
) -> Result<(), ParseError> {
    if threads <= 1 || data.len() < 2 * SHARD_MIN_BYTES {
        return read_sequential(data, format, sink);
    }
    let shards = threads.min(data.len() / SHARD_MIN_BYTES).max(2);
    let cuts: Vec<usize> = (1..shards).map(|i| i * data.len() / shards).collect();
    read_sharded_at_pool(pool, data, format, &cuts, threads, sink)
}

/// [`read_sharded`] with explicit proposed cut positions — the test and
/// bench hook for forcing shard boundaries mid-line, mid-transaction, or
/// mid-session. Cuts may be arbitrary byte offsets; each is snapped
/// forward to the next line start before use.
///
/// # Errors
///
/// As [`read_sharded`].
pub fn read_sharded_at<S: HistorySink + ?Sized>(
    data: &[u8],
    format: Format,
    cuts: &[usize],
    threads: usize,
    sink: &mut S,
) -> Result<(), ParseError> {
    read_sharded_at_pool(
        &parallel::Pool::new(threads),
        data,
        format,
        cuts,
        threads,
        sink,
    )
}

/// [`read_sharded_at`] dispatching on a caller-owned
/// [`Pool`](parallel::Pool).
///
/// # Errors
///
/// As [`read_sharded`].
pub fn read_sharded_at_pool<S: HistorySink + ?Sized>(
    pool: &parallel::Pool,
    data: &[u8],
    format: Format,
    cuts: &[usize],
    threads: usize,
    sink: &mut S,
) -> Result<(), ParseError> {
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| snap_to_line_start(data, c)).collect();
    bounds.push(0);
    bounds.push(data.len());
    bounds.sort_unstable();
    bounds.dedup();
    let ranges: Vec<Range<usize>> = bounds.windows(2).map(|w| w[0]..w[1]).collect();
    if ranges.len() <= 1 {
        return read_sequential(data, format, sink);
    }

    let obs = awdit_obs::current();
    let stages: Vec<Option<Stage>> = {
        let _span = obs.span("ingest_shard_parse");
        parallel::map_shards(pool, threads, "ingest_shard_parse", &ranges, |i, range| {
            stage_shard(&data[range.clone()], format, i == 0)
        })
    };

    let _span = obs.span("ingest_merge");
    let stages: Option<Vec<Stage>> = stages.into_iter().collect();
    let ok = match &stages {
        None => false,
        Some(stages) => match format {
            Format::Native => merge_native(stages, sink),
            Format::Plume => merge_plume(stages, sink),
            Format::Dbcop => merge_dbcop(stages, sink),
            Format::Cobra => merge_cobra(stages, sink),
        },
    };
    if ok {
        Ok(())
    } else {
        // An anomaly somewhere in the buffer: nothing has touched the
        // sink yet, so the sequential reader reproduces the exact error
        // (or accepts input the shard grammar over-rejected).
        read_sequential(data, format, sink)
    }
}

fn read_sequential<S: HistorySink + ?Sized>(
    data: &[u8],
    format: Format,
    sink: &mut S,
) -> Result<(), ParseError> {
    read_history(data, format, sink)
}

/// Snaps `pos` forward to the nearest line start (0, one past a `\n`, or
/// end of input).
fn snap_to_line_start(data: &[u8], pos: usize) -> usize {
    if pos == 0 || pos >= data.len() {
        return pos.min(data.len());
    }
    if data[pos - 1] == b'\n' {
        return pos;
    }
    match data[pos..].iter().position(|&b| b == b'\n') {
        Some(i) => pos + i + 1,
        None => data.len(),
    }
}

/// Iterates the lines of a byte shard with the [`LineReader`]'s exact
/// newline handling: `\n` terminators stripped, a `\r` before a stripped
/// `\n` stripped too, and a final unterminated line (no `\n`) yielded
/// with any trailing `\r` kept.
///
/// [`LineReader`]: crate::LineReader
struct ByteLines<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteLines<'a> {
    fn new(data: &'a [u8]) -> Self {
        ByteLines { data, pos: 0 }
    }
}

impl<'a> Iterator for ByteLines<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.pos >= self.data.len() {
            return None;
        }
        let rest = &self.data[self.pos..];
        match rest.iter().position(|&b| b == b'\n') {
            Some(i) => {
                self.pos += i + 1;
                let line = &rest[..i];
                Some(match line {
                    [head @ .., b'\r'] => head,
                    _ => line,
                })
            }
            None => {
                self.pos = self.data.len();
                Some(rest)
            }
        }
    }
}

/// One shard's staged, context-free parse.
enum Stage {
    Native(NativeStage),
    Plume(Vec<PlumeOp>),
    Dbcop(Vec<DbcopLine>),
    Cobra(Vec<CobraRec>),
}

#[derive(Default)]
struct NativeStage {
    events: Vec<NativeEvent>,
    /// Flat `(kind, key, value)` ops; each `Txn` event consumes the next
    /// `ops` entries.
    ops: Vec<(u8, u64, u64)>,
}

enum NativeEvent {
    /// A `session N` line.
    Session(usize),
    /// A `c:`/`a:` transaction line with its op count.
    Txn { committed: bool, ops: u32 },
}

struct PlumeOp {
    write: bool,
    key: u64,
    value: u64,
    session: usize,
    txn: u64,
}

enum DbcopLine {
    /// The `dbcop-history` header line.
    Header,
    /// `sessions N`.
    Preamble(usize),
    /// `session I txns M`.
    SessionHdr { sid: usize, txns: usize },
    /// `txn committed|aborted N`.
    TxnHdr { committed: bool, ops: usize },
    /// `W|R key value`.
    Op { write: bool, key: u64, value: u64 },
    /// Anything else — an anomaly unless the counted structure already
    /// ended (the sequential reader never reads past it).
    Other,
}

struct CobraRec {
    tag: u8,
    session: usize,
    key: u64,
    value: u64,
}

fn stage_shard(shard: &[u8], format: Format, first: bool) -> Option<Stage> {
    match format {
        Format::Native => stage_native(shard, first).map(Stage::Native),
        Format::Plume => stage_plume(shard).map(Stage::Plume),
        Format::Dbcop => stage_dbcop(shard).map(Stage::Dbcop),
        Format::Cobra => stage_cobra(shard, first).map(Stage::Cobra),
    }
}

/// `w(key,value)` / `r(key,value)`, mirroring the native reader's token
/// grammar exactly.
fn parse_paren_op(tok: &str) -> Option<(u8, u64, u64)> {
    let kind = match tok.as_bytes().first() {
        Some(b'w') => b'w',
        Some(b'r') => b'r',
        _ => return None,
    };
    let inner = tok[1..].strip_prefix('(')?.strip_suffix(')')?;
    let (k, v) = inner.split_once(',')?;
    let key: u64 = k.trim().parse().ok()?;
    let value: u64 = v.trim().parse().ok()?;
    Some((kind, key, value))
}

fn stage_native(shard: &[u8], first: bool) -> Option<NativeStage> {
    let mut stage = NativeStage::default();
    let mut need_header = first;
    for raw in ByteLines::new(shard) {
        let raw = std::str::from_utf8(raw).ok()?;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if need_header {
            if line != NATIVE_HEADER {
                return None;
            }
            need_header = false;
            continue;
        }
        if let Some(rest) = line.strip_prefix("session") {
            let id: usize = rest.trim().parse().ok()?;
            stage.events.push(NativeEvent::Session(id));
            continue;
        }
        let (committed, rest) = if let Some(rest) = line.strip_prefix("c:") {
            (true, rest)
        } else if let Some(rest) = line.strip_prefix("a:") {
            (false, rest)
        } else {
            return None;
        };
        let mut ops = 0u32;
        for tok in rest.split_whitespace() {
            let (kind, key, value) = parse_paren_op(tok)?;
            stage.ops.push((kind, key, value));
            ops += 1;
        }
        stage.events.push(NativeEvent::Txn { committed, ops });
    }
    // A first shard of nothing but blanks/comments leaves the header for
    // the next shard — anomalous; the fallback sorts it out.
    if need_header && !stage.events.is_empty() {
        return None;
    }
    Some(stage)
}

fn merge_native<S: HistorySink + ?Sized>(stages: &[Stage], sink: &mut S) -> bool {
    let stages: Vec<&NativeStage> = stages
        .iter()
        .map(|s| match s {
            Stage::Native(n) => n,
            _ => unreachable!("mixed stage formats"),
        })
        .collect();
    // Validate the one contextual rule before anything reaches the sink:
    // a transaction line needs a session line somewhere before it.
    let mut has_session = false;
    for st in &stages {
        for ev in &st.events {
            match ev {
                NativeEvent::Session(_) => has_session = true,
                NativeEvent::Txn { .. } if !has_session => return false,
                NativeEvent::Txn { .. } => {}
            }
        }
    }
    let mut current = SessionId(0);
    for st in &stages {
        let mut op_cursor = 0usize;
        for ev in &st.events {
            match *ev {
                NativeEvent::Session(id) => {
                    sink.ensure_sessions(id + 1);
                    current = SessionId(id as u32);
                }
                NativeEvent::Txn { committed, ops } => {
                    sink.begin(current);
                    for &(kind, key, value) in &st.ops[op_cursor..op_cursor + ops as usize] {
                        if kind == b'w' {
                            sink.write(current, key, value);
                        } else {
                            sink.read(current, key, value);
                        }
                    }
                    op_cursor += ops as usize;
                    if committed {
                        sink.commit(current);
                    } else {
                        sink.abort(current);
                    }
                }
            }
        }
    }
    true
}

fn stage_plume(shard: &[u8]) -> Option<Vec<PlumeOp>> {
    let mut ops = Vec::new();
    for raw in ByteLines::new(shard) {
        let raw = std::str::from_utf8(raw).ok()?;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let write = match line.as_bytes().first() {
            Some(b'w') => true,
            Some(b'r') => false,
            _ => return None,
        };
        let inner = line[1..].strip_prefix('(')?.strip_suffix(')')?;
        let mut parts = inner.split(',').map(str::trim);
        let key: u64 = parts.next()?.parse().ok()?;
        let value: u64 = parts.next()?.parse().ok()?;
        let session: usize = parts.next()?.parse().ok()?;
        let txn: u64 = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        ops.push(PlumeOp {
            write,
            key,
            value,
            session,
            txn,
        });
    }
    Some(ops)
}

fn merge_plume<S: HistorySink + ?Sized>(stages: &[Stage], sink: &mut S) -> bool {
    let all = || {
        stages.iter().flat_map(|s| match s {
            Stage::Plume(ops) => ops.iter(),
            _ => unreachable!("mixed stage formats"),
        })
    };
    // Validate: per-session transaction ids never go backwards.
    let mut open: Vec<Option<u64>> = Vec::new();
    for op in all() {
        if open.len() <= op.session {
            open.resize(op.session + 1, None);
        }
        match open[op.session] {
            Some(cur) if op.txn < cur => return false,
            _ => open[op.session] = Some(op.txn),
        }
    }
    // Apply, mirroring the sequential reader's per-line protocol.
    let mut open: Vec<Option<u64>> = vec![None; open.len()];
    for op in all() {
        sink.ensure_sessions(op.session + 1);
        let sid = SessionId(op.session as u32);
        match open[op.session] {
            Some(cur) if cur == op.txn => {}
            Some(_) => {
                sink.commit(sid);
                sink.begin(sid);
                open[op.session] = Some(op.txn);
            }
            None => {
                sink.begin(sid);
                open[op.session] = Some(op.txn);
            }
        }
        if op.write {
            sink.write(sid, op.key, op.value);
        } else {
            sink.read(sid, op.key, op.value);
        }
    }
    for (s, o) in open.iter().enumerate() {
        if o.is_some() {
            sink.commit(SessionId(s as u32));
        }
    }
    true
}

fn stage_dbcop(shard: &[u8]) -> Option<Vec<DbcopLine>> {
    let mut out = Vec::new();
    for raw in ByteLines::new(shard) {
        // The DBCop reader does no comment stripping — lines are only
        // trimmed. Invalid UTF-8 is an anomaly like everywhere else.
        let line = std::str::from_utf8(raw).ok()?.trim();
        if line.is_empty() {
            continue;
        }
        out.push(classify_dbcop(line));
    }
    Some(out)
}

fn classify_dbcop(line: &str) -> DbcopLine {
    if line == DBCOP_HEADER {
        return DbcopLine::Header;
    }
    if let Some(n) = line.strip_prefix("sessions ").and_then(|s| s.parse().ok()) {
        return DbcopLine::Preamble(n);
    }
    let mut parts = line.split_whitespace();
    match parts.next() {
        Some("session") => {
            let sid = parts.next().and_then(|p| p.parse().ok());
            let tag = parts.next();
            let txns = parts.next().and_then(|p| p.parse().ok());
            if let (Some(sid), Some("txns"), Some(txns), None) = (sid, tag, txns, parts.next()) {
                return DbcopLine::SessionHdr { sid, txns };
            }
        }
        Some("txn") => {
            let committed = match parts.next() {
                Some("committed") => Some(true),
                Some("aborted") => Some(false),
                _ => None,
            };
            let ops = parts.next().and_then(|p| p.parse().ok());
            if let (Some(committed), Some(ops), None) = (committed, ops, parts.next()) {
                return DbcopLine::TxnHdr { committed, ops };
            }
        }
        Some(tag @ ("W" | "R")) => {
            let key = parts.next().and_then(|p| p.parse().ok());
            let value = parts.next().and_then(|p| p.parse().ok());
            if let (Some(key), Some(value), None) = (key, value, parts.next()) {
                return DbcopLine::Op {
                    write: tag == "W",
                    key,
                    value,
                };
            }
        }
        _ => {}
    }
    DbcopLine::Other
}

/// Walks the staged DBCop lines through the format's counted state
/// machine. With `emit` false this is the pre-sink validation pass; with
/// `emit` true it replays the sequential reader's event sequence.
/// Returns `false` on any structural mismatch (before the structure
/// completes — the sequential reader ignores everything after it).
fn walk_dbcop<S: HistorySink + ?Sized>(lines: &[&DbcopLine], sink: &mut S, emit: bool) -> bool {
    #[derive(Copy, Clone, PartialEq)]
    enum Phase {
        Header,
        Preamble,
        Session,
        Txn,
        Op,
        Done,
    }
    let mut phase = Phase::Header;
    let (mut num_sessions, mut sid, mut txns_left, mut ops_left) = (0usize, 0usize, 0usize, 0usize);
    let mut committed = false;

    // Closes out zero-count levels: no txns left -> next session (or
    // done); no ops left -> close the txn.
    for &line in lines {
        match phase {
            Phase::Done => break,
            Phase::Header => match line {
                DbcopLine::Header => phase = Phase::Preamble,
                _ => return false,
            },
            Phase::Preamble => match *line {
                DbcopLine::Preamble(n) => {
                    num_sessions = n;
                    if emit {
                        sink.ensure_sessions(n);
                    }
                    sid = 0;
                    phase = if n == 0 { Phase::Done } else { Phase::Session };
                }
                _ => return false,
            },
            Phase::Session => match *line {
                DbcopLine::SessionHdr { sid: got, txns } if got == sid => {
                    txns_left = txns;
                    phase = if txns == 0 {
                        sid += 1;
                        if sid == num_sessions {
                            Phase::Done
                        } else {
                            Phase::Session
                        }
                    } else {
                        Phase::Txn
                    };
                }
                _ => return false,
            },
            Phase::Txn => match *line {
                DbcopLine::TxnHdr {
                    committed: c,
                    ops: n,
                } => {
                    if emit {
                        sink.begin(SessionId(sid as u32));
                    }
                    committed = c;
                    ops_left = n;
                    phase = Phase::Op;
                    if n == 0 {
                        phase = if close_dbcop_txn(sink, emit, committed, sid, &mut txns_left) {
                            Phase::Txn
                        } else {
                            sid += 1;
                            if sid == num_sessions {
                                Phase::Done
                            } else {
                                Phase::Session
                            }
                        };
                    }
                }
                _ => return false,
            },
            Phase::Op => match *line {
                DbcopLine::Op { write, key, value } => {
                    if emit {
                        if write {
                            sink.write(SessionId(sid as u32), key, value);
                        } else {
                            sink.read(SessionId(sid as u32), key, value);
                        }
                    }
                    ops_left -= 1;
                    if ops_left == 0 {
                        phase = if close_dbcop_txn(sink, emit, committed, sid, &mut txns_left) {
                            Phase::Txn
                        } else {
                            sid += 1;
                            if sid == num_sessions {
                                Phase::Done
                            } else {
                                Phase::Session
                            }
                        };
                    }
                }
                _ => return false,
            },
        }
    }
    // The sequential reader errors with "unexpected end of file" if the
    // counted structure is incomplete — an anomaly here.
    matches!(phase, Phase::Done)
}

/// Emits the commit/abort for a finished DBCop transaction; returns
/// `true` when the session still has transactions to read.
fn close_dbcop_txn<S: HistorySink + ?Sized>(
    sink: &mut S,
    emit: bool,
    committed: bool,
    sid: usize,
    txns_left: &mut usize,
) -> bool {
    if emit {
        if committed {
            sink.commit(SessionId(sid as u32));
        } else {
            sink.abort(SessionId(sid as u32));
        }
    }
    *txns_left -= 1;
    *txns_left != 0
}

fn merge_dbcop<S: HistorySink + ?Sized>(stages: &[Stage], sink: &mut S) -> bool {
    let lines: Vec<&DbcopLine> = stages
        .iter()
        .flat_map(|s| match s {
            Stage::Dbcop(lines) => lines.iter(),
            _ => unreachable!("mixed stage formats"),
        })
        .collect();
    if !walk_dbcop(&lines, sink, false) {
        return false;
    }
    walk_dbcop(&lines, sink, true)
}

fn stage_cobra(shard: &[u8], first: bool) -> Option<Vec<CobraRec>> {
    let mut out = Vec::new();
    let mut need_header = first;
    for raw in ByteLines::new(shard) {
        let raw = std::str::from_utf8(raw).ok()?;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if need_header {
            if line != COBRA_HEADER {
                return None;
            }
            need_header = false;
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap_or("");
        let session: usize = parts.next()?.parse().ok()?;
        let (key, value) = match tag {
            "T" | "C" | "A" => {
                if parts.next().is_some() {
                    return None;
                }
                (0, 0)
            }
            "W" | "R" => {
                let key: u64 = parts.next()?.parse().ok()?;
                let value: u64 = parts.next()?.parse().ok()?;
                if parts.next().is_some() {
                    return None;
                }
                (key, value)
            }
            _ => return None,
        };
        out.push(CobraRec {
            tag: tag.as_bytes()[0],
            session,
            key,
            value,
        });
    }
    if need_header && !out.is_empty() {
        return None;
    }
    Some(out)
}

fn merge_cobra<S: HistorySink + ?Sized>(stages: &[Stage], sink: &mut S) -> bool {
    // Cobra records are fully self-describing — no contextual rules, so
    // apply directly.
    for st in stages {
        let recs = match st {
            Stage::Cobra(recs) => recs,
            _ => unreachable!("mixed stage formats"),
        };
        for rec in recs {
            sink.ensure_sessions(rec.session + 1);
            let sid = SessionId(rec.session as u32);
            match rec.tag {
                b'T' => sink.begin(sid),
                b'C' => sink.commit(sid),
                b'A' => sink.abort(sid),
                b'W' => sink.write(sid, rec.key, rec.value),
                _ => sink.read(sid, rec.key, rec.value),
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::{History, HistoryBuilder};

    fn parse_seq(text: &str, format: Format) -> History {
        let mut b = HistoryBuilder::new();
        read_history(text.as_bytes(), format, &mut b).unwrap();
        b.finish().unwrap()
    }

    fn parse_sharded_at(text: &str, format: Format, cuts: &[usize]) -> History {
        let mut b = HistoryBuilder::new();
        read_sharded_at(text.as_bytes(), format, cuts, 2, &mut b).unwrap();
        b.finish().unwrap()
    }

    fn sample_text(format: Format) -> String {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        let s2 = b.session();
        for i in 0..20u64 {
            b.begin(s0);
            b.write(s0, i % 5, i + 1000);
            b.commit(s0);
            b.begin(s1);
            b.read(s1, i % 5, i + 1000);
            b.write(s1, 50 + i, i + 2000);
            b.commit(s1);
        }
        b.begin(s2);
        b.write(s2, 7, 1);
        b.commit(s2);
        let h = b.finish().unwrap();
        crate::write_history(&h, format)
    }

    #[test]
    fn every_cut_position_matches_sequential() {
        // Exhaustive single-cut sweep over a small history: every byte
        // offset (mid-line, mid-transaction, mid-session included) must
        // still produce the sequential result.
        for format in Format::ALL {
            let text = sample_text(format);
            let expected = parse_seq(&text, format);
            for cut in 0..text.len() {
                let got = parse_sharded_at(&text, format, &[cut]);
                assert_eq!(got, expected, "{format} cut at {cut}");
            }
        }
    }

    #[test]
    fn multi_cut_positions_match_sequential() {
        for format in Format::ALL {
            let text = sample_text(format);
            let expected = parse_seq(&text, format);
            let n = text.len();
            for cuts in [
                vec![n / 4, n / 2, 3 * n / 4],
                vec![1, 2, 3],
                vec![n - 1, n / 3],
                vec![0, n],
            ] {
                let got = parse_sharded_at(&text, format, &cuts);
                assert_eq!(got, expected, "{format} cuts {cuts:?}");
            }
        }
    }

    #[test]
    fn malformed_input_errors_match_sequential() {
        let cases = [
            (Format::Native, "awdit-history v1\nsession 0\nc: w(1;2)\n"),
            (Format::Native, "awdit-history v1\nc: w(1,2)\n"),
            (Format::Native, "session 0\nc: w(1,2)\n"),
            (Format::Plume, "w(1,2,0,0)\nnope\n"),
            (Format::Plume, "w(1,2,0,1)\nw(2,3,0,0)\n"),
            (
                Format::Dbcop,
                "dbcop-history\nsessions 2\nsession 1 txns 0\n",
            ),
            (Format::Dbcop, "dbcop-history\nsessions 1\n"),
            (Format::Cobra, "cobra-log\nX 0\n"),
            (Format::Cobra, "cobra-log\nW 0 1\n"),
        ];
        for (format, text) in cases {
            let mut b = HistoryBuilder::new();
            let seq = read_history(text.as_bytes(), format, &mut b).unwrap_err();
            for cut in 0..text.len() {
                let mut b = HistoryBuilder::new();
                let got = read_sharded_at(text.as_bytes(), format, &[cut], 2, &mut b)
                    .expect_err("sharded parse accepted what sequential rejects");
                assert_eq!(got, seq, "{format} cut {cut}: `{text}`");
            }
        }
    }

    #[test]
    fn trailing_junk_after_dbcop_structure_is_ignored_like_sequential() {
        let text =
            "dbcop-history\nsessions 1\nsession 0 txns 1\ntxn committed 1\nW 1 2\nutter junk\n";
        let expected = parse_seq(text, Format::Dbcop);
        for cut in 0..text.len() {
            assert_eq!(
                parse_sharded_at(text, Format::Dbcop, &[cut]),
                expected,
                "cut {cut}"
            );
        }
    }

    #[test]
    fn snapping_lands_on_line_starts() {
        let data = b"abc\ndef\r\nghi";
        assert_eq!(snap_to_line_start(data, 0), 0);
        assert_eq!(snap_to_line_start(data, 1), 4);
        assert_eq!(snap_to_line_start(data, 4), 4);
        assert_eq!(snap_to_line_start(data, 5), 9);
        assert_eq!(snap_to_line_start(data, 10), 12);
        assert_eq!(snap_to_line_start(data, 99), 12);
    }

    #[test]
    fn byte_lines_match_line_reader_edge_cases() {
        let collect = |data: &'static [u8]| -> Vec<&[u8]> { ByteLines::new(data).collect() };
        assert_eq!(collect(b"a\nb"), vec![b"a" as &[u8], b"b"]);
        assert_eq!(collect(b"a\r\nb\n"), vec![b"a" as &[u8], b"b"]);
        // A final line without `\n` keeps its `\r` (LineReader parity).
        assert_eq!(collect(b"a\r"), vec![b"a\r" as &[u8]]);
        assert_eq!(collect(b""), Vec::<&[u8]>::new());
        assert_eq!(collect(b"\n\n"), vec![b"" as &[u8], b""]);
    }

    #[test]
    fn read_sharded_small_input_takes_sequential_path() {
        let text = sample_text(Format::Native);
        let mut b = HistoryBuilder::new();
        read_sharded(text.as_bytes(), Format::Native, 8, &mut b).unwrap();
        assert_eq!(b.finish().unwrap(), parse_seq(&text, Format::Native));
    }
}
