//! A Plume-style history format (after the text format of the Plume
//! artifact, Liu et al. 2024).
//!
//! One operation per line, annotated with its session and transaction id:
//!
//! ```text
//! w(100,2,0,0)
//! r(100,2,1,1)
//! ```
//!
//! reads as `op(key, value, session, txn)`. Transactions are assembled
//! from the `(session, txn)` pairs; within a transaction, line order is
//! program order. Transaction ids must be non-decreasing per session.
//! Aborted transactions are not representable (Plume histories contain
//! committed transactions only).

use std::io::{BufRead, Write};

use awdit_core::{History, HistoryBuilder, HistorySink, Op, SessionId};

use crate::error::ParseError;
use crate::reader::LineReader;

/// Streams `history` out in the Plume style.
///
/// Aborted transactions are skipped (with their operations), matching the
/// format's committed-only data model.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_plume_to<W: Write + ?Sized>(history: &History, out: &mut W) -> std::io::Result<()> {
    for (sid, txns) in history.sessions() {
        let mut txn_id = 0usize;
        for t in txns.iter() {
            if !t.is_committed() {
                continue;
            }
            for op in t.ops() {
                let (c, key, value) = match *op {
                    Op::Write { key, value } => ('w', key, value),
                    Op::Read { key, value, .. } => ('r', key, value),
                };
                writeln!(
                    out,
                    "{c}({},{},{},{txn_id})",
                    history.key_name(key),
                    value.0,
                    sid.0
                )?;
            }
            txn_id += 1;
        }
    }
    Ok(())
}

/// Serializes a history in the Plume style.
pub fn write_plume(history: &History) -> String {
    let mut out = Vec::with_capacity(history.size() * 16);
    write_plume_to(history, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("plume format is ASCII")
}

/// Incrementally reads a Plume-style history from `input`, emitting events
/// into `sink` as lines are consumed.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed lines, out-of-order transaction
/// ids, or I/O failure; the sink may hold a partial history by then.
pub fn read_plume<R: BufRead, S: HistorySink + ?Sized>(
    input: R,
    sink: &mut S,
) -> Result<(), ParseError> {
    read_plume_lines(&mut LineReader::new(input), sink)
}

pub(crate) fn read_plume_lines<R: BufRead, S: HistorySink + ?Sized>(
    lines: &mut LineReader<R>,
    sink: &mut S,
) -> Result<(), ParseError> {
    // Per session: the current open transaction id.
    let mut open: Vec<Option<u64>> = Vec::new();

    while let Some((raw, lineno)) = lines.next_line()? {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = || ParseError::new(lineno, format!("malformed operation `{line}`"));
        let kind = match line.as_bytes().first() {
            Some(b'w') => b'w',
            Some(b'r') => b'r',
            _ => return Err(err()),
        };
        let inner = line[1..]
            .strip_prefix('(')
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(err)?;
        let mut parts = inner.split(',').map(str::trim);
        let mut field = || parts.next().ok_or_else(err);
        let key: u64 = field()?.parse().map_err(|_| err())?;
        let value: u64 = field()?.parse().map_err(|_| err())?;
        let session: usize = field()?.parse().map_err(|_| err())?;
        let txn: u64 = field()?.parse().map_err(|_| err())?;
        if parts.next().is_some() {
            return Err(err());
        }

        sink.ensure_sessions(session + 1);
        while open.len() <= session {
            open.push(None);
        }
        let sid = SessionId(session as u32);
        match open[session] {
            Some(cur) if cur == txn => {}
            Some(cur) if txn > cur => {
                sink.commit(sid);
                sink.begin(sid);
                open[session] = Some(txn);
            }
            Some(cur) => {
                return Err(ParseError::new(
                    lineno,
                    format!("transaction id went backwards on session {session}: {cur} -> {txn}"),
                ));
            }
            None => {
                sink.begin(sid);
                open[session] = Some(txn);
            }
        }
        if kind == b'w' {
            sink.write(sid, key, value);
        } else {
            sink.read(sid, key, value);
        }
    }
    // Close all open transactions.
    for (s, o) in open.iter().enumerate() {
        if o.is_some() {
            sink.commit(SessionId(s as u32));
        }
    }
    Ok(())
}

/// Parses a Plume-style history.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed lines, out-of-order transaction
/// ids, or invalid histories.
pub fn parse_plume(text: &str) -> Result<History, ParseError> {
    let mut b = HistoryBuilder::new();
    read_plume(text.as_bytes(), &mut b)?;
    b.finish().map_err(ParseError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::{check, HistoryStats, IsolationLevel};

    fn sample() -> History {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        b.begin(s0);
        b.write(s0, 100, 2);
        b.write(s0, 200, 4);
        b.commit(s0);
        b.begin(s1);
        b.read(s1, 100, 2);
        b.read(s1, 200, 4);
        b.commit(s1);
        b.finish().unwrap()
    }

    #[test]
    fn round_trip_preserves_verdicts() {
        let h = sample();
        let text = write_plume(&h);
        let h2 = parse_plume(&text).unwrap();
        assert_eq!(HistoryStats::of(&h).ops, HistoryStats::of(&h2).ops);
        for level in IsolationLevel::ALL {
            assert_eq!(
                check(&h, level).is_consistent(),
                check(&h2, level).is_consistent()
            );
        }
        assert_eq!(write_plume(&h2), text);
        // Fully-committed histories round-trip exactly.
        assert_eq!(h2, h);
    }

    #[test]
    fn aborted_transactions_are_dropped() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        b.begin(s);
        b.write(s, 1, 1);
        b.abort(s);
        b.begin(s);
        b.write(s, 2, 2);
        b.commit(s);
        let h = b.finish().unwrap();
        let h2 = parse_plume(&write_plume(&h)).unwrap();
        assert_eq!(h2.num_txns(), 1);
        assert_eq!(h2.size(), 1);
    }

    #[test]
    fn backwards_txn_ids_rejected() {
        let text = "w(1,1,0,1)\nw(2,2,0,0)\n";
        let err = parse_plume(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("backwards"));
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse_plume("x(1,1,0,0)\n").is_err());
        assert!(parse_plume("w(1,1,0)\n").is_err());
        assert!(parse_plume("w(1,1,0,0,9)\n").is_err());
        assert!(parse_plume("w 1 1 0 0\n").is_err());
    }

    #[test]
    fn interleaved_sessions_parse() {
        let text = "w(1,1,0,0)\nw(2,2,1,0)\nr(1,1,1,0)\nw(3,3,0,1)\n";
        let h = parse_plume(text).unwrap();
        assert_eq!(h.num_sessions(), 2);
        assert_eq!(h.num_txns(), 3);
    }
}
