//! Centralized input-kind detection: one place that decides whether a
//! file is a text history (and which [`Format`]), an NDJSON event log, or
//! a binary `.awb` history.
//!
//! Detection is content-first — magic bytes, then the first non-blank
//! line — with the file extension as fallback for content the sniffer
//! cannot classify. Every consumer ([`FilesSource`](crate::FilesSource),
//! [`read_auto`](crate::read_auto), the CLI) dispatches through here, so
//! sniff-vs-extension precedence cannot drift between entry points.

use std::fs::File;
use std::io::Read;
use std::path::Path;

use crate::binary::{sniff_awb, AWB_EXTENSION};
use crate::{classify_first_line, Format};

/// How many leading bytes the sniffer reads from a file.
pub const SNIFF_BYTES: usize = 4096;

/// The kind of history input behind a path or byte stream.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Detected {
    /// A text history in the given format.
    History(Format),
    /// An NDJSON transaction event log (`awdit watch` recordings).
    Events,
    /// A binary `.awb` columnar history.
    Binary,
}

impl std::fmt::Display for Detected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Detected::History(format) => write!(f, "{format}"),
            Detected::Events => f.write_str("events"),
            Detected::Binary => f.write_str(AWB_EXTENSION),
        }
    }
}

/// Classifies input from its leading bytes: `.awb` magic first, then the
/// first non-blank text line (`{` marks an event log, otherwise the text
/// format headers decide). Returns `None` for content that matches
/// nothing — including non-UTF-8 binary junk without the magic.
pub fn detect_bytes(prefix: &[u8]) -> Option<Detected> {
    if sniff_awb(prefix) {
        return Some(Detected::Binary);
    }
    let mut rest = prefix;
    while !rest.is_empty() {
        let (mut line, tail) = match rest.iter().position(|&b| b == b'\n') {
            Some(i) => (&rest[..i], &rest[i + 1..]),
            None => (rest, &[][..]),
        };
        rest = tail;
        if let [head @ .., b'\r'] = line {
            line = head;
        }
        let line = std::str::from_utf8(line).ok()?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.starts_with('{') {
            return Some(Detected::Events);
        }
        return classify_first_line(trimmed).map(Detected::History);
    }
    None
}

/// Returns `true` if `prefix` looks like binary data (and is not a valid
/// `.awb` header): the case [`detect_bytes`] rejects that deserves a
/// "binary file" message instead of a text-parser error cascade.
pub fn looks_binary(prefix: &[u8]) -> bool {
    !sniff_awb(prefix) && prefix.contains(&0)
}

/// Classifies a path by its extension alone: `awb` is binary,
/// `ndjson`/`jsonl` are event logs, and the text [`Format`] extensions
/// (plus `native`) map to their formats.
pub fn detect_extension(path: &Path) -> Option<Detected> {
    let ext = path.extension()?.to_str()?;
    if ext.eq_ignore_ascii_case(AWB_EXTENSION) {
        return Some(Detected::Binary);
    }
    if ext.eq_ignore_ascii_case("ndjson") || ext.eq_ignore_ascii_case("jsonl") {
        return Some(Detected::Events);
    }
    ext.parse::<Format>().ok().map(Detected::History)
}

/// Reads up to [`SNIFF_BYTES`] from `file` (leaving the cursor wherever
/// the read stopped — callers seek back before parsing).
pub(crate) fn read_prefix(file: &mut File) -> std::io::Result<Vec<u8>> {
    let mut prefix = Vec::with_capacity(SNIFF_BYTES);
    file.take(SNIFF_BYTES as u64).read_to_end(&mut prefix)?;
    Ok(prefix)
}

/// Classifies the file at `path`: content sniff first
/// ([`detect_bytes`]), extension fallback ([`detect_extension`]).
///
/// # Errors
///
/// Propagates I/O errors opening or reading the file.
pub fn detect_path(path: &Path) -> std::io::Result<Option<Detected>> {
    let mut file = File::open(path)?;
    let prefix = read_prefix(&mut file)?;
    Ok(detect_bytes(&prefix).or_else(|| detect_extension(path)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{COBRA_HEADER, DBCOP_HEADER, NATIVE_HEADER};

    #[test]
    fn content_beats_extension() {
        assert_eq!(
            detect_bytes(format!("\n  \n{NATIVE_HEADER}\n").as_bytes()),
            Some(Detected::History(Format::Native))
        );
        assert_eq!(
            detect_bytes(format!("{DBCOP_HEADER}\n").as_bytes()),
            Some(Detected::History(Format::Dbcop))
        );
        assert_eq!(
            detect_bytes(format!("{COBRA_HEADER}\n").as_bytes()),
            Some(Detected::History(Format::Cobra))
        );
        assert_eq!(
            detect_bytes(b"w(1,2,0,0)\n"),
            Some(Detected::History(Format::Plume))
        );
        assert_eq!(
            detect_bytes(b"{\"type\":\"begin\"}\n"),
            Some(Detected::Events)
        );
        assert_eq!(
            detect_bytes(&crate::binary::AWB_MAGIC),
            Some(Detected::Binary)
        );
        assert_eq!(detect_bytes(b"hello world\n"), None);
        assert_eq!(detect_bytes(b""), None);
    }

    #[test]
    fn binary_junk_is_flagged_not_misparsed() {
        let junk = [0u8, 159, 146, 150, 0, 1, 2];
        assert_eq!(detect_bytes(&junk), None);
        assert!(looks_binary(&junk));
        assert!(!looks_binary(b"plain text"));
    }

    #[test]
    fn extensions_cover_every_kind() {
        assert_eq!(
            detect_extension(Path::new("x/h.awb")),
            Some(Detected::Binary)
        );
        assert_eq!(
            detect_extension(Path::new("h.ndjson")),
            Some(Detected::Events)
        );
        assert_eq!(
            detect_extension(Path::new("h.jsonl")),
            Some(Detected::Events)
        );
        for f in Format::ALL {
            assert_eq!(
                detect_extension(Path::new(&format!("h.{}", f.extension()))),
                Some(Detected::History(f))
            );
        }
        assert_eq!(detect_extension(Path::new("h.txt")), None);
        assert_eq!(detect_extension(Path::new("h")), None);
    }
}
