//! Incremental line reading shared by the streaming format readers.
//!
//! Every parser in this crate is an *incremental reader*: it pulls one
//! line at a time from any [`BufRead`] through a [`LineReader`] and emits
//! history events into a [`HistorySink`](awdit_core::HistorySink) as it
//! goes — no full-file `String`, no intermediate nested representation.
//! The reader tracks absolute line numbers (for [`ParseError`]s) and
//! offers single-line lookahead, which is what format sniffing needs:
//! peek the first meaningful line, pick a parser, and hand it the same
//! reader with the line still unconsumed.

use std::io::BufRead;

use crate::error::ParseError;

/// A line-at-a-time reader over any [`BufRead`] with 1-based line
/// numbers, single-line lookahead, and I/O errors surfaced as
/// [`ParseError`]s.
#[derive(Debug)]
pub struct LineReader<R> {
    input: R,
    buf: String,
    line_no: usize,
    /// `buf` holds a line that was peeked but not yet consumed.
    peeked: bool,
}

impl<R: BufRead> LineReader<R> {
    /// A reader starting at line 1.
    pub fn new(input: R) -> Self {
        LineReader {
            input,
            buf: String::new(),
            line_no: 0,
            peeked: false,
        }
    }

    /// Reads the next raw line into `buf` (without the trailing newline).
    /// Returns `false` at end of input.
    fn fill(&mut self) -> Result<bool, ParseError> {
        self.buf.clear();
        let n = self
            .input
            .read_line(&mut self.buf)
            .map_err(|e| ParseError::new(self.line_no + 1, format!("read error: {e}")))?;
        if n == 0 {
            return Ok(false);
        }
        if self.buf.ends_with('\n') {
            self.buf.pop();
            if self.buf.ends_with('\r') {
                self.buf.pop();
            }
        }
        self.line_no += 1;
        Ok(true)
    }

    /// Consumes and returns the next line with its 1-based number, or
    /// `None` at end of input.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures as [`ParseError`]s.
    pub fn next_line(&mut self) -> Result<Option<(&str, usize)>, ParseError> {
        if self.peeked {
            self.peeked = false;
            return Ok(Some((&self.buf, self.line_no)));
        }
        if self.fill()? {
            Ok(Some((&self.buf, self.line_no)))
        } else {
            Ok(None)
        }
    }

    /// Returns the next line without consuming it (a subsequent
    /// [`next_line`](Self::next_line) yields the same line), or `None` at
    /// end of input.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures as [`ParseError`]s.
    pub fn peek_line(&mut self) -> Result<Option<(&str, usize)>, ParseError> {
        if !self.peeked {
            if !self.fill()? {
                return Ok(None);
            }
            self.peeked = true;
        }
        Ok(Some((&self.buf, self.line_no)))
    }

    /// Consumes blank lines, leaving the first non-blank line peeked.
    /// Returns `true` if such a line exists.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures as [`ParseError`]s.
    pub fn skip_blank_lines(&mut self) -> Result<bool, ParseError> {
        loop {
            match self.peek_line()? {
                None => return Ok(false),
                Some((line, _)) if line.trim().is_empty() => {
                    self.peeked = false;
                }
                Some(_) => return Ok(true),
            }
        }
    }

    /// The number of the most recently read line (0 before the first).
    pub fn line_no(&self) -> usize {
        self.line_no
    }
}

/// Consumes lines until the first that is non-empty after `#`-comment
/// stripping, which must equal `header` — the shared header scan of the
/// native and Cobra readers.
pub(crate) fn expect_header<R: BufRead>(
    lines: &mut LineReader<R>,
    header: &str,
) -> Result<(), ParseError> {
    loop {
        match lines.next_line()? {
            None => {
                return Err(ParseError::new(
                    lines.line_no().max(1),
                    format!("expected header `{header}`"),
                ))
            }
            Some((raw, lineno)) => {
                let line = raw.split('#').next().unwrap_or("").trim();
                if line.is_empty() {
                    continue;
                }
                if line != header {
                    return Err(ParseError::new(
                        lineno,
                        format!("expected header `{header}`, found `{line}`"),
                    ));
                }
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_numbered_and_peekable() {
        let mut r = LineReader::new("a\nb\r\n\nc".as_bytes());
        assert_eq!(r.peek_line().unwrap(), Some(("a", 1)));
        assert_eq!(r.next_line().unwrap(), Some(("a", 1)));
        assert_eq!(r.next_line().unwrap(), Some(("b", 2)));
        assert!(r.skip_blank_lines().unwrap());
        assert_eq!(r.next_line().unwrap(), Some(("c", 4)));
        assert_eq!(r.next_line().unwrap(), None);
        assert!(!r.skip_blank_lines().unwrap());
    }

    #[test]
    fn empty_input_is_clean_eof() {
        let mut r = LineReader::new("".as_bytes());
        assert_eq!(r.peek_line().unwrap(), None);
        assert_eq!(r.next_line().unwrap(), None);
    }
}
