//! The native AWDIT history format.
//!
//! One session per block, one transaction per line:
//!
//! ```text
//! awdit-history v1
//! session 0
//! c: w(100,2) r(200,4)
//! a: w(300,6)
//! session 1
//! c: r(100,2)
//! ```
//!
//! `c:` marks a committed transaction, `a:` an aborted one; operations are
//! `w(key,value)` / `r(key,value)` in program order. Blank lines and `#`
//! comments are ignored.

use awdit_core::{History, HistoryBuilder, Op};

use crate::error::ParseError;

/// The first line of every native-format file.
pub const NATIVE_HEADER: &str = "awdit-history v1";

/// Serializes a history in the native format.
pub fn write_native(history: &History) -> String {
    let mut out = String::with_capacity(history.size() * 12 + 64);
    out.push_str(NATIVE_HEADER);
    out.push('\n');
    for (sid, txns) in history.sessions() {
        out.push_str(&format!("session {}\n", sid.0));
        for t in txns {
            out.push_str(if t.is_committed() { "c:" } else { "a:" });
            for op in t.ops() {
                match *op {
                    Op::Write { key, value } => {
                        out.push_str(&format!(" w({},{})", history.key_name(key), value.0));
                    }
                    Op::Read { key, value, .. } => {
                        out.push_str(&format!(" r({},{})", history.key_name(key), value.0));
                    }
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Parses a native-format history.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on malformed input, or
/// a wrapped [`BuildError`](awdit_core::BuildError) if the operations form
/// an invalid history (e.g. duplicate writes).
pub fn parse_native(text: &str) -> Result<History, ParseError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == NATIVE_HEADER => {}
        Some((i, l)) => {
            return Err(ParseError::new(
                i + 1,
                format!("expected header `{NATIVE_HEADER}`, found `{l}`"),
            ))
        }
        None => return Err(ParseError::new(1, "empty file")),
    }

    let mut b = HistoryBuilder::new();
    let mut current = None;
    for (i, raw) in lines {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("session") {
            let id: usize = rest.trim().parse().map_err(|_| {
                ParseError::new(lineno, format!("bad session id `{}`", rest.trim()))
            })?;
            // Sessions must appear in order; create up to the id.
            let sessions = b.sessions(id + 1);
            current = Some(sessions[id]);
            continue;
        }
        let (committed, rest) = if let Some(rest) = line.strip_prefix("c:") {
            (true, rest)
        } else if let Some(rest) = line.strip_prefix("a:") {
            (false, rest)
        } else {
            return Err(ParseError::new(
                lineno,
                format!("expected `session N`, `c:`, or `a:`, found `{line}`"),
            ));
        };
        let session =
            current.ok_or_else(|| ParseError::new(lineno, "transaction before any session"))?;
        b.begin(session);
        for tok in rest.split_whitespace() {
            let (kind, args) = parse_op_token(tok, lineno)?;
            match kind {
                b'w' => b.write(session, args.0, args.1),
                _ => b.read(session, args.0, args.1),
            }
        }
        if committed {
            b.commit(session);
        } else {
            b.abort(session);
        }
    }
    b.finish().map_err(ParseError::from)
}

/// Parses `w(key,value)` / `r(key,value)`.
fn parse_op_token(tok: &str, lineno: usize) -> Result<(u8, (u64, u64)), ParseError> {
    let err = || ParseError::new(lineno, format!("malformed operation `{tok}`"));
    let kind = match tok.as_bytes().first() {
        Some(b'w') => b'w',
        Some(b'r') => b'r',
        _ => return Err(err()),
    };
    let inner = tok[1..]
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(err)?;
    let (k, v) = inner.split_once(',').ok_or_else(err)?;
    let key: u64 = k.trim().parse().map_err(|_| err())?;
    let value: u64 = v.trim().parse().map_err(|_| err())?;
    Ok((kind, (key, value)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::HistoryStats;

    fn sample() -> History {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        b.begin(s0);
        b.write(s0, 100, 2);
        b.read(s0, 200, 99); // thin air, still serializes
        b.commit(s0);
        b.begin(s0);
        b.write(s0, 300, 6);
        b.abort(s0);
        b.begin(s1);
        b.read(s1, 100, 2);
        b.commit(s1);
        b.finish().unwrap()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let h = sample();
        let text = write_native(&h);
        let h2 = parse_native(&text).unwrap();
        assert_eq!(HistoryStats::of(&h), HistoryStats::of(&h2));
        // Serialization is a fixed point.
        assert_eq!(write_native(&h2), text);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "awdit-history v1\n# a comment\nsession 0\n\nc: w(1,1) # trailing\n";
        let h = parse_native(text).unwrap();
        assert_eq!(h.size(), 1);
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = parse_native("session 0\nc: w(1,1)\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("header"));
    }

    #[test]
    fn malformed_ops_are_located() {
        let err = parse_native("awdit-history v1\nsession 0\nc: w(1;2)\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("malformed"));
    }

    #[test]
    fn txn_before_session_is_an_error() {
        let err = parse_native("awdit-history v1\nc: w(1,1)\n").unwrap_err();
        assert!(err.message.contains("before any session"));
    }

    #[test]
    fn empty_history_round_trips() {
        let h = HistoryBuilder::new().finish().unwrap();
        let h2 = parse_native(&write_native(&h)).unwrap();
        assert_eq!(h2.size(), 0);
    }

    #[test]
    fn sparse_session_ids_create_intermediate_sessions() {
        let text = "awdit-history v1\nsession 2\nc: w(1,1)\n";
        let h = parse_native(text).unwrap();
        assert_eq!(h.num_sessions(), 3);
    }
}
