//! The native AWDIT history format.
//!
//! One session per block, one transaction per line:
//!
//! ```text
//! awdit-history v1
//! session 0
//! c: w(100,2) r(200,4)
//! a: w(300,6)
//! session 1
//! c: r(100,2)
//! ```
//!
//! `c:` marks a committed transaction, `a:` an aborted one; operations are
//! `w(key,value)` / `r(key,value)` in program order. Blank lines and `#`
//! comments are ignored.
//!
//! [`read_native`] is the incremental reader (any [`BufRead`] into any
//! [`HistorySink`]); [`write_native_to`] the symmetric streaming writer
//! (no per-operation allocation). [`parse_native`]/[`write_native`] are
//! the whole-`str`/`String` conveniences on top.

use std::io::{BufRead, Write};

use awdit_core::{History, HistoryBuilder, HistorySink, Op, SessionId};

use crate::error::ParseError;
use crate::reader::LineReader;

/// The first line of every native-format file.
pub const NATIVE_HEADER: &str = "awdit-history v1";

/// Streams `history` out in the native format.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_native_to<W: Write + ?Sized>(history: &History, out: &mut W) -> std::io::Result<()> {
    out.write_all(NATIVE_HEADER.as_bytes())?;
    out.write_all(b"\n")?;
    for (sid, txns) in history.sessions() {
        writeln!(out, "session {}", sid.0)?;
        for t in txns.iter() {
            out.write_all(if t.is_committed() { b"c:" } else { b"a:" })?;
            for op in t.ops() {
                match *op {
                    Op::Write { key, value } => {
                        write!(out, " w({},{})", history.key_name(key), value.0)?;
                    }
                    Op::Read { key, value, .. } => {
                        write!(out, " r({},{})", history.key_name(key), value.0)?;
                    }
                }
            }
            out.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Serializes a history in the native format.
pub fn write_native(history: &History) -> String {
    let mut out = Vec::with_capacity(history.size() * 12 + 64);
    write_native_to(history, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("native format is ASCII")
}

/// Incrementally reads a native-format history from `input`, emitting
/// events into `sink` as lines are consumed.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on malformed input or
/// I/O failure. The sink may have received a partial history by then;
/// discard it (e.g. [`HistoryBuilder::reset`]).
pub fn read_native<R: BufRead, S: HistorySink + ?Sized>(
    input: R,
    sink: &mut S,
) -> Result<(), ParseError> {
    read_native_lines(&mut LineReader::new(input), sink)
}

pub(crate) fn read_native_lines<R: BufRead, S: HistorySink + ?Sized>(
    lines: &mut LineReader<R>,
    sink: &mut S,
) -> Result<(), ParseError> {
    crate::reader::expect_header(lines, NATIVE_HEADER)?;

    let mut current: Option<SessionId> = None;
    while let Some((raw, lineno)) = lines.next_line()? {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("session") {
            let id: usize = rest.trim().parse().map_err(|_| {
                ParseError::new(lineno, format!("bad session id `{}`", rest.trim()))
            })?;
            // Sessions must appear in order; create up to the id.
            sink.ensure_sessions(id + 1);
            current = Some(SessionId(id as u32));
            continue;
        }
        let (committed, rest) = if let Some(rest) = line.strip_prefix("c:") {
            (true, rest)
        } else if let Some(rest) = line.strip_prefix("a:") {
            (false, rest)
        } else {
            return Err(ParseError::new(
                lineno,
                format!("expected `session N`, `c:`, or `a:`, found `{line}`"),
            ));
        };
        let session =
            current.ok_or_else(|| ParseError::new(lineno, "transaction before any session"))?;
        sink.begin(session);
        for tok in rest.split_whitespace() {
            let (kind, args) = parse_op_token(tok, lineno)?;
            match kind {
                b'w' => sink.write(session, args.0, args.1),
                _ => sink.read(session, args.0, args.1),
            }
        }
        if committed {
            sink.commit(session);
        } else {
            sink.abort(session);
        }
    }
    Ok(())
}

/// Parses a native-format history.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on malformed input, or
/// a wrapped [`BuildError`](awdit_core::BuildError) if the operations form
/// an invalid history (e.g. duplicate writes).
pub fn parse_native(text: &str) -> Result<History, ParseError> {
    let mut b = HistoryBuilder::new();
    read_native(text.as_bytes(), &mut b)?;
    b.finish().map_err(ParseError::from)
}

/// Parses `w(key,value)` / `r(key,value)`.
fn parse_op_token(tok: &str, lineno: usize) -> Result<(u8, (u64, u64)), ParseError> {
    let err = || ParseError::new(lineno, format!("malformed operation `{tok}`"));
    let kind = match tok.as_bytes().first() {
        Some(b'w') => b'w',
        Some(b'r') => b'r',
        _ => return Err(err()),
    };
    let inner = tok[1..]
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(err)?;
    let (k, v) = inner.split_once(',').ok_or_else(err)?;
    let key: u64 = k.trim().parse().map_err(|_| err())?;
    let value: u64 = v.trim().parse().map_err(|_| err())?;
    Ok((kind, (key, value)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::HistoryStats;

    fn sample() -> History {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        b.begin(s0);
        b.write(s0, 100, 2);
        b.read(s0, 200, 99); // thin air, still serializes
        b.commit(s0);
        b.begin(s0);
        b.write(s0, 300, 6);
        b.abort(s0);
        b.begin(s1);
        b.read(s1, 100, 2);
        b.commit(s1);
        b.finish().unwrap()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let h = sample();
        let text = write_native(&h);
        let h2 = parse_native(&text).unwrap();
        assert_eq!(HistoryStats::of(&h), HistoryStats::of(&h2));
        // Serialization is a fixed point — and the round trip is exact.
        assert_eq!(write_native(&h2), text);
        assert_eq!(h2, h);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "awdit-history v1\n# a comment\nsession 0\n\nc: w(1,1) # trailing\n";
        let h = parse_native(text).unwrap();
        assert_eq!(h.size(), 1);
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = parse_native("session 0\nc: w(1,1)\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("header"));
    }

    #[test]
    fn malformed_ops_are_located() {
        let err = parse_native("awdit-history v1\nsession 0\nc: w(1;2)\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("malformed"));
    }

    #[test]
    fn txn_before_session_is_an_error() {
        let err = parse_native("awdit-history v1\nc: w(1,1)\n").unwrap_err();
        assert!(err.message.contains("before any session"));
    }

    #[test]
    fn empty_history_round_trips() {
        let h = HistoryBuilder::new().finish().unwrap();
        let h2 = parse_native(&write_native(&h)).unwrap();
        assert_eq!(h2.size(), 0);
    }

    #[test]
    fn sparse_session_ids_create_intermediate_sessions() {
        let text = "awdit-history v1\nsession 2\nc: w(1,1)\n";
        let h = parse_native(text).unwrap();
        assert_eq!(h.num_sessions(), 3);
    }

    #[test]
    fn streaming_reader_matches_whole_string_parse() {
        let h = sample();
        let text = write_native(&h);
        // A 1-byte buffer forces the reader through every refill path.
        let mut b = HistoryBuilder::new();
        read_native(
            std::io::BufReader::with_capacity(1, text.as_bytes()),
            &mut b,
        )
        .unwrap();
        assert_eq!(b.finish().unwrap(), parse_native(&text).unwrap());
    }
}
