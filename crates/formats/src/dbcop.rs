//! A DBCop-style history format (a text rendition of the structure DBCop
//! serializes with bincode: sessions of transactions of operations, with
//! explicit counts and commit flags).
//!
//! ```text
//! dbcop-history
//! sessions 2
//! session 0 txns 2
//! txn committed 2
//! W 100 2
//! R 200 4
//! txn aborted 1
//! W 300 6
//! session 1 txns 1
//! txn committed 1
//! R 100 2
//! ```

use awdit_core::{History, HistoryBuilder, Op};

use crate::error::ParseError;

/// The first line of every DBCop-style file.
pub const DBCOP_HEADER: &str = "dbcop-history";

/// Serializes a history in the DBCop style.
pub fn write_dbcop(history: &History) -> String {
    let mut out = String::with_capacity(history.size() * 12 + 64);
    out.push_str(DBCOP_HEADER);
    out.push('\n');
    out.push_str(&format!("sessions {}\n", history.num_sessions()));
    for (sid, txns) in history.sessions() {
        out.push_str(&format!("session {} txns {}\n", sid.0, txns.len()));
        for t in txns {
            out.push_str(&format!(
                "txn {} {}\n",
                if t.is_committed() {
                    "committed"
                } else {
                    "aborted"
                },
                t.len()
            ));
            for op in t.ops() {
                match *op {
                    Op::Write { key, value } => {
                        out.push_str(&format!("W {} {}\n", history.key_name(key), value.0));
                    }
                    Op::Read { key, value, .. } => {
                        out.push_str(&format!("R {} {}\n", history.key_name(key), value.0));
                    }
                }
            }
        }
    }
    out
}

/// Parses a DBCop-style history.
///
/// # Errors
///
/// Returns a [`ParseError`] when counts do not match the data or lines are
/// malformed.
pub fn parse_dbcop(text: &str) -> Result<History, ParseError> {
    let mut lines = text.lines().enumerate().peekable();
    let expect_line = |lines: &mut std::iter::Peekable<
        std::iter::Enumerate<std::str::Lines<'_>>,
    >|
     -> Result<(usize, String), ParseError> {
        for (i, raw) in lines.by_ref() {
            let line = raw.trim();
            if !line.is_empty() {
                return Ok((i + 1, line.to_string()));
            }
        }
        Err(ParseError::new(0, "unexpected end of file"))
    };

    let (lineno, header) = expect_line(&mut lines)?;
    if header != DBCOP_HEADER {
        return Err(ParseError::new(
            lineno,
            format!("expected header `{DBCOP_HEADER}`"),
        ));
    }
    let (lineno, sessions_line) = expect_line(&mut lines)?;
    let num_sessions: usize = sessions_line
        .strip_prefix("sessions ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseError::new(lineno, "expected `sessions N`"))?;

    let mut b = HistoryBuilder::new();
    let session_ids = b.sessions(num_sessions);

    for expected_sid in 0..num_sessions {
        let (lineno, line) = expect_line(&mut lines)?;
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 4 || parts[0] != "session" || parts[2] != "txns" {
            return Err(ParseError::new(lineno, "expected `session N txns M`"));
        }
        let sid: usize = parts[1]
            .parse()
            .map_err(|_| ParseError::new(lineno, "bad session id"))?;
        if sid != expected_sid {
            return Err(ParseError::new(
                lineno,
                format!("expected session {expected_sid}, found {sid}"),
            ));
        }
        let num_txns: usize = parts[3]
            .parse()
            .map_err(|_| ParseError::new(lineno, "bad txn count"))?;
        for _ in 0..num_txns {
            let (lineno, line) = expect_line(&mut lines)?;
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "txn" {
                return Err(ParseError::new(
                    lineno,
                    "expected `txn committed|aborted N`",
                ));
            }
            let committed = match parts[1] {
                "committed" => true,
                "aborted" => false,
                other => {
                    return Err(ParseError::new(
                        lineno,
                        format!("expected committed|aborted, found `{other}`"),
                    ))
                }
            };
            let num_ops: usize = parts[2]
                .parse()
                .map_err(|_| ParseError::new(lineno, "bad op count"))?;
            b.begin(session_ids[sid]);
            for _ in 0..num_ops {
                let (lineno, line) = expect_line(&mut lines)?;
                let parts: Vec<&str> = line.split_whitespace().collect();
                if parts.len() != 3 {
                    return Err(ParseError::new(lineno, "expected `W|R key value`"));
                }
                let key: u64 = parts[1]
                    .parse()
                    .map_err(|_| ParseError::new(lineno, "bad key"))?;
                let value: u64 = parts[2]
                    .parse()
                    .map_err(|_| ParseError::new(lineno, "bad value"))?;
                match parts[0] {
                    "W" => b.write(session_ids[sid], key, value),
                    "R" => b.read(session_ids[sid], key, value),
                    other => {
                        return Err(ParseError::new(
                            lineno,
                            format!("expected W or R, found `{other}`"),
                        ))
                    }
                }
            }
            if committed {
                b.commit(session_ids[sid]);
            } else {
                b.abort(session_ids[sid]);
            }
        }
    }
    b.finish().map_err(ParseError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::HistoryStats;

    fn sample() -> History {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        b.begin(s0);
        b.write(s0, 100, 2);
        b.read(s0, 200, 4);
        b.commit(s0);
        b.begin(s0);
        b.write(s0, 300, 6);
        b.abort(s0);
        b.begin(s1);
        b.read(s1, 100, 2);
        b.commit(s1);
        b.finish().unwrap()
    }

    #[test]
    fn round_trip() {
        let h = sample();
        let text = write_dbcop(&h);
        let h2 = parse_dbcop(&text).unwrap();
        assert_eq!(HistoryStats::of(&h), HistoryStats::of(&h2));
        assert_eq!(write_dbcop(&h2), text);
    }

    #[test]
    fn count_mismatches_are_errors() {
        // Claims 2 ops but provides 1.
        let text = "dbcop-history\nsessions 1\nsession 0 txns 1\ntxn committed 2\nW 1 1\n";
        assert!(parse_dbcop(text).is_err());
    }

    #[test]
    fn header_required() {
        assert!(parse_dbcop("sessions 1\n").is_err());
    }

    #[test]
    fn session_order_enforced() {
        let text = "dbcop-history\nsessions 2\nsession 1 txns 0\nsession 0 txns 0\n";
        let err = parse_dbcop(text).unwrap_err();
        assert!(err.message.contains("expected session 0"));
    }

    #[test]
    fn empty_sessions_allowed() {
        let text = "dbcop-history\nsessions 2\nsession 0 txns 0\nsession 1 txns 0\n";
        let h = parse_dbcop(text).unwrap();
        assert_eq!(h.num_sessions(), 2);
        assert_eq!(h.num_txns(), 0);
    }
}
