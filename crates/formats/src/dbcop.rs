//! A DBCop-style history format (a text rendition of the structure DBCop
//! serializes with bincode: sessions of transactions of operations, with
//! explicit counts and commit flags).
//!
//! ```text
//! dbcop-history
//! sessions 2
//! session 0 txns 2
//! txn committed 2
//! W 100 2
//! R 200 4
//! txn aborted 1
//! W 300 6
//! session 1 txns 1
//! txn committed 1
//! R 100 2
//! ```

use std::io::{BufRead, Write};

use awdit_core::{History, HistoryBuilder, HistorySink, Op, SessionId};

use crate::error::ParseError;
use crate::reader::LineReader;

/// The first line of every DBCop-style file.
pub const DBCOP_HEADER: &str = "dbcop-history";

/// Streams `history` out in the DBCop style.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_dbcop_to<W: Write + ?Sized>(history: &History, out: &mut W) -> std::io::Result<()> {
    out.write_all(DBCOP_HEADER.as_bytes())?;
    out.write_all(b"\n")?;
    writeln!(out, "sessions {}", history.num_sessions())?;
    for (sid, txns) in history.sessions() {
        writeln!(out, "session {} txns {}", sid.0, txns.len())?;
        for t in txns.iter() {
            writeln!(
                out,
                "txn {} {}",
                if t.is_committed() {
                    "committed"
                } else {
                    "aborted"
                },
                t.len()
            )?;
            for op in t.ops() {
                match *op {
                    Op::Write { key, value } => {
                        writeln!(out, "W {} {}", history.key_name(key), value.0)?;
                    }
                    Op::Read { key, value, .. } => {
                        writeln!(out, "R {} {}", history.key_name(key), value.0)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Serializes a history in the DBCop style.
pub fn write_dbcop(history: &History) -> String {
    let mut out = Vec::with_capacity(history.size() * 12 + 64);
    write_dbcop_to(history, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("dbcop format is ASCII")
}

/// Consumes the next non-blank line and applies `f` to it (trimmed, with
/// its number) — parsing in place, so counted records cost no per-line
/// allocation.
fn expect_line<R: BufRead, T>(
    lines: &mut LineReader<R>,
    f: impl FnOnce(&str, usize) -> Result<T, ParseError>,
) -> Result<T, ParseError> {
    loop {
        match lines.next_line()? {
            None => return Err(ParseError::new(0, "unexpected end of file")),
            Some((raw, lineno)) => {
                let line = raw.trim();
                if !line.is_empty() {
                    return f(line, lineno);
                }
            }
        }
    }
}

/// Incrementally reads a DBCop-style history from `input`, emitting events
/// into `sink` as records are consumed.
///
/// # Errors
///
/// Returns a [`ParseError`] when counts do not match the data, lines are
/// malformed, or I/O fails; the sink may hold a partial history by then.
pub fn read_dbcop<R: BufRead, S: HistorySink + ?Sized>(
    input: R,
    sink: &mut S,
) -> Result<(), ParseError> {
    read_dbcop_lines(&mut LineReader::new(input), sink)
}

pub(crate) fn read_dbcop_lines<R: BufRead, S: HistorySink + ?Sized>(
    lines: &mut LineReader<R>,
    sink: &mut S,
) -> Result<(), ParseError> {
    expect_line(lines, |line, lineno| {
        if line != DBCOP_HEADER {
            return Err(ParseError::new(
                lineno,
                format!("expected header `{DBCOP_HEADER}`"),
            ));
        }
        Ok(())
    })?;
    let num_sessions: usize = expect_line(lines, |line, lineno| {
        line.strip_prefix("sessions ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ParseError::new(lineno, "expected `sessions N`"))
    })?;

    sink.ensure_sessions(num_sessions);

    for expected_sid in 0..num_sessions {
        let num_txns: usize = expect_line(lines, |line, lineno| {
            let mut parts = line.split_whitespace();
            let ok = parts.next() == Some("session");
            let sid = parts.next().and_then(|p| p.parse::<usize>().ok());
            let ok = ok && parts.next() == Some("txns");
            let txns = parts.next().and_then(|p| p.parse::<usize>().ok());
            if !ok || sid.is_none() || txns.is_none() || parts.next().is_some() {
                return Err(ParseError::new(lineno, "expected `session N txns M`"));
            }
            if sid != Some(expected_sid) {
                return Err(ParseError::new(
                    lineno,
                    format!("expected session {expected_sid}, found {}", sid.unwrap()),
                ));
            }
            Ok(txns.unwrap())
        })?;
        let session = SessionId(expected_sid as u32);
        for _ in 0..num_txns {
            let (committed, num_ops) = expect_line(lines, |line, lineno| {
                let mut parts = line.split_whitespace();
                if parts.next() != Some("txn") {
                    return Err(ParseError::new(
                        lineno,
                        "expected `txn committed|aborted N`",
                    ));
                }
                let committed = match parts.next() {
                    Some("committed") => true,
                    Some("aborted") => false,
                    other => {
                        return Err(ParseError::new(
                            lineno,
                            format!(
                                "expected committed|aborted, found `{}`",
                                other.unwrap_or("")
                            ),
                        ))
                    }
                };
                let ops: usize = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| ParseError::new(lineno, "bad op count"))?;
                if parts.next().is_some() {
                    return Err(ParseError::new(
                        lineno,
                        "expected `txn committed|aborted N`",
                    ));
                }
                Ok((committed, ops))
            })?;
            sink.begin(session);
            for _ in 0..num_ops {
                let (is_write, key, value) = expect_line(lines, |line, lineno| {
                    let mut parts = line.split_whitespace();
                    let tag = parts.next();
                    let key: Option<u64> = parts.next().and_then(|p| p.parse().ok());
                    let value: Option<u64> = parts.next().and_then(|p| p.parse().ok());
                    if parts.next().is_some() || key.is_none() || value.is_none() {
                        return Err(ParseError::new(lineno, "expected `W|R key value`"));
                    }
                    let is_write = match tag {
                        Some("W") => true,
                        Some("R") => false,
                        other => {
                            return Err(ParseError::new(
                                lineno,
                                format!("expected W or R, found `{}`", other.unwrap_or("")),
                            ))
                        }
                    };
                    Ok((is_write, key.unwrap(), value.unwrap()))
                })?;
                if is_write {
                    sink.write(session, key, value);
                } else {
                    sink.read(session, key, value);
                }
            }
            if committed {
                sink.commit(session);
            } else {
                sink.abort(session);
            }
        }
    }
    Ok(())
}

/// Parses a DBCop-style history.
///
/// # Errors
///
/// Returns a [`ParseError`] when counts do not match the data or lines are
/// malformed.
pub fn parse_dbcop(text: &str) -> Result<History, ParseError> {
    let mut b = HistoryBuilder::new();
    read_dbcop(text.as_bytes(), &mut b)?;
    b.finish().map_err(ParseError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::HistoryStats;

    fn sample() -> History {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        b.begin(s0);
        b.write(s0, 100, 2);
        b.read(s0, 200, 4);
        b.commit(s0);
        b.begin(s0);
        b.write(s0, 300, 6);
        b.abort(s0);
        b.begin(s1);
        b.read(s1, 100, 2);
        b.commit(s1);
        b.finish().unwrap()
    }

    #[test]
    fn round_trip() {
        let h = sample();
        let text = write_dbcop(&h);
        let h2 = parse_dbcop(&text).unwrap();
        assert_eq!(HistoryStats::of(&h), HistoryStats::of(&h2));
        assert_eq!(write_dbcop(&h2), text);
        assert_eq!(h2, h);
    }

    #[test]
    fn count_mismatches_are_errors() {
        // Claims 2 ops but provides 1.
        let text = "dbcop-history\nsessions 1\nsession 0 txns 1\ntxn committed 2\nW 1 1\n";
        assert!(parse_dbcop(text).is_err());
    }

    #[test]
    fn header_required() {
        assert!(parse_dbcop("sessions 1\n").is_err());
    }

    #[test]
    fn session_order_enforced() {
        let text = "dbcop-history\nsessions 2\nsession 1 txns 0\nsession 0 txns 0\n";
        let err = parse_dbcop(text).unwrap_err();
        assert!(err.message.contains("expected session 0"));
    }

    #[test]
    fn empty_sessions_allowed() {
        let text = "dbcop-history\nsessions 2\nsession 0 txns 0\nsession 1 txns 0\n";
        let h = parse_dbcop(text).unwrap();
        assert_eq!(h.num_sessions(), 2);
        assert_eq!(h.num_txns(), 0);
    }
}
