//! Streaming NDJSON event format: one JSON object per line, one
//! transaction event each — the wire format consumed by `awdit watch` and
//! produced by collection agents.
//!
//! ```text
//! {"type":"begin","session":0}
//! {"type":"write","session":0,"key":10,"value":1}
//! {"type":"read","session":1,"key":10,"value":1}
//! {"type":"commit","session":0}
//! {"type":"abort","session":2}
//! ```
//!
//! The parser is deliberately small and dependency-free: objects must be
//! flat (no nesting), fields may appear in any order, unknown fields are
//! ignored, and blank lines and `#` comment lines are skipped — so logs
//! with occasional annotations still parse.

use std::io::{BufRead, Write};

use awdit_core::{HistorySink, SessionId};
use awdit_stream::Event;

use crate::error::ParseError;
use crate::reader::LineReader;

/// Streams one event as a canonical NDJSON line (no trailing newline)
/// into `out` — no intermediate `String`.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_event_to<W: Write + ?Sized>(event: &Event, out: &mut W) -> std::io::Result<()> {
    match *event {
        Event::Begin { session } => {
            write!(out, "{{\"type\":\"begin\",\"session\":{session}}}")
        }
        Event::Write {
            session,
            key,
            value,
        } => write!(
            out,
            "{{\"type\":\"write\",\"session\":{session},\"key\":{key},\"value\":{value}}}"
        ),
        Event::Read {
            session,
            key,
            value,
        } => write!(
            out,
            "{{\"type\":\"read\",\"session\":{session},\"key\":{key},\"value\":{value}}}"
        ),
        Event::Commit { session } => {
            write!(out, "{{\"type\":\"commit\",\"session\":{session}}}")
        }
        Event::Abort { session } => {
            write!(out, "{{\"type\":\"abort\",\"session\":{session}}}")
        }
    }
}

/// Streams a sequence of events, one NDJSON line each.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_events_to<'a, W: Write + ?Sized>(
    events: impl IntoIterator<Item = &'a Event>,
    out: &mut W,
) -> std::io::Result<()> {
    for e in events {
        write_event_to(e, out)?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Streams a whole history's event-stream form (the round-robin
/// interleaving of [`events_of_history`](awdit_stream::events_of_history))
/// as NDJSON lines, one event at a time — no materialized `Vec<Event>`,
/// so converting a history to an event log holds only the columnar
/// history itself.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_history_events_to<W: Write + ?Sized>(
    history: &awdit_core::History,
    out: &mut W,
) -> std::io::Result<()> {
    let mut result = Ok(());
    awdit_stream::for_each_event(history, |e| {
        if result.is_ok() {
            result = write_event_to(e, out).and_then(|()| out.write_all(b"\n"));
        }
    });
    result
}

/// Serializes one event as a canonical NDJSON line (no trailing newline).
pub fn write_event(event: &Event) -> String {
    let mut out = Vec::with_capacity(64);
    write_event_to(event, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("NDJSON events are ASCII")
}

/// Serializes a sequence of events, one line each.
pub fn write_events<'a>(events: impl IntoIterator<Item = &'a Event>) -> String {
    let mut out = Vec::new();
    write_events_to(events, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("NDJSON events are ASCII")
}

/// Replays transaction events into a [`HistorySink`], numbering sessions
/// by first appearance and validating begin/commit bracketing — the
/// shared core of [`read_events`] and
/// [`history_of_events`](crate::history_of_events).
#[derive(Debug, Default)]
pub(crate) struct EventReplayer {
    sessions: Vec<(u64, SessionId)>,
    open: Vec<u64>,
}

impl EventReplayer {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Applies one event to `sink`; errors describe the protocol fault
    /// without positional context (the caller adds line/event numbers).
    pub(crate) fn apply<S: HistorySink + ?Sized>(
        &mut self,
        sink: &mut S,
        event: &Event,
    ) -> Result<(), String> {
        let name = event.session();
        let sid = match self.sessions.iter().find(|(n, _)| *n == name) {
            Some(&(_, sid)) => sid,
            None => {
                let sid = sink.session();
                self.sessions.push((name, sid));
                sid
            }
        };
        let is_open = self.open.contains(&name);
        match *event {
            Event::Begin { .. } => {
                if is_open {
                    return Err(format!("nested begin on session {name}"));
                }
                self.open.push(name);
                sink.begin(sid);
            }
            Event::Write { key, value, .. } => {
                if !is_open {
                    return Err(format!("write outside transaction on {name}"));
                }
                sink.write(sid, key, value);
            }
            Event::Read { key, value, .. } => {
                if !is_open {
                    return Err(format!("read outside transaction on {name}"));
                }
                sink.read(sid, key, value);
            }
            Event::Commit { .. } => {
                if !is_open {
                    return Err(format!("commit with no open transaction on {name}"));
                }
                self.open.retain(|&n| n != name);
                sink.commit(sid);
            }
            Event::Abort { .. } => {
                if !is_open {
                    return Err(format!("abort with no open transaction on {name}"));
                }
                self.open.retain(|&n| n != name);
                sink.abort(sid);
            }
        }
        Ok(())
    }

    /// End-of-stream check: every session must have closed its last
    /// transaction.
    pub(crate) fn finish(&self) -> Result<(), String> {
        if let Some(name) = self.open.first() {
            return Err(format!("stream ends with session {name} still open"));
        }
        Ok(())
    }
}

/// Incrementally reads an NDJSON event log from `input`, replaying the
/// events into `sink` (sessions numbered by first appearance) — the
/// streaming form of
/// [`history_of_events`](crate::history_of_events). Blank lines and `#`
/// comment lines are skipped.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed JSON, protocol faults (events
/// outside an open transaction, nested `begin`s, a stream ending with an
/// open transaction), or I/O failure.
pub fn read_events<R: BufRead, S: HistorySink + ?Sized>(
    input: R,
    sink: &mut S,
) -> Result<(), ParseError> {
    read_events_lines(&mut LineReader::new(input), sink)
}

pub(crate) fn read_events_lines<R: BufRead, S: HistorySink + ?Sized>(
    lines: &mut LineReader<R>,
    sink: &mut S,
) -> Result<(), ParseError> {
    let mut replay = EventReplayer::new();
    while let Some((raw, lineno)) = lines.next_line()? {
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let event = parse_event(trimmed, lineno)?;
        replay
            .apply(sink, &event)
            .map_err(|m| ParseError::new(lineno, m))?;
    }
    replay
        .finish()
        .map_err(|m| ParseError::new(lines.line_no().max(1), m))
}

/// Parses one NDJSON line into an event. `line_no` is used for error
/// reporting (1-based).
pub fn parse_event(line: &str, line_no: usize) -> Result<Event, ParseError> {
    let fields = parse_flat_object(line, line_no)?;
    let typ = fields
        .iter()
        .find(|(k, _)| k == "type")
        .ok_or_else(|| ParseError::new(line_no, "missing \"type\" field"))?;
    let JsonValue::Str(typ) = &typ.1 else {
        return Err(ParseError::new(line_no, "\"type\" must be a string"));
    };
    let get_num = |name: &str| -> Result<u64, ParseError> {
        match fields.iter().find(|(k, _)| k == name) {
            Some((_, JsonValue::Num(n))) => Ok(*n),
            Some(_) => Err(ParseError::new(
                line_no,
                format!("\"{name}\" must be a number"),
            )),
            None => Err(ParseError::new(
                line_no,
                format!("missing \"{name}\" field"),
            )),
        }
    };
    let session = get_num("session")?;
    match typ.as_str() {
        "begin" => Ok(Event::Begin { session }),
        "commit" => Ok(Event::Commit { session }),
        "abort" => Ok(Event::Abort { session }),
        "write" => Ok(Event::Write {
            session,
            key: get_num("key")?,
            value: get_num("value")?,
        }),
        "read" => Ok(Event::Read {
            session,
            key: get_num("key")?,
            value: get_num("value")?,
        }),
        other => Err(ParseError::new(
            line_no,
            format!("unknown event type \"{other}\""),
        )),
    }
}

/// Parses a whole NDJSON document (blank and `#` lines skipped).
pub fn parse_events(text: &str) -> Result<Vec<Event>, ParseError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        events.push(parse_event(trimmed, i + 1)?);
    }
    Ok(events)
}

#[derive(Debug, PartialEq)]
enum JsonValue {
    Num(u64),
    Str(String),
    /// Any other scalar in an ignored field (bool, null, float, negative
    /// number): tolerated, never used by an event field.
    Other,
}

/// Parses a flat JSON object of string/number fields.
fn parse_flat_object(line: &str, line_no: usize) -> Result<Vec<(String, JsonValue)>, ParseError> {
    let s = line.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| ParseError::new(line_no, "expected a JSON object"))?;
    let mut fields = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        // "key"
        let r = rest
            .strip_prefix('"')
            .ok_or_else(|| ParseError::new(line_no, "expected a quoted field name"))?;
        let end = r
            .find('"')
            .ok_or_else(|| ParseError::new(line_no, "unterminated field name"))?;
        let name = r[..end].to_string();
        let r = r[end + 1..].trim_start();
        // :
        let r = r
            .strip_prefix(':')
            .ok_or_else(|| ParseError::new(line_no, "expected ':' after field name"))?
            .trim_start();
        // value: quoted string, unsigned integer, or any other scalar
        // (tolerated in ignored fields).
        let (value, r) = if let Some(r) = r.strip_prefix('"') {
            let end = string_end(r)
                .ok_or_else(|| ParseError::new(line_no, "unterminated string value"))?;
            (
                JsonValue::Str(r[..end].replace("\\\"", "\"").replace("\\\\", "\\")),
                r[end + 1..].trim_start(),
            )
        } else {
            let end = r
                .find(|c: char| c == ',' || c.is_whitespace())
                .unwrap_or(r.len());
            if end == 0 {
                return Err(ParseError::new(line_no, "expected a value"));
            }
            let token = &r[..end];
            let value = match token.parse::<u64>() {
                Ok(n) => JsonValue::Num(n),
                // Bools, null, floats, negatives: legal JSON scalars that no
                // event field uses; keep them skippable.
                Err(_) => JsonValue::Other,
            };
            (value, r[end..].trim_start())
        };
        fields.push((name, value));
        rest = match rest_after_comma(r) {
            Ok(next) => next,
            Err(msg) => return Err(ParseError::new(line_no, msg)),
        };
    }
    Ok(fields)
}

/// Index of the closing quote of a JSON string body (handles `\\"` and
/// `\\\\` escapes), or `None` if unterminated.
fn string_end(r: &str) -> Option<usize> {
    let bytes = r.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some(i),
            b'\\' => i += 2,
            _ => i += 1,
        }
    }
    None
}

fn rest_after_comma(r: &str) -> Result<&str, &'static str> {
    let r = r.trim_start();
    if r.is_empty() {
        Ok(r)
    } else if let Some(next) = r.strip_prefix(',') {
        let next = next.trim_start();
        if next.is_empty() {
            Err("trailing comma")
        } else {
            Ok(next)
        }
    } else {
        Err("expected ',' between fields")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_event_kind() {
        let events = vec![
            Event::Begin { session: 3 },
            Event::Write {
                session: 3,
                key: 10,
                value: 7,
            },
            Event::Read {
                session: 3,
                key: 10,
                value: 7,
            },
            Event::Commit { session: 3 },
            Event::Abort { session: 4 },
        ];
        let text = write_events(&events);
        assert_eq!(parse_events(&text).unwrap(), events);
    }

    #[test]
    fn tolerates_field_order_whitespace_and_comments() {
        let text = r#"
# a collection agent comment
{ "key": 1, "value": 2, "type": "write", "session": 0 }

{"session":1,"type":"read","key":1,"value":2,"agent":"shard-7"}
"#;
        let events = parse_events(text).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            Event::Write {
                session: 0,
                key: 1,
                value: 2
            }
        );
        assert_eq!(
            events[1],
            Event::Read {
                session: 1,
                key: 1,
                value: 2
            }
        );
    }

    #[test]
    fn ignored_fields_may_hold_any_scalar() {
        let text = r#"{"type":"begin","session":0,"durable":true,"lag":-3,"rate":0.5,"note":null,"agent":"a\"b"}"#;
        let events = parse_events(text).unwrap();
        assert_eq!(events, vec![Event::Begin { session: 0 }]);
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        let err = parse_events("{\"type\":\"begin\",\"session\":0}\nnot json").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_events("{\"type\":\"warp\",\"session\":0}").unwrap_err();
        assert!(err.message.contains("unknown event type"));
        let err = parse_events("{\"type\":\"write\",\"session\":0}").unwrap_err();
        assert!(err.message.contains("key"));
    }

    #[test]
    fn history_round_trips_through_the_event_stream() {
        use awdit_core::{check, HistoryBuilder, IsolationLevel};
        use awdit_stream::{events_of_history, OnlineChecker};

        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        b.begin(s0);
        b.write(s0, 0, 1);
        b.write(s0, 1, 1);
        b.commit(s0);
        b.begin(s1);
        b.read(s1, 0, 1);
        b.commit(s1);
        let h = b.finish().unwrap();

        let text = write_events(&events_of_history(&h));
        let events = parse_events(&text).unwrap();
        let mut checker = OnlineChecker::new(IsolationLevel::Causal);
        for e in &events {
            checker.apply(e).unwrap();
        }
        let outcome = checker.finish().unwrap();
        assert_eq!(
            outcome.is_consistent(),
            check(&h, IsolationLevel::Causal).is_consistent()
        );
    }
}
