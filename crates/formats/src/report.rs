//! Machine-readable check reports: a versioned, dependency-free JSON
//! schema plus pluggable [`ReportSink`]s.
//!
//! Production testers are embedded in pipelines — Jepsen consumes Elle's
//! structured anomaly output, CI fleets aggregate verdicts across many
//! histories — so a stable, parseable report format matters as much as
//! the verdict itself. This module defines one:
//!
//! * [`Report`] → [`HistoryReport`] → [`LevelReport`] →
//!   [`ViolationReport`] mirror the engine's outcomes: verdicts,
//!   violations **with per-edge cycle provenance**, check statistics, and
//!   wall-clock timings, for any number of histories and levels.
//! * [`Report::to_json`] / [`Report::from_json`] serialize without any
//!   external dependency and **round-trip exactly** (property-tested
//!   below); [`SCHEMA_VERSION`] is embedded so consumers can detect
//!   incompatible changes.
//! * [`ReportSink`] abstracts the output side: [`JsonSink`] writes the
//!   JSON document, [`TextSink`] renders the human format the `awdit`
//!   CLI prints.
//!
//! The JSON shape (see the README for a worked example):
//!
//! ```text
//! { "schema_version": 2, "tool": "awdit",
//!   "histories": [ { "name", "sessions", "txns", "ops", "keys", "time_ms",
//!     "levels": [ { "level", "verdict", "committed_txns", "graph_edges",
//!       "inferred_edges",
//!       "violations": [ { "kind", "message",
//!         "cycle": [ { "from", "to", "edge", "key"? } ] } ] } ],
//!     "timings"?: [ { "phase", "spans", "total_ms" } ] } ],
//!   "engine"?: { "histories", "checks", "arena_growths", "arena_bytes" } }
//! ```

use std::io::Write;

use awdit_core::stats::HistoryStats;
use awdit_core::{EdgeKind, History, Outcome, Verdict, Violation, WitnessCycle};

/// Version of the JSON report schema emitted by [`Report::to_json`].
/// Bumped on any incompatible change of field names or meanings.
///
/// Version history: **1** — the original shape; **2** — adds the optional
/// per-history `timings` block (phase-level profiling from `awdit-obs`)
/// and the optional top-level `engine` stats block. Both additions are
/// optional fields, so v1 documents still parse
/// ([`MIN_SCHEMA_VERSION`]).
pub const SCHEMA_VERSION: u64 = 2;

/// Oldest schema version [`Report::from_json`] still accepts.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// One edge of a witness cycle, in wire form: transactions are
/// `"s<session>.t<index>"` strings (the same spelling the text output
/// uses), `edge` is the provenance label (`so`, `wr`, `co`, `co*`), and
/// `key` carries the interned key index for keyed edges.
#[derive(Clone, PartialEq, Debug)]
pub struct EdgeReport {
    /// Source transaction, `"s<session>.t<index>"`.
    pub from: String,
    /// Target transaction, `"s<session>.t<index>"`.
    pub to: String,
    /// Provenance label: `so`, `wr`, `co`, or `co*` (condensed).
    pub edge: String,
    /// Interned key index for `wr`/`co` edges, absent for `so`/`co*`.
    pub key: Option<u64>,
}

impl EdgeReport {
    fn from_cycle(cycle: &WitnessCycle) -> Vec<EdgeReport> {
        cycle
            .edges
            .iter()
            .map(|e| {
                let (edge, key) = match e.kind {
                    EdgeKind::SessionOrder => ("so", None),
                    EdgeKind::WriteRead(k) => ("wr", Some(u64::from(k.0))),
                    EdgeKind::Inferred(k) => ("co", Some(u64::from(k.0))),
                    EdgeKind::Condensed => ("co*", None),
                };
                EdgeReport {
                    from: e.from.to_string(),
                    to: e.to.to_string(),
                    edge: edge.to_string(),
                    key,
                }
            })
            .collect()
    }
}

/// One violation: its coarse kind, the human-readable message, and — for
/// cycle-shaped violations — the witness cycle with per-edge provenance.
#[derive(Clone, PartialEq, Debug)]
pub struct ViolationReport {
    /// Coarse classification (kebab-case of
    /// [`ViolationKind`](awdit_core::ViolationKind), e.g.
    /// `commit-order-cycle`).
    pub kind: String,
    /// The full human-readable description.
    pub message: String,
    /// The witness cycle, for causality/commit-order cycle violations.
    pub cycle: Option<Vec<EdgeReport>>,
}

impl ViolationReport {
    /// Builds the wire form of one checker violation.
    pub fn from_violation(v: &Violation) -> Self {
        let kind = v.kind().wire_name();
        let cycle = match v {
            Violation::CausalityCycle(c) => Some(EdgeReport::from_cycle(c)),
            Violation::CommitOrderCycle { cycle, .. } => Some(EdgeReport::from_cycle(cycle)),
            _ => None,
        };
        ViolationReport {
            kind: kind.to_string(),
            message: v.to_string(),
            cycle,
        }
    }
}

/// The result of checking one history against one isolation level.
#[derive(Clone, PartialEq, Debug)]
pub struct LevelReport {
    /// Level short name: `rc`, `ra`, or `cc`.
    pub level: String,
    /// `consistent` or `inconsistent`.
    pub verdict: String,
    /// Committed transactions analyzed.
    pub committed_txns: u64,
    /// Total edges of the saturated commit graph.
    pub graph_edges: u64,
    /// Inferred (non-`so ∪ wr`) edges added by saturation.
    pub inferred_edges: u64,
    /// All violations found (empty iff consistent).
    pub violations: Vec<ViolationReport>,
}

impl LevelReport {
    /// Builds the wire form of one check outcome.
    pub fn from_outcome(outcome: &Outcome) -> Self {
        LevelReport {
            level: outcome.level().short_name().to_string(),
            verdict: outcome.verdict().to_string(),
            committed_txns: outcome.stats().committed_txns as u64,
            graph_edges: outcome.stats().graph_edges as u64,
            inferred_edges: outcome.stats().inferred_edges as u64,
            violations: outcome
                .violations()
                .iter()
                .map(ViolationReport::from_violation)
                .collect(),
        }
    }

    /// Whether this level's verdict is `consistent`.
    pub fn is_consistent(&self) -> bool {
        self.verdict == Verdict::Consistent.to_string()
    }
}

/// One aggregated engine phase attributed to a history: how many spans
/// of this phase closed while it was checked, and their total duration.
/// Produced from `awdit_obs::PhaseTiming` snapshots (schema v2+).
#[derive(Clone, PartialEq, Debug)]
pub struct PhaseTimingReport {
    /// Phase (span) name, e.g. `saturate_cc`, `index_rebuild`.
    pub phase: String,
    /// Spans of this phase that closed.
    pub spans: u64,
    /// Total wall-clock duration, milliseconds.
    pub total_ms: f64,
}

impl PhaseTimingReport {
    fn write_json(&self, w: &mut JsonWriter) {
        w.obj(|w| {
            w.field_str("phase", &self.phase);
            w.field_u64("spans", self.spans);
            w.field_f64("total_ms", self.total_ms);
        });
    }

    fn parse(v: &json::Value) -> Result<Self, String> {
        Ok(PhaseTimingReport {
            phase: v.get_str("phase")?,
            spans: v.get_u64("spans")?,
            total_ms: v.get_f64("total_ms")?,
        })
    }
}

/// The engine's usage counters in wire form — the report analog of
/// `awdit_core::EngineStats`, including the arena accounting (schema
/// v2+).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EngineStatsReport {
    /// Histories checked through the engine handle.
    pub histories: u64,
    /// Per-level checks run.
    pub checks: u64,
    /// Checks whose arena footprint grew.
    pub arena_growths: u64,
    /// Current arena heap footprint, bytes.
    pub arena_bytes: u64,
}

impl EngineStatsReport {
    fn write_json(&self, w: &mut JsonWriter) {
        w.obj(|w| {
            w.field_u64("histories", self.histories);
            w.field_u64("checks", self.checks);
            w.field_u64("arena_growths", self.arena_growths);
            w.field_u64("arena_bytes", self.arena_bytes);
        });
    }

    fn parse(v: &json::Value) -> Result<Self, String> {
        Ok(EngineStatsReport {
            histories: v.get_u64("histories")?,
            checks: v.get_u64("checks")?,
            arena_growths: v.get_u64("arena_growths")?,
            arena_bytes: v.get_u64("arena_bytes")?,
        })
    }
}

/// All levels checked for one history, with its shape and timing.
#[derive(Clone, PartialEq, Debug)]
pub struct HistoryReport {
    /// Where the history came from (file path, stream, generator seed).
    pub name: String,
    /// Session count.
    pub sessions: u64,
    /// Transaction count (committed and aborted).
    pub txns: u64,
    /// Operation count.
    pub ops: u64,
    /// Distinct keys.
    pub keys: u64,
    /// Wall-clock check time for this history, milliseconds.
    pub time_ms: f64,
    /// One entry per level checked, in check order (weakest first when
    /// several).
    pub levels: Vec<LevelReport>,
    /// Phase-level profiling for this history (schema v2+). Empty when
    /// the producer ran without an observability recorder; omitted from
    /// the JSON document in that case.
    pub timings: Vec<PhaseTimingReport>,
}

impl HistoryReport {
    /// Builds the wire form for one history's outcomes.
    pub fn new(name: &str, history: &History, outcomes: &[Outcome], time_ms: f64) -> Self {
        let stats = HistoryStats::of(history);
        HistoryReport {
            name: name.to_string(),
            sessions: stats.sessions as u64,
            txns: stats.txns as u64,
            ops: stats.ops as u64,
            keys: stats.keys as u64,
            time_ms,
            levels: outcomes.iter().map(LevelReport::from_outcome).collect(),
            timings: Vec::new(),
        }
    }

    /// Attaches phase-level timings (builder style).
    #[must_use]
    pub fn with_timings(mut self, timings: Vec<PhaseTimingReport>) -> Self {
        self.timings = timings;
        self
    }

    /// Whether every checked level is consistent.
    pub fn is_consistent(&self) -> bool {
        self.levels.iter().all(LevelReport::is_consistent)
    }
}

/// The top-level report document: a batch of history reports plus the
/// schema version.
#[derive(Clone, PartialEq, Debug)]
pub struct Report {
    /// [`SCHEMA_VERSION`] at write time.
    pub schema_version: u64,
    /// One entry per checked history, in input order.
    pub histories: Vec<HistoryReport>,
    /// Engine-wide usage counters over the whole batch (schema v2+);
    /// omitted from the JSON document when absent.
    pub engine: Option<EngineStatsReport>,
}

impl Report {
    /// A report over the given histories, stamped with the current
    /// schema version.
    pub fn new(histories: Vec<HistoryReport>) -> Self {
        Report {
            schema_version: SCHEMA_VERSION,
            histories,
            engine: None,
        }
    }

    /// Attaches engine-wide stats (builder style).
    #[must_use]
    pub fn with_engine(mut self, engine: EngineStatsReport) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Whether **any** history failed any checked level — the CLI's
    /// exit-code-1 condition in multi-file mode.
    pub fn any_inconsistent(&self) -> bool {
        self.histories.iter().any(|h| !h.is_consistent())
    }

    /// Serializes to the versioned JSON document (2-space indented).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_u64("schema_version", self.schema_version);
            w.field_str("tool", "awdit");
            w.field("histories", |w| {
                w.arr(self.histories.iter(), |w, h| h.write_json(w));
            });
            if let Some(engine) = &self.engine {
                w.field("engine", |w| engine.write_json(w));
            }
        });
        w.finish()
    }

    /// Parses a document produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a missing field, or an
    /// unsupported `schema_version`.
    pub fn from_json(text: &str) -> Result<Report, String> {
        let value = json::parse(text)?;
        let schema_version = value.get_u64("schema_version")?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema_version) {
            return Err(format!(
                "unsupported schema_version {schema_version} \
                 (expected {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
            ));
        }
        let histories = value
            .get_arr("histories")?
            .iter()
            .map(HistoryReport::parse)
            .collect::<Result<Vec<_>, _>>()?;
        let engine = match value.get_opt("engine") {
            Some(e) => Some(EngineStatsReport::parse(e)?),
            None => None,
        };
        Ok(Report {
            schema_version,
            histories,
            engine,
        })
    }
}

impl HistoryReport {
    fn write_json(&self, w: &mut JsonWriter) {
        w.obj(|w| {
            w.field_str("name", &self.name);
            w.field_u64("sessions", self.sessions);
            w.field_u64("txns", self.txns);
            w.field_u64("ops", self.ops);
            w.field_u64("keys", self.keys);
            w.field_f64("time_ms", self.time_ms);
            w.field("levels", |w| {
                w.arr(self.levels.iter(), |w, l| l.write_json(w));
            });
            if !self.timings.is_empty() {
                w.field("timings", |w| {
                    w.arr(self.timings.iter(), |w, t| t.write_json(w));
                });
            }
        });
    }

    fn parse(v: &json::Value) -> Result<Self, String> {
        let timings = match v.get_opt("timings") {
            Some(t) => t
                .as_arr()?
                .iter()
                .map(PhaseTimingReport::parse)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        Ok(HistoryReport {
            name: v.get_str("name")?,
            sessions: v.get_u64("sessions")?,
            txns: v.get_u64("txns")?,
            ops: v.get_u64("ops")?,
            keys: v.get_u64("keys")?,
            time_ms: v.get_f64("time_ms")?,
            levels: v
                .get_arr("levels")?
                .iter()
                .map(LevelReport::parse)
                .collect::<Result<Vec<_>, _>>()?,
            timings,
        })
    }
}

impl LevelReport {
    fn write_json(&self, w: &mut JsonWriter) {
        w.obj(|w| {
            w.field_str("level", &self.level);
            w.field_str("verdict", &self.verdict);
            w.field_u64("committed_txns", self.committed_txns);
            w.field_u64("graph_edges", self.graph_edges);
            w.field_u64("inferred_edges", self.inferred_edges);
            w.field("violations", |w| {
                w.arr(self.violations.iter(), |w, v| v.write_json(w));
            });
        });
    }

    fn parse(v: &json::Value) -> Result<Self, String> {
        Ok(LevelReport {
            level: v.get_str("level")?,
            verdict: v.get_str("verdict")?,
            committed_txns: v.get_u64("committed_txns")?,
            graph_edges: v.get_u64("graph_edges")?,
            inferred_edges: v.get_u64("inferred_edges")?,
            violations: v
                .get_arr("violations")?
                .iter()
                .map(ViolationReport::parse)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

impl ViolationReport {
    fn write_json(&self, w: &mut JsonWriter) {
        w.obj(|w| {
            w.field_str("kind", &self.kind);
            w.field_str("message", &self.message);
            if let Some(cycle) = &self.cycle {
                w.field("cycle", |w| {
                    w.arr(cycle.iter(), |w, e| e.write_json(w));
                });
            }
        });
    }

    fn parse(v: &json::Value) -> Result<Self, String> {
        let cycle = match v.get_opt("cycle") {
            Some(c) => Some(
                c.as_arr()?
                    .iter()
                    .map(EdgeReport::parse)
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            None => None,
        };
        Ok(ViolationReport {
            kind: v.get_str("kind")?,
            message: v.get_str("message")?,
            cycle,
        })
    }
}

impl EdgeReport {
    fn write_json(&self, w: &mut JsonWriter) {
        w.obj(|w| {
            w.field_str("from", &self.from);
            w.field_str("to", &self.to);
            w.field_str("edge", &self.edge);
            if let Some(k) = self.key {
                w.field_u64("key", k);
            }
        });
    }

    fn parse(v: &json::Value) -> Result<Self, String> {
        let key = match v.get_opt("key") {
            Some(k) => Some(k.as_u64()?),
            None => None,
        };
        Ok(EdgeReport {
            from: v.get_str("from")?,
            to: v.get_str("to")?,
            edge: v.get_str("edge")?,
            key,
        })
    }
}

/// Where finished reports go: a trait so embedders can fan reports out to
/// files, sockets, or aggregation services; [`JsonSink`] and [`TextSink`]
/// cover the CLI's two modes.
pub trait ReportSink {
    /// Emits one finished report.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the underlying writer.
    fn emit(&mut self, report: &Report) -> std::io::Result<()>;
}

/// Writes the versioned JSON document to the underlying writer.
#[derive(Debug)]
pub struct JsonSink<W: Write>(pub W);

impl<W: Write> ReportSink for JsonSink<W> {
    fn emit(&mut self, report: &Report) -> std::io::Result<()> {
        self.0.write_all(report.to_json().as_bytes())?;
        self.0.write_all(b"\n")
    }
}

/// Renders the human-readable format the `awdit` CLI prints: one block
/// per history with shape, timing, per-level verdicts, and violations.
#[derive(Debug)]
pub struct TextSink<W: Write>(pub W);

impl<W: Write> ReportSink for TextSink<W> {
    fn emit(&mut self, report: &Report) -> std::io::Result<()> {
        let w = &mut self.0;
        for h in &report.histories {
            writeln!(
                w,
                "history:  {} ({} sessions, {} txns, {} ops, {} keys)",
                h.name, h.sessions, h.txns, h.ops, h.keys
            )?;
            if h.levels.len() > 1 {
                let names: Vec<&str> = h.levels.iter().map(|l| l.level.as_str()).collect();
                writeln!(w, "levels:   {} (shared index)", names.join(", "))?;
            }
            writeln!(w, "time:     {:.3} ms", h.time_ms)?;
            for t in &h.timings {
                writeln!(
                    w,
                    "phase:    {:<18} {:>8.3} ms  ({} spans)",
                    t.phase, t.total_ms, t.spans
                )?;
            }
            for l in &h.levels {
                if h.levels.len() > 1 {
                    writeln!(w, "verdict:  {} [{}]", l.verdict, l.level)?;
                } else {
                    writeln!(w, "verdict:  {}", l.verdict)?;
                }
                if !l.violations.is_empty() {
                    writeln!(w, "violations ({} shown):", l.violations.len())?;
                    for v in &l.violations {
                        writeln!(w, "  - {}", v.message)?;
                    }
                }
            }
        }
        if let Some(e) = &report.engine {
            writeln!(
                w,
                "engine:   {} histories, {} checks, {} arena growths, {} arena bytes",
                e.histories, e.checks, e.arena_growths, e.arena_bytes
            )?;
        }
        Ok(())
    }
}

/// Serializes a [`HistoryStats`] to a small standalone JSON object (the
/// `awdit stats --report json` payload): every field of the stats
/// struct under its own name, plus an optional `arena_bytes` entry for
/// the columnar heap footprint of the loaded history.
pub fn history_stats_json(stats: &HistoryStats, arena_bytes: Option<u64>) -> String {
    let mut w = JsonWriter::new();
    w.obj(|w| {
        w.field_u64("sessions", stats.sessions as u64);
        w.field_u64("txns", stats.txns as u64);
        w.field_u64("committed", stats.committed as u64);
        w.field_u64("aborted", stats.aborted as u64);
        w.field_u64("ops", stats.ops as u64);
        w.field_u64("reads", stats.reads as u64);
        w.field_u64("writes", stats.writes as u64);
        w.field_u64("keys", stats.keys as u64);
        w.field_u64("max_txn_size", stats.max_txn_size as u64);
        w.field_u64("internal_reads", stats.internal_reads as u64);
        w.field_u64("thin_air_reads", stats.thin_air_reads as u64);
        if let Some(bytes) = arena_bytes {
            w.field_u64("arena_bytes", bytes);
        }
    });
    w.finish()
}

/// A tiny JSON writer: 2-space indentation, correct string escaping, no
/// dependencies.
struct JsonWriter {
    out: String,
    indent: usize,
    /// Whether the current container already has an entry (comma control).
    has_entry: Vec<bool>,
}

impl JsonWriter {
    fn new() -> Self {
        JsonWriter {
            out: String::new(),
            indent: 0,
            has_entry: Vec::new(),
        }
    }

    fn finish(self) -> String {
        self.out
    }

    fn newline_entry(&mut self) {
        if let Some(has) = self.has_entry.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn obj(&mut self, body: impl FnOnce(&mut Self)) {
        self.out.push('{');
        self.indent += 1;
        self.has_entry.push(false);
        body(self);
        let empty = !self.has_entry.pop().unwrap_or(false);
        self.indent -= 1;
        if !empty {
            self.out.push('\n');
            for _ in 0..self.indent {
                self.out.push_str("  ");
            }
        }
        self.out.push('}');
    }

    fn arr<T>(&mut self, items: impl Iterator<Item = T>, mut each: impl FnMut(&mut Self, T)) {
        self.out.push('[');
        self.indent += 1;
        self.has_entry.push(false);
        for item in items {
            self.newline_entry();
            each(self, item);
        }
        let empty = !self.has_entry.pop().unwrap_or(false);
        self.indent -= 1;
        if !empty {
            self.out.push('\n');
            for _ in 0..self.indent {
                self.out.push_str("  ");
            }
        }
        self.out.push(']');
    }

    fn field(&mut self, name: &str, value: impl FnOnce(&mut Self)) {
        self.newline_entry();
        self.push_string(name);
        self.out.push_str(": ");
        value(self);
    }

    fn field_str(&mut self, name: &str, v: &str) {
        self.field(name, |w| w.push_string(v));
    }

    fn field_u64(&mut self, name: &str, v: u64) {
        self.field(name, |w| w.out.push_str(&v.to_string()));
    }

    fn field_f64(&mut self, name: &str, v: f64) {
        // Rust's shortest-round-trip float formatting: parses back to the
        // identical f64, which is what keeps `from_json ∘ to_json == id`.
        self.field(name, |w| {
            if v.is_finite() {
                w.out.push_str(&format!("{v:?}"))
            } else {
                w.out.push_str("0.0")
            }
        });
    }

    fn push_string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

/// A minimal recursive-descent JSON parser — just enough to read back
/// what [`JsonWriter`] produces (and any equivalent document).
mod json {
    /// A parsed JSON value. Numbers keep their source spelling so integer
    /// precision is never routed through `f64`.
    #[derive(Clone, PartialEq, Debug)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true`/`false`.
        Bool(bool),
        /// A number, by source text.
        Num(String),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, fields in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn get_opt(&self, name: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
                _ => None,
            }
        }

        fn get(&self, name: &str) -> Result<&Value, String> {
            self.get_opt(name)
                .ok_or_else(|| format!("missing field `{name}`"))
        }

        pub fn get_str(&self, name: &str) -> Result<String, String> {
            match self.get(name)? {
                Value::Str(s) => Ok(s.clone()),
                other => Err(format!("field `{name}`: expected string, got {other:?}")),
            }
        }

        pub fn as_u64(&self) -> Result<u64, String> {
            match self {
                Value::Num(n) => n.parse().map_err(|_| format!("bad integer `{n}`")),
                other => Err(format!("expected number, got {other:?}")),
            }
        }

        pub fn as_f64(&self) -> Result<f64, String> {
            match self {
                Value::Num(n) => n.parse().map_err(|_| format!("bad number `{n}`")),
                other => Err(format!("expected number, got {other:?}")),
            }
        }

        pub fn get_u64(&self, name: &str) -> Result<u64, String> {
            self.get(name)?
                .as_u64()
                .map_err(|e| format!("field `{name}`: {e}"))
        }

        pub fn get_f64(&self, name: &str) -> Result<f64, String> {
            self.get(name)?
                .as_f64()
                .map_err(|e| format!("field `{name}`: {e}"))
        }

        pub fn as_arr(&self) -> Result<&[Value], String> {
            match self {
                Value::Arr(items) => Ok(items),
                other => Err(format!("expected array, got {other:?}")),
            }
        }

        pub fn get_arr(&self, name: &str) -> Result<&[Value], String> {
            self.get(name)?
                .as_arr()
                .map_err(|e| format!("field `{name}`: {e}"))
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < bytes.len() && bytes[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {pos}", c as char))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_obj(bytes, pos),
            Some(b'[') => parse_arr(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
            Some(_) => parse_num(bytes, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        if *pos == start {
            return Err(format!("expected value at byte {start}"));
        }
        let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
        // Validate now so `Num` always holds a parseable spelling.
        text.parse::<f64>()
            .map_err(|_| format!("bad number `{text}`"))?;
        Ok(Value::Num(text.to_string()))
    }

    fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
        let hex = bytes
            .get(*pos..*pos + 4)
            .ok_or("truncated \\u escape".to_string())?;
        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
        *pos += 4;
        Ok(code)
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = bytes.get(*pos) else {
                return Err("unterminated string".to_string());
            };
            *pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = bytes.get(*pos) else {
                        return Err("unterminated escape".to_string());
                    };
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = parse_hex4(bytes, pos)?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // High surrogate: a standard ASCII-safe JSON
                                // writer encodes non-BMP chars as a pair.
                                if bytes.get(*pos..*pos + 2) != Some(b"\\u") {
                                    return Err("unpaired high surrogate".to_string());
                                }
                                *pos += 2;
                                let lo = parse_hex4(bytes, pos)?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad \\u escape U+{code:04X}"))?,
                            );
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = *pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = bytes
                        .get(start..end)
                        .ok_or("truncated UTF-8 sequence".to_string())?;
                    let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
                    out.push_str(s);
                    *pos = end;
                }
            }
        }
    }

    fn utf8_len(b: u8) -> usize {
        match b {
            0x00..=0x7f => 1,
            0xc0..=0xdf => 2,
            0xe0..=0xef => 3,
            _ => 4,
        }
    }

    fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let name = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            fields.push((name, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
            }
        }
    }

    fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {pos}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::{check_all_levels, check_with, CheckOptions, HistoryBuilder, IsolationLevel};

    fn violating_history() -> History {
        // Fig. 4b shape: RC-consistent, RA/CC-inconsistent.
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        b.begin(s1);
        b.write(s1, 0, 1);
        b.commit(s1);
        b.begin(s1);
        b.write(s1, 0, 2);
        b.write(s1, 1, 2);
        b.commit(s1);
        b.begin(s2);
        b.read(s2, 0, 1);
        b.read(s2, 1, 2);
        b.commit(s2);
        b.finish().unwrap()
    }

    fn sample_report() -> Report {
        let h = violating_history();
        let outcomes = check_all_levels(&h);
        Report::new(vec![HistoryReport::new(
            "histories/fig4b.awdit",
            &h,
            &outcomes,
            1.25,
        )])
    }

    #[test]
    fn json_round_trips_exactly() {
        let report = sample_report();
        let json = report.to_json();
        let back = Report::from_json(&json).expect("parses");
        assert_eq!(report, back);
        // And a second generation is byte-stable.
        assert_eq!(json, back.to_json());
    }

    #[test]
    fn report_carries_cycles_and_stats() {
        let report = sample_report();
        assert!(report.any_inconsistent());
        let h = &report.histories[0];
        assert_eq!(h.levels.len(), 3);
        assert_eq!(h.levels[0].level, "rc");
        assert!(h.levels[0].is_consistent());
        let ra = &h.levels[1];
        assert_eq!(ra.verdict, "inconsistent");
        assert!(ra.graph_edges > 0);
        let cyclic: Vec<_> = ra.violations.iter().filter(|v| v.cycle.is_some()).collect();
        assert!(!cyclic.is_empty(), "RA violation must carry a cycle");
        let cycle = cyclic[0].cycle.as_ref().unwrap();
        assert!(cycle.len() >= 2);
        assert!(cycle.iter().any(|e| e.edge == "co"));
        assert!(cycle[0].from.starts_with('s'));
    }

    #[test]
    fn consistent_single_level_report() {
        let h = violating_history();
        let out = check_with(&h, IsolationLevel::ReadCommitted, &CheckOptions::default());
        let report = Report::new(vec![HistoryReport::new("one.awdit", &h, &[out], 0.5)]);
        assert!(!report.any_inconsistent());
        let back = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn string_escaping_round_trips() {
        let mut report = sample_report();
        report.histories[0].name = "weird \"name\"\n\twith\\stuff\u{1}and 🦀".to_string();
        let back = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn foreign_ascii_escaped_documents_parse() {
        // A standard ASCII-safe JSON writer (Python's json.dumps default,
        // serde_json with escape_ascii) encodes non-BMP characters as
        // surrogate pairs: the parser must combine them, not corrupt them.
        let mut report = sample_report();
        report.histories[0].name = "crab \u{1f980}".to_string();
        let json = report.to_json().replace('\u{1f980}', "\\ud83e\\udd80");
        let back = Report::from_json(&json).unwrap();
        assert_eq!(back, report);
        // Lone or malformed surrogates are rejected, not silently replaced.
        let lone = report.to_json().replace('\u{1f980}', "\\ud83e");
        assert!(Report::from_json(&lone).is_err());
        let bad_low = report.to_json().replace('\u{1f980}', "\\ud83e\\u0041");
        assert!(Report::from_json(&bad_low).is_err());
    }

    #[test]
    fn schema_version_is_enforced() {
        let json = sample_report()
            .to_json()
            .replace("\"schema_version\": 2", "\"schema_version\": 999");
        assert!(Report::from_json(&json).unwrap_err().contains("schema"));
        assert!(Report::from_json("not json").is_err());
        assert!(Report::from_json("{}").is_err());
    }

    #[test]
    fn v1_documents_still_parse() {
        // A v1 producer writes no `timings`/`engine` blocks; the v2
        // parser must accept the document and default them.
        let json = sample_report()
            .to_json()
            .replace("\"schema_version\": 2", "\"schema_version\": 1");
        let back = Report::from_json(&json).expect("v1 parses");
        assert_eq!(back.schema_version, 1);
        assert!(back.engine.is_none());
        assert!(back.histories.iter().all(|h| h.timings.is_empty()));
        // Version 0 is below the supported floor.
        let too_old = json.replace("\"schema_version\": 1", "\"schema_version\": 0");
        assert!(Report::from_json(&too_old).unwrap_err().contains("schema"));
    }

    #[test]
    fn timings_and_engine_blocks_round_trip() {
        let mut report = sample_report().with_engine(EngineStatsReport {
            histories: 1,
            checks: 3,
            arena_growths: 1,
            arena_bytes: 4096,
        });
        report.histories[0].timings = vec![
            PhaseTimingReport {
                phase: "index_rebuild".to_string(),
                spans: 1,
                total_ms: 0.25,
            },
            PhaseTimingReport {
                phase: "saturate_cc".to_string(),
                spans: 2,
                total_ms: 1.5,
            },
        ];
        let json = report.to_json();
        assert!(json.contains("\"timings\""), "{json}");
        assert!(json.contains("\"engine\""), "{json}");
        let back = Report::from_json(&json).expect("parses");
        assert_eq!(report, back);
        assert_eq!(json, back.to_json());

        let mut text_out = Vec::new();
        TextSink(&mut text_out).emit(&report).unwrap();
        let text = String::from_utf8(text_out).unwrap();
        assert!(text.contains("phase:    saturate_cc"), "{text}");
        assert!(text.contains("engine:   1 histories, 3 checks"), "{text}");
    }

    #[test]
    fn history_stats_serialize_standalone() {
        let stats = HistoryStats::of(&violating_history());
        let json = history_stats_json(&stats, Some(2048));
        let value = json::parse(&json).expect("valid json");
        assert_eq!(value.get_u64("arena_bytes").unwrap(), 2048);
        assert!(!history_stats_json(&stats, None).contains("arena_bytes"));
        assert_eq!(value.get_u64("sessions").unwrap(), stats.sessions as u64);
        assert_eq!(value.get_u64("txns").unwrap(), stats.txns as u64);
        assert_eq!(value.get_u64("ops").unwrap(), stats.ops as u64);
        assert_eq!(value.get_u64("writes").unwrap(), stats.writes as u64);
        assert_eq!(
            value.get_u64("max_txn_size").unwrap(),
            stats.max_txn_size as u64
        );
    }

    #[test]
    fn sinks_render_both_modes() {
        let report = sample_report();
        let mut json_out = Vec::new();
        JsonSink(&mut json_out).emit(&report).unwrap();
        assert!(String::from_utf8(json_out)
            .unwrap()
            .contains("\"schema_version\": 2"));

        let mut text_out = Vec::new();
        TextSink(&mut text_out).emit(&report).unwrap();
        let text = String::from_utf8(text_out).unwrap();
        assert!(text.contains("verdict:  consistent [rc]"), "{text}");
        assert!(text.contains("verdict:  inconsistent [ra]"), "{text}");
        assert!(text.contains("violations"), "{text}");
        assert!(text.contains("shared index"), "{text}");
    }
}
