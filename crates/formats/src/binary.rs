//! The binary columnar history format (`.awb`).
//!
//! An `.awb` file is the CSR [`History`] serialized almost verbatim: the
//! offset tables and op columns the checker works on, little-endian, in
//! length-prefixed sections, so loading is a checksum sweep, a bounds
//! check, and a column copy — no tokenizing, no key interning, no
//! write–read resolution. On unix hosts the loader `mmap`s the file
//! (behind a tiny std-only wrapper) so the page cache is the only copy
//! until the columns land in the recycled arena.
//!
//! # Layout (version 1)
//!
//! ```text
//! magic      8  bytes   "AWBHIST\0"
//! version    u32 LE     1
//! sections   u32 LE     5
//! 5 × section:
//!   tag      u32 LE     1..=5, strictly in order
//!   length   u64 LE     payload bytes
//!   payload  ...        see below
//! checksum   u64 LE     FNV-1a 64 of every preceding byte
//! ```
//!
//! | tag | section | payload |
//! |---|---|---|
//! | 1 | session offsets | `u32` per entry (`k + 1` entries, or none) |
//! | 2 | txn op offsets | `u32` per entry (`t + 1` entries, or none) |
//! | 3 | ops | 28-byte records (below) |
//! | 4 | commit flags | 1 byte per transaction (`0`/`1`) |
//! | 5 | key names | `u64` per interned key |
//!
//! An op record is `kind: u32, key: u32, value: u64, a: u32, b: u32,
//! c: u32` where `kind` 0 is a write, 1 a read from `(session a, txn b,
//! op c)`, 2 an internal read from own op `c`, and 3 a thin-air read;
//! unused fields are written as zero.
//!
//! # Versioning policy
//!
//! The magic never changes. Any layout change bumps `version`; readers
//! reject versions they do not know ([`AwbError::UnsupportedVersion`])
//! rather than guessing. Version 1 readers require exactly the five
//! sections above, in tag order, with nothing after the checksum.
//!
//! # Trust model
//!
//! The checksum catches accidental corruption; structural validation
//! ([`History::from_columns`]) guarantees a decoded history can never
//! panic the accessors, over-read, or index out of bounds, even for an
//! adversarial file with a freshly computed checksum. Cross-op semantic
//! invariants (the unique-value write assumption) are trusted to the
//! encoder, exactly as they are trusted to a text file's producer.

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use awdit_core::{
    replay_history, ColumnsError, History, HistoryColumns, HistorySink, Key, Op, ReadSource, TxnId,
    Value,
};

/// The 8-byte magic opening every `.awb` file.
pub const AWB_MAGIC: [u8; 8] = *b"AWBHIST\0";
/// Current format version.
pub const AWB_VERSION: u32 = 1;
/// Conventional file extension.
pub const AWB_EXTENSION: &str = "awb";

const SECTION_COUNT: u32 = 5;
const OP_RECORD_BYTES: usize = 28;
const HEADER_BYTES: usize = 8 + 4 + 4;
const CHECKSUM_BYTES: usize = 8;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Errors reading an `.awb` file.
#[derive(Debug)]
pub enum AwbError {
    /// The underlying file could not be read.
    Io(std::io::Error),
    /// The input ends before the declared structure does.
    Truncated,
    /// The file does not start with [`AWB_MAGIC`].
    BadMagic,
    /// The file declares a version this reader does not understand.
    UnsupportedVersion(u32),
    /// The trailing checksum does not match the content.
    ChecksumMismatch,
    /// The section structure is malformed (wrong tags, lengths, or
    /// trailing bytes).
    Malformed(String),
    /// The decoded columns violate a [`History`] structural invariant.
    Invalid(ColumnsError),
}

impl std::fmt::Display for AwbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AwbError::Io(e) => write!(f, "cannot read: {e}"),
            AwbError::Truncated => write!(f, "truncated .awb file"),
            AwbError::BadMagic => write!(f, "not an .awb file (bad magic)"),
            AwbError::UnsupportedVersion(v) => write!(f, "unsupported .awb version {v}"),
            AwbError::ChecksumMismatch => write!(f, "checksum mismatch (corrupt .awb file)"),
            AwbError::Malformed(m) => write!(f, "malformed .awb file: {m}"),
            AwbError::Invalid(e) => write!(f, "invalid history columns: {e}"),
        }
    }
}

impl std::error::Error for AwbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AwbError::Io(e) => Some(e),
            AwbError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AwbError {
    fn from(e: std::io::Error) -> Self {
        AwbError::Io(e)
    }
}

impl From<ColumnsError> for AwbError {
    fn from(e: ColumnsError) -> Self {
        AwbError::Invalid(e)
    }
}

/// Returns `true` if `prefix` begins with the `.awb` magic (the sniffing
/// primitive used by [`detect`](crate::detect)).
pub fn sniff_awb(prefix: &[u8]) -> bool {
    prefix.len() >= AWB_MAGIC.len() && prefix[..AWB_MAGIC.len()] == AWB_MAGIC
}

/// A writer shim that folds every byte into a running FNV-1a 64 hash on
/// its way through, so encoding streams in one pass with the checksum
/// ready at the end.
struct HashingWriter<'a, W: ?Sized> {
    inner: &'a mut W,
    hash: u64,
}

impl<W: Write + ?Sized> HashingWriter<'_, W> {
    fn put(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.hash = fnv1a(self.hash, bytes);
        self.inner.write_all(bytes)
    }
}

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Streams `history` out as an `.awb` file (wrap files in a `BufWriter`).
///
/// The encoding is deterministic: equal histories produce byte-identical
/// files.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_awb_to<W: Write + ?Sized>(history: &History, out: &mut W) -> std::io::Result<()> {
    let mut w = HashingWriter {
        inner: out,
        hash: FNV_OFFSET,
    };
    w.put(&AWB_MAGIC)?;
    w.put(&AWB_VERSION.to_le_bytes())?;
    w.put(&SECTION_COUNT.to_le_bytes())?;

    let session_offsets = history.session_offsets();
    w.put(&1u32.to_le_bytes())?;
    w.put(&(session_offsets.len() as u64 * 4).to_le_bytes())?;
    for &v in session_offsets {
        w.put(&v.to_le_bytes())?;
    }

    let txn_offsets = history.txn_op_offsets();
    w.put(&2u32.to_le_bytes())?;
    w.put(&(txn_offsets.len() as u64 * 4).to_le_bytes())?;
    for &v in txn_offsets {
        w.put(&v.to_le_bytes())?;
    }

    let ops = history.flat_ops();
    w.put(&3u32.to_le_bytes())?;
    w.put(&(ops.len() as u64 * OP_RECORD_BYTES as u64).to_le_bytes())?;
    for op in ops {
        w.put(&encode_op(op))?;
    }

    let committed = history.committed_flags();
    w.put(&4u32.to_le_bytes())?;
    w.put(&(committed.len() as u64).to_le_bytes())?;
    for &c in committed {
        w.put(&[u8::from(c)])?;
    }

    let key_names = history.key_names();
    w.put(&5u32.to_le_bytes())?;
    w.put(&(key_names.len() as u64 * 8).to_le_bytes())?;
    for &k in key_names {
        w.put(&k.to_le_bytes())?;
    }

    let checksum = w.hash;
    w.inner.write_all(&checksum.to_le_bytes())
}

/// Serializes `history` as `.awb` bytes.
pub fn write_awb(history: &History) -> Vec<u8> {
    let mut out = Vec::new();
    write_awb_to(history, &mut out).expect("writing to a Vec cannot fail");
    out
}

fn encode_op(op: &Op) -> [u8; OP_RECORD_BYTES] {
    let (kind, a, b, c) = match *op {
        Op::Write { .. } => (0u32, 0u32, 0u32, 0u32),
        Op::Read { source, .. } => match source {
            ReadSource::External { txn, op } => (1, txn.session, txn.index, op),
            ReadSource::Internal { op } => (2, 0, 0, op),
            ReadSource::ThinAir => (3, 0, 0, 0),
        },
    };
    let mut rec = [0u8; OP_RECORD_BYTES];
    rec[0..4].copy_from_slice(&kind.to_le_bytes());
    rec[4..8].copy_from_slice(&op.key().0.to_le_bytes());
    rec[8..16].copy_from_slice(&op.value().0.to_le_bytes());
    rec[16..20].copy_from_slice(&a.to_le_bytes());
    rec[20..24].copy_from_slice(&b.to_le_bytes());
    rec[24..28].copy_from_slice(&c.to_le_bytes());
    rec
}

fn le_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes.try_into().unwrap())
}

fn le_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().unwrap())
}

/// Decodes `.awb` bytes into a caller-owned history arena, recycling its
/// column buffers (capacity kept across loads).
///
/// # Errors
///
/// Returns an [`AwbError`] naming the failure; `arena` is left empty then.
pub fn decode_awb_into(bytes: &[u8], arena: &mut History) -> Result<(), AwbError> {
    let mut cols = arena.recycle_columns();

    if bytes.len() < AWB_MAGIC.len() {
        return Err(if AWB_MAGIC.starts_with(bytes) {
            AwbError::Truncated
        } else {
            AwbError::BadMagic
        });
    }
    if bytes[..AWB_MAGIC.len()] != AWB_MAGIC {
        return Err(AwbError::BadMagic);
    }
    if bytes.len() < HEADER_BYTES {
        return Err(AwbError::Truncated);
    }
    let version = le_u32(&bytes[8..12]);
    if version != AWB_VERSION {
        return Err(AwbError::UnsupportedVersion(version));
    }
    if bytes.len() < HEADER_BYTES + CHECKSUM_BYTES {
        return Err(AwbError::Truncated);
    }
    let body_end = bytes.len() - CHECKSUM_BYTES;
    if fnv1a(FNV_OFFSET, &bytes[..body_end]) != le_u64(&bytes[body_end..]) {
        return Err(AwbError::ChecksumMismatch);
    }

    let section_count = le_u32(&bytes[12..16]);
    if section_count != SECTION_COUNT {
        return Err(AwbError::Malformed(format!(
            "expected {SECTION_COUNT} sections, found {section_count}"
        )));
    }

    let mut cursor = HEADER_BYTES;
    for expected_tag in 1..=SECTION_COUNT {
        if body_end - cursor < 12 {
            return Err(AwbError::Truncated);
        }
        let tag = le_u32(&bytes[cursor..cursor + 4]);
        if tag != expected_tag {
            return Err(AwbError::Malformed(format!(
                "expected section {expected_tag}, found {tag}"
            )));
        }
        let len = le_u64(&bytes[cursor + 4..cursor + 12]);
        cursor += 12;
        if len > (body_end - cursor) as u64 {
            return Err(AwbError::Truncated);
        }
        let payload = &bytes[cursor..cursor + len as usize];
        cursor += len as usize;
        decode_section(tag, payload, &mut cols)?;
    }
    if cursor != body_end {
        return Err(AwbError::Malformed(format!(
            "{} trailing bytes after the last section",
            body_end - cursor
        )));
    }

    *arena = History::from_columns(cols)?;
    Ok(())
}

fn decode_section(tag: u32, payload: &[u8], cols: &mut HistoryColumns) -> Result<(), AwbError> {
    let exact = |width: usize| -> Result<(), AwbError> {
        if !payload.len().is_multiple_of(width) {
            return Err(AwbError::Malformed(format!(
                "section {tag} length {} is not a multiple of {width}",
                payload.len()
            )));
        }
        Ok(())
    };
    match tag {
        1 => {
            exact(4)?;
            cols.session_offsets
                .extend(payload.chunks_exact(4).map(le_u32));
        }
        2 => {
            exact(4)?;
            cols.txn_offsets.extend(payload.chunks_exact(4).map(le_u32));
        }
        3 => {
            exact(OP_RECORD_BYTES)?;
            cols.ops.reserve(payload.len() / OP_RECORD_BYTES);
            for rec in payload.chunks_exact(OP_RECORD_BYTES) {
                cols.ops.push(decode_op(rec)?);
            }
        }
        4 => {
            cols.committed.reserve(payload.len());
            for &b in payload {
                match b {
                    0 => cols.committed.push(false),
                    1 => cols.committed.push(true),
                    other => {
                        return Err(AwbError::Malformed(format!(
                            "commit flag byte {other} is neither 0 nor 1"
                        )))
                    }
                }
            }
        }
        5 => {
            exact(8)?;
            cols.key_names.extend(payload.chunks_exact(8).map(le_u64));
        }
        _ => unreachable!("tags are matched against the expected sequence"),
    }
    Ok(())
}

fn decode_op(rec: &[u8]) -> Result<Op, AwbError> {
    let kind = le_u32(&rec[0..4]);
    let key = Key(le_u32(&rec[4..8]));
    let value = Value(le_u64(&rec[8..16]));
    let (a, b, c) = (
        le_u32(&rec[16..20]),
        le_u32(&rec[20..24]),
        le_u32(&rec[24..28]),
    );
    Ok(match kind {
        0 => Op::Write { key, value },
        1 => Op::Read {
            key,
            value,
            source: ReadSource::External {
                txn: TxnId::new(a, b),
                op: c,
            },
        },
        2 => Op::Read {
            key,
            value,
            source: ReadSource::Internal { op: c },
        },
        3 => Op::Read {
            key,
            value,
            source: ReadSource::ThinAir,
        },
        other => return Err(AwbError::Malformed(format!("unknown op kind {other}"))),
    })
}

/// Decodes `.awb` bytes into any [`HistorySink`]. Sinks that expose a
/// resolved arena ([`HistorySink::load_resolved`]) receive the columns
/// directly; others get the history replayed as events.
///
/// # Errors
///
/// As [`decode_awb_into`].
pub fn decode_awb_into_sink<S: HistorySink + ?Sized>(
    bytes: &[u8],
    sink: &mut S,
) -> Result<(), AwbError> {
    if let Some(arena) = sink.load_resolved() {
        decode_awb_into(bytes, arena)
    } else {
        let mut h = History::default();
        decode_awb_into(bytes, &mut h)?;
        replay_history(&h, sink);
        Ok(())
    }
}

/// Loads an `.awb` file into `sink`, mmap-ing it where the platform
/// supports that and bulk-reading otherwise.
///
/// # Errors
///
/// As [`decode_awb_into`], plus I/O errors opening or reading the file.
pub fn read_awb_path_into<S: HistorySink + ?Sized>(
    path: &Path,
    sink: &mut S,
) -> Result<(), AwbError> {
    let mut file = File::open(path)?;
    let len = file.metadata()?.len();
    #[cfg(any(target_os = "linux", target_os = "macos", target_os = "android"))]
    if len > 0 && usize::try_from(len).is_ok() {
        if let Ok(map) = mmap::Mapping::of(&file, len as usize) {
            return decode_awb_into_sink(map.bytes(), sink);
        }
    }
    let mut buf = Vec::with_capacity(usize::try_from(len).unwrap_or(0));
    file.read_to_end(&mut buf)?;
    decode_awb_into_sink(&buf, sink)
}

/// Parses `.awb` bytes into a fresh history.
///
/// # Errors
///
/// As [`decode_awb_into`].
pub fn parse_awb(bytes: &[u8]) -> Result<History, AwbError> {
    let mut h = History::default();
    decode_awb_into(bytes, &mut h)?;
    Ok(h)
}

/// A read-only private file mapping — the whole `unsafe` surface of the
/// workspace, kept to two syscalls behind a safe slice view. The fallback
/// bulk-read path covers every platform this module is not compiled for.
#[cfg(any(target_os = "linux", target_os = "macos", target_os = "android"))]
#[allow(unsafe_code)]
mod mmap {
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;
    use std::os::raw::{c_int, c_void};

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    /// `MADV_WILLNEED` — same value on Linux, macOS, and Android.
    const MADV_WILLNEED: c_int = 3;
    /// `POSIX_FADV_SEQUENTIAL` (Linux/Android; macOS has no
    /// `posix_fadvise`).
    #[cfg(any(target_os = "linux", target_os = "android"))]
    const POSIX_FADV_SEQUENTIAL: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
        #[cfg(any(target_os = "linux", target_os = "android"))]
        fn posix_fadvise(fd: c_int, offset: i64, len: i64, advice: c_int) -> c_int;
    }

    pub(crate) struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    impl Mapping {
        /// Maps the first `len` bytes of `file` read-only. `len` must be
        /// positive and no larger than the file (a shrunken file would
        /// fault on access).
        pub(crate) fn of(file: &File, len: usize) -> io::Result<Mapping> {
            assert!(len > 0, "cannot map an empty file");
            // SAFETY: a fresh private read-only mapping of a file we hold
            // open; the kernel picks the address. The result is checked
            // against MAP_FAILED before use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            // Readahead hints: the decoder walks the file front to back
            // exactly once, so tell the kernel to start faulting pages in
            // now rather than on first touch. Purely advisory — a failure
            // changes nothing about correctness, so both results are
            // ignored.
            // SAFETY: `ptr..ptr+len` is the live mapping created above;
            // madvise only tunes paging for that region.
            unsafe {
                let _ = madvise(ptr, len, MADV_WILLNEED);
            }
            #[cfg(any(target_os = "linux", target_os = "android"))]
            // SAFETY: plain fd-based advisory syscall on the open file.
            unsafe {
                let _ = posix_fadvise(file.as_raw_fd(), 0, len as i64, POSIX_FADV_SEQUENTIAL);
            }
            Ok(Mapping { ptr, len })
        }

        pub(crate) fn bytes(&self) -> &[u8] {
            // SAFETY: the mapping is live for `self`'s lifetime, `len`
            // bytes long, and read-only (MAP_PRIVATE: no writer can change
            // our view's identity requirements — the underlying pages are
            // ours on first touch).
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: unmapping the exact region returned by mmap.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::HistoryBuilder;

    fn sample() -> History {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        b.begin(s0);
        b.write(s0, 100, 2);
        b.write(s0, 200, 4);
        b.commit(s0);
        b.begin(s1);
        b.read(s1, 100, 2);
        b.read(s1, 200, 4);
        b.write(s1, 100, 9);
        b.read(s1, 100, 9);
        b.read(s1, 300, 77); // thin air
        b.abort(s1);
        b.finish().unwrap()
    }

    #[test]
    fn round_trips_bytes_and_history() {
        let h = sample();
        let bytes = write_awb(&h);
        assert!(sniff_awb(&bytes));
        let h2 = parse_awb(&bytes).unwrap();
        assert_eq!(h2, h);
        // Deterministic encode: re-encoding is byte-identical.
        assert_eq!(write_awb(&h2), bytes);
    }

    #[test]
    fn empty_history_round_trips() {
        let h = History::default();
        let bytes = write_awb(&h);
        assert_eq!(parse_awb(&bytes).unwrap(), h);
    }

    #[test]
    fn decode_recycles_the_arena() {
        let h = sample();
        let bytes = write_awb(&h);
        let mut arena = History::default();
        decode_awb_into(&bytes, &mut arena).unwrap();
        let first_bytes = arena.heap_bytes();
        decode_awb_into(&bytes, &mut arena).unwrap();
        assert_eq!(arena, h);
        assert_eq!(arena.heap_bytes(), first_bytes, "second load must not grow");
    }

    #[test]
    fn file_round_trip_via_mmap_path() {
        let h = sample();
        let dir = std::env::temp_dir().join("awdit_binary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.awb");
        std::fs::write(&path, write_awb(&h)).unwrap();
        let mut b = HistoryBuilder::new();
        read_awb_path_into(&path, &mut b).unwrap();
        assert_eq!(b.finish().unwrap(), h);
        std::fs::remove_file(&path).unwrap();
    }

    /// The hinted mmap load and the plain bulk-read decode must produce
    /// byte-identical histories — madvise/fadvise are advisory only.
    #[test]
    fn mmap_load_matches_bulk_read() {
        let h = sample();
        let bytes = write_awb(&h);
        let dir = std::env::temp_dir().join("awdit_binary_hint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hinted.awb");
        std::fs::write(&path, &bytes).unwrap();

        let mut via_path = HistoryBuilder::new();
        read_awb_path_into(&path, &mut via_path).unwrap();
        let mut via_bytes = HistoryBuilder::new();
        decode_awb_into_sink(&bytes, &mut via_bytes).unwrap();

        let via_path = via_path.finish().unwrap();
        let via_bytes = via_bytes.finish().unwrap();
        assert_eq!(via_path, via_bytes);
        assert_eq!(write_awb(&via_path), write_awb(&via_bytes));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_is_rejected_cleanly() {
        let h = sample();
        let good = write_awb(&h);

        assert!(matches!(parse_awb(b""), Err(AwbError::Truncated)));
        assert!(matches!(parse_awb(b"AWBH"), Err(AwbError::Truncated)));
        assert!(matches!(parse_awb(b"NOTHIST\0"), Err(AwbError::BadMagic)));

        let mut bad = good.clone();
        bad[8] = 9; // version
        assert!(matches!(
            parse_awb(&bad),
            Err(AwbError::UnsupportedVersion(9))
        ));

        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0xff;
        assert!(matches!(parse_awb(&bad), Err(AwbError::ChecksumMismatch)));

        // Truncation at every boundary stays a clean error.
        for cut in [10, HEADER_BYTES, HEADER_BYTES + 5, good.len() - 1] {
            assert!(parse_awb(&good[..cut]).is_err(), "cut at {cut}");
        }
    }
}
