//! Parse errors with source locations.

use std::fmt;

/// An error encountered while parsing a history file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Creates an error at `line` (1-based).
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<awdit_core::BuildError> for ParseError {
    fn from(e: awdit_core::BuildError) -> Self {
        ParseError::new(0, format!("invalid history: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ParseError::new(7, "unexpected token");
        assert_eq!(e.to_string(), "line 7: unexpected token");
    }
}
