//! A Cobra-style history format (a text rendition of Cobra's per-session
//! operation logs, Tan et al. OSDI 2020).
//!
//! Record-per-line with single-letter tags, sessions interleaved freely:
//!
//! ```text
//! cobra-log
//! T 0            # begin a transaction on session 0
//! W 0 100 2      # session 0 writes key 100 := 2
//! R 0 200 4      # session 0 reads key 200 -> 4
//! C 0            # session 0 commits
//! A 1            # session 1 aborts its open transaction
//! ```

use awdit_core::{History, HistoryBuilder, Op};

use crate::error::ParseError;

/// The first line of every Cobra-style file.
pub const COBRA_HEADER: &str = "cobra-log";

/// Serializes a history in the Cobra style (sessions emitted in order,
/// transactions not interleaved — any interleaving parses back to the same
/// history, since session order alone matters).
pub fn write_cobra(history: &History) -> String {
    let mut out = String::with_capacity(history.size() * 12 + 64);
    out.push_str(COBRA_HEADER);
    out.push('\n');
    for (sid, txns) in history.sessions() {
        for t in txns {
            out.push_str(&format!("T {}\n", sid.0));
            for op in t.ops() {
                match *op {
                    Op::Write { key, value } => out.push_str(&format!(
                        "W {} {} {}\n",
                        sid.0,
                        history.key_name(key),
                        value.0
                    )),
                    Op::Read { key, value, .. } => out.push_str(&format!(
                        "R {} {} {}\n",
                        sid.0,
                        history.key_name(key),
                        value.0
                    )),
                }
            }
            out.push_str(&format!(
                "{} {}\n",
                if t.is_committed() { "C" } else { "A" },
                sid.0
            ));
        }
    }
    out
}

/// Parses a Cobra-style history.
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed records or transactions left
/// open at end of file.
pub fn parse_cobra(text: &str) -> Result<History, ParseError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == COBRA_HEADER => {}
        _ => {
            return Err(ParseError::new(
                1,
                format!("expected header `{COBRA_HEADER}`"),
            ))
        }
    }
    let mut b = HistoryBuilder::new();
    let mut max_session = 0usize;
    for (i, raw) in lines {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let err = |msg: &str| ParseError::new(lineno, format!("{msg}: `{line}`"));
        let session: usize = parts
            .get(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("missing session id"))?;
        max_session = max_session.max(session);
        let ids = b.sessions(session + 1);
        let sid = ids[session];
        match parts[0] {
            "T" => {
                if parts.len() != 2 {
                    return Err(err("malformed begin record"));
                }
                b.begin(sid);
            }
            "C" => {
                if parts.len() != 2 {
                    return Err(err("malformed commit record"));
                }
                b.commit(sid);
            }
            "A" => {
                if parts.len() != 2 {
                    return Err(err("malformed abort record"));
                }
                b.abort(sid);
            }
            "W" | "R" => {
                if parts.len() != 4 {
                    return Err(err("malformed operation record"));
                }
                let key: u64 = parts[2].parse().map_err(|_| err("bad key"))?;
                let value: u64 = parts[3].parse().map_err(|_| err("bad value"))?;
                if parts[0] == "W" {
                    b.write(sid, key, value);
                } else {
                    b.read(sid, key, value);
                }
            }
            other => return Err(ParseError::new(lineno, format!("unknown record `{other}`"))),
        }
    }
    b.finish().map_err(ParseError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::HistoryStats;

    fn sample() -> History {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        b.begin(s0);
        b.write(s0, 100, 2);
        b.commit(s0);
        b.begin(s1);
        b.read(s1, 100, 2);
        b.abort(s1);
        b.finish().unwrap()
    }

    #[test]
    fn round_trip() {
        let h = sample();
        let text = write_cobra(&h);
        let h2 = parse_cobra(&text).unwrap();
        assert_eq!(HistoryStats::of(&h), HistoryStats::of(&h2));
        assert_eq!(write_cobra(&h2), text);
    }

    #[test]
    fn interleaved_sessions_parse() {
        let text = "cobra-log\nT 0\nT 1\nW 0 1 1\nR 1 1 1\nC 0\nC 1\n";
        let h = parse_cobra(text).unwrap();
        assert_eq!(h.num_sessions(), 2);
        assert_eq!(h.num_txns(), 2);
    }

    #[test]
    fn unclosed_transaction_is_an_error() {
        let text = "cobra-log\nT 0\nW 0 1 1\n";
        assert!(parse_cobra(text).is_err());
    }

    #[test]
    fn op_outside_transaction_is_an_error() {
        let text = "cobra-log\nW 0 1 1\n";
        assert!(parse_cobra(text).is_err());
    }

    #[test]
    fn unknown_records_rejected() {
        let text = "cobra-log\nX 0\n";
        let err = parse_cobra(text).unwrap_err();
        assert!(err.message.contains("unknown record"));
    }
}
