//! A Cobra-style history format (a text rendition of Cobra's per-session
//! operation logs, Tan et al. OSDI 2020).
//!
//! Record-per-line with single-letter tags, sessions interleaved freely:
//!
//! ```text
//! cobra-log
//! T 0            # begin a transaction on session 0
//! W 0 100 2      # session 0 writes key 100 := 2
//! R 0 200 4      # session 0 reads key 200 -> 4
//! C 0            # session 0 commits
//! A 1            # session 1 aborts its open transaction
//! ```

use std::io::{BufRead, Write};

use awdit_core::{History, HistoryBuilder, HistorySink, Op, SessionId};

use crate::error::ParseError;
use crate::reader::LineReader;

/// The first line of every Cobra-style file.
pub const COBRA_HEADER: &str = "cobra-log";

/// Streams `history` out in the Cobra style (sessions emitted in order,
/// transactions not interleaved — any interleaving parses back to the same
/// history, since session order alone matters).
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_cobra_to<W: Write + ?Sized>(history: &History, out: &mut W) -> std::io::Result<()> {
    out.write_all(COBRA_HEADER.as_bytes())?;
    out.write_all(b"\n")?;
    for (sid, txns) in history.sessions() {
        for t in txns.iter() {
            writeln!(out, "T {}", sid.0)?;
            for op in t.ops() {
                match *op {
                    Op::Write { key, value } => {
                        writeln!(out, "W {} {} {}", sid.0, history.key_name(key), value.0)?;
                    }
                    Op::Read { key, value, .. } => {
                        writeln!(out, "R {} {} {}", sid.0, history.key_name(key), value.0)?;
                    }
                }
            }
            writeln!(
                out,
                "{} {}",
                if t.is_committed() { "C" } else { "A" },
                sid.0
            )?;
        }
    }
    Ok(())
}

/// Serializes a history in the Cobra style.
pub fn write_cobra(history: &History) -> String {
    let mut out = Vec::with_capacity(history.size() * 12 + 64);
    write_cobra_to(history, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("cobra format is ASCII")
}

/// Incrementally reads a Cobra-style history from `input`, emitting events
/// into `sink` as records are consumed.
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed records or I/O failure; the
/// sink may hold a partial history by then. (Transactions left open at
/// end of file surface when the sink is finished.)
pub fn read_cobra<R: BufRead, S: HistorySink + ?Sized>(
    input: R,
    sink: &mut S,
) -> Result<(), ParseError> {
    read_cobra_lines(&mut LineReader::new(input), sink)
}

pub(crate) fn read_cobra_lines<R: BufRead, S: HistorySink + ?Sized>(
    lines: &mut LineReader<R>,
    sink: &mut S,
) -> Result<(), ParseError> {
    crate::reader::expect_header(lines, COBRA_HEADER)?;
    while let Some((raw, lineno)) = lines.next_line()? {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap_or("");
        let err = |msg: &str| ParseError::new(lineno, format!("{msg}: `{line}`"));
        let session: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("missing session id"))?;
        sink.ensure_sessions(session + 1);
        let sid = SessionId(session as u32);
        match tag {
            "T" | "C" | "A" => {
                if parts.next().is_some() {
                    return Err(err(match tag {
                        "T" => "malformed begin record",
                        "C" => "malformed commit record",
                        _ => "malformed abort record",
                    }));
                }
                match tag {
                    "T" => sink.begin(sid),
                    "C" => sink.commit(sid),
                    _ => sink.abort(sid),
                }
            }
            "W" | "R" => {
                let key: Option<u64> = parts.next().and_then(|s| s.parse().ok());
                let value: Option<u64> = parts.next().and_then(|s| s.parse().ok());
                if parts.next().is_some() || key.is_none() || value.is_none() {
                    return Err(err("malformed operation record"));
                }
                if tag == "W" {
                    sink.write(sid, key.unwrap(), value.unwrap());
                } else {
                    sink.read(sid, key.unwrap(), value.unwrap());
                }
            }
            other => return Err(ParseError::new(lineno, format!("unknown record `{other}`"))),
        }
    }
    Ok(())
}

/// Parses a Cobra-style history.
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed records or transactions left
/// open at end of file.
pub fn parse_cobra(text: &str) -> Result<History, ParseError> {
    let mut b = HistoryBuilder::new();
    read_cobra(text.as_bytes(), &mut b)?;
    b.finish().map_err(ParseError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::HistoryStats;

    fn sample() -> History {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        b.begin(s0);
        b.write(s0, 100, 2);
        b.commit(s0);
        b.begin(s1);
        b.read(s1, 100, 2);
        b.abort(s1);
        b.finish().unwrap()
    }

    #[test]
    fn round_trip() {
        let h = sample();
        let text = write_cobra(&h);
        let h2 = parse_cobra(&text).unwrap();
        assert_eq!(HistoryStats::of(&h), HistoryStats::of(&h2));
        assert_eq!(write_cobra(&h2), text);
        assert_eq!(h2, h);
    }

    #[test]
    fn interleaved_sessions_parse() {
        let text = "cobra-log\nT 0\nT 1\nW 0 1 1\nR 1 1 1\nC 0\nC 1\n";
        let h = parse_cobra(text).unwrap();
        assert_eq!(h.num_sessions(), 2);
        assert_eq!(h.num_txns(), 2);
    }

    #[test]
    fn unclosed_transaction_is_an_error() {
        let text = "cobra-log\nT 0\nW 0 1 1\n";
        assert!(parse_cobra(text).is_err());
    }

    #[test]
    fn op_outside_transaction_is_an_error() {
        let text = "cobra-log\nW 0 1 1\n";
        assert!(parse_cobra(text).is_err());
    }

    #[test]
    fn unknown_records_rejected() {
        let text = "cobra-log\nX 0\n";
        let err = parse_cobra(text).unwrap_err();
        assert!(err.message.contains("unknown record"));
    }
}
