//! Parameterized uniform workloads: the "custom benchmark from the Cobra
//! framework" the paper uses for its transaction-size scaling experiment
//! (Fig. 9 right), plus a plain uniform read/write mix.

use awdit_simdb::{OpSpec, TxnSource, TxnSpec};
use rand::rngs::SmallRng;
use rand::Rng;

/// A uniform random workload with a fixed transaction size — scaling the
/// size while holding `txn_size × num_txns` constant reproduces the paper's
/// Fig. 9 (right).
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct Uniform {
    /// Distinct keys.
    pub keys: u64,
    /// Operations per transaction.
    pub txn_size: usize,
    /// Probability that an operation is a read (the rest are writes).
    pub read_ratio: f64,
}

impl Uniform {
    /// A uniform workload over `keys` keys with `txn_size` ops per
    /// transaction and the given read ratio.
    pub fn new(keys: u64, txn_size: usize, read_ratio: f64) -> Self {
        Uniform {
            keys,
            txn_size,
            read_ratio,
        }
    }
}

impl Default for Uniform {
    fn default() -> Self {
        Uniform::new(100, 8, 0.5)
    }
}

impl TxnSource for Uniform {
    fn next_txn(&mut self, _session: usize, rng: &mut SmallRng) -> TxnSpec {
        let mut ops = Vec::with_capacity(self.txn_size);
        for _ in 0..self.txn_size {
            let key = rng.gen_range(0..self.keys);
            if rng.gen_bool(self.read_ratio.clamp(0.0, 1.0)) {
                ops.push(OpSpec::Read(key));
            } else {
                ops.push(OpSpec::Write(key));
            }
        }
        TxnSpec::new(ops)
    }

    fn preload_keys(&self) -> Vec<u64> {
        (0..self.keys).collect()
    }
}

/// A read-mostly variant whose transactions vary in size between `min` and
/// `max` ops, for workloads where bounded-but-varied transactions matter.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct VariedSize {
    /// Distinct keys.
    pub keys: u64,
    /// Minimum ops per transaction.
    pub min_size: usize,
    /// Maximum ops per transaction.
    pub max_size: usize,
    /// Probability that an operation is a read.
    pub read_ratio: f64,
}

impl VariedSize {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `min_size > max_size` or `min_size == 0`.
    pub fn new(keys: u64, min_size: usize, max_size: usize, read_ratio: f64) -> Self {
        assert!(min_size > 0 && min_size <= max_size);
        VariedSize {
            keys,
            min_size,
            max_size,
            read_ratio,
        }
    }
}

impl TxnSource for VariedSize {
    fn next_txn(&mut self, _session: usize, rng: &mut SmallRng) -> TxnSpec {
        let size = rng.gen_range(self.min_size..=self.max_size);
        let mut ops = Vec::with_capacity(size);
        for _ in 0..size {
            let key = rng.gen_range(0..self.keys);
            if rng.gen_bool(self.read_ratio.clamp(0.0, 1.0)) {
                ops.push(OpSpec::Read(key));
            } else {
                ops.push(OpSpec::Write(key));
            }
        }
        TxnSpec::new(ops)
    }

    fn preload_keys(&self) -> Vec<u64> {
        (0..self.keys).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::{check, HistoryStats, IsolationLevel};
    use awdit_simdb::{collect_history, DbIsolation, SimConfig};
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_txn_size() {
        let mut w = Uniform::new(10, 5, 0.5);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..50 {
            assert_eq!(w.next_txn(0, &mut rng).len(), 5);
        }
    }

    #[test]
    fn varied_size_stays_in_bounds() {
        let mut w = VariedSize::new(10, 2, 9, 0.5);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let n = w.next_txn(0, &mut rng).len();
            assert!((2..=9).contains(&n));
        }
    }

    #[test]
    fn read_ratio_is_respected() {
        let mut w = Uniform::new(10, 10, 0.8);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut reads = 0;
        let mut total = 0;
        for _ in 0..200 {
            for op in w.next_txn(0, &mut rng).ops {
                total += 1;
                if op.is_read() {
                    reads += 1;
                }
            }
        }
        let ratio = reads as f64 / total as f64;
        assert!((0.7..0.9).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn uniform_history_checks_out() {
        let mut w = Uniform::new(50, 6, 0.6);
        let cfg = SimConfig::new(DbIsolation::Causal, 4, 3);
        let h = collect_history(cfg, &mut w, 200).unwrap();
        let stats = HistoryStats::of(&h);
        assert_eq!(stats.sessions, 4);
        assert!(check(&h, IsolationLevel::Causal).is_consistent());
    }
}
