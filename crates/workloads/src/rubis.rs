//! A RUBiS-style auction-site workload (modeled after eBay, like the
//! benchmark the paper uses).
//!
//! Browse-heavy mix over users and auction items: browsing reads item and
//! seller rows; bidding reads the item then writes a bid row and the item's
//! current-price row; buy-now closes an item; comments write to the
//! seller's wall.

use awdit_simdb::{OpSpec, TxnSource, TxnSpec};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::zipf::Zipf;

const TABLE_USER: u64 = 1;
const TABLE_ITEM: u64 = 2;
const TABLE_BID: u64 = 3;
const TABLE_COMMENT: u64 = 4;

fn user_key(u: u64) -> u64 {
    (TABLE_USER << 56) | u
}

fn item_key(i: u64) -> u64 {
    (TABLE_ITEM << 56) | i
}

fn bid_key(item: u64, slot: u64) -> u64 {
    (TABLE_BID << 56) | (item << 8) | (slot & 0xff)
}

fn comment_key(user: u64, slot: u64) -> u64 {
    (TABLE_COMMENT << 56) | (user << 8) | (slot & 0xff)
}

/// Configuration for the RUBiS-style workload.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct RubisConfig {
    /// Registered users.
    pub users: u64,
    /// Auction items.
    pub items: u64,
    /// Zipf exponent for item popularity.
    pub skew: f64,
}

impl Default for RubisConfig {
    fn default() -> Self {
        RubisConfig {
            users: 200,
            items: 400,
            skew: 0.9,
        }
    }
}

/// The RUBiS-style transaction generator.
#[derive(Clone, Debug)]
pub struct Rubis {
    config: RubisConfig,
    item_pop: Zipf,
    bid_count: u64,
}

impl Rubis {
    /// Creates the workload with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.items == 0`.
    pub fn new(config: RubisConfig) -> Self {
        Rubis {
            item_pop: Zipf::new(config.items as usize, config.skew),
            config,
            bid_count: 0,
        }
    }

    fn pick_item(&self, rng: &mut SmallRng) -> u64 {
        self.item_pop.sample(rng) as u64
    }

    fn pick_user(&self, rng: &mut SmallRng) -> u64 {
        rng.gen_range(0..self.config.users)
    }

    fn browse(&self, rng: &mut SmallRng) -> TxnSpec {
        let mut ops = Vec::new();
        for _ in 0..rng.gen_range(2..6) {
            let item = self.pick_item(rng);
            ops.push(OpSpec::Read(item_key(item)));
        }
        // Also view a seller profile.
        ops.push(OpSpec::Read(user_key(self.pick_user(rng))));
        TxnSpec::new(ops)
    }

    fn bid(&mut self, rng: &mut SmallRng) -> TxnSpec {
        let item = self.pick_item(rng);
        let bidder = self.pick_user(rng);
        let slot = self.bid_count;
        self.bid_count += 1;
        TxnSpec::new(vec![
            OpSpec::Read(item_key(item)),
            OpSpec::Read(user_key(bidder)),
            OpSpec::Write(bid_key(item, slot)),
            OpSpec::Write(item_key(item)), // update current price
        ])
    }

    fn buy_now(&self, rng: &mut SmallRng) -> TxnSpec {
        let item = self.pick_item(rng);
        let buyer = self.pick_user(rng);
        TxnSpec::new(vec![
            OpSpec::Read(item_key(item)),
            OpSpec::Write(item_key(item)), // mark sold
            OpSpec::Write(user_key(buyer)),
        ])
    }

    fn comment(&mut self, rng: &mut SmallRng) -> TxnSpec {
        let target = self.pick_user(rng);
        let slot = self.bid_count; // reuse the counter for unique slots
        self.bid_count += 1;
        TxnSpec::new(vec![
            OpSpec::Read(user_key(target)),
            OpSpec::Write(comment_key(target, slot)),
            OpSpec::Write(user_key(target)), // bump rating
        ])
    }

    fn register_item(&self, rng: &mut SmallRng) -> TxnSpec {
        let seller = self.pick_user(rng);
        let item = self.pick_item(rng);
        TxnSpec::new(vec![
            OpSpec::Read(user_key(seller)),
            OpSpec::Write(item_key(item)),
        ])
    }
}

impl TxnSource for Rubis {
    fn next_txn(&mut self, _session: usize, rng: &mut SmallRng) -> TxnSpec {
        let roll = rng.gen_range(0..100u32);
        match roll {
            0..=49 => self.browse(rng),
            50..=74 => self.bid(rng),
            75..=84 => self.buy_now(rng),
            85..=94 => self.comment(rng),
            _ => self.register_item(rng),
        }
    }

    fn preload_keys(&self) -> Vec<u64> {
        let mut keys = Vec::new();
        for u in 0..self.config.users {
            keys.push(user_key(u));
        }
        for i in 0..self.config.items {
            keys.push(item_key(i));
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::{check, IsolationLevel};
    use awdit_simdb::{collect_history, DbIsolation, SimConfig};
    use rand::SeedableRng;

    #[test]
    fn browse_dominates() {
        let mut w = Rubis::new(RubisConfig::default());
        let mut rng = SmallRng::seed_from_u64(2);
        let mut read_only = 0;
        let n = 1000;
        for i in 0..n {
            let t = w.next_txn(i % 4, &mut rng);
            if t.ops.iter().all(|o| o.is_read()) {
                read_only += 1;
            }
        }
        assert!(
            (350..650).contains(&read_only),
            "browse mix off: {read_only}/{n}"
        );
    }

    #[test]
    fn read_atomic_rubis_history_is_ra_consistent() {
        let mut w = Rubis::new(RubisConfig::default());
        let cfg = SimConfig::new(DbIsolation::ReadAtomic, 8, 77);
        let h = collect_history(cfg, &mut w, 400).unwrap();
        assert!(check(&h, IsolationLevel::ReadAtomic).is_consistent());
        assert!(check(&h, IsolationLevel::ReadCommitted).is_consistent());
    }

    #[test]
    fn bids_use_unique_slots() {
        let mut w = Rubis::new(RubisConfig::default());
        let mut rng = SmallRng::seed_from_u64(4);
        let a = w.bid(&mut rng);
        let b = w.bid(&mut rng);
        let slot = |t: &TxnSpec| {
            t.ops
                .iter()
                .find_map(|o| match o {
                    OpSpec::Write(k) if k >> 56 == TABLE_BID => Some(*k),
                    _ => None,
                })
                .unwrap()
        };
        assert_ne!(slot(&a), slot(&b));
    }
}
