//! A small Zipf-distributed sampler (inverse-CDF table), used by the
//! social-network and auction workloads to produce realistic key skew.

use rand::rngs::SmallRng;
use rand::Rng;

/// Samples `0..n` with probability proportional to `1 / (i + 1)^s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the domain has a single rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn skews_toward_low_ranks() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[99] * 5);
        // All samples in range (no panic) and rank 0 frequent.
        assert!(counts[0] > 1000);
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn single_rank_domain() {
        let z = Zipf::new(1, 1.5);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }
}
