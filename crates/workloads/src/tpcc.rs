//! A TPC-C-style OLTP workload (order processing).
//!
//! Follows the shape of the TPC-C benchmark the paper uses: five
//! transaction profiles (New-Order 45%, Payment 43%, Order-Status 4%,
//! Delivery 4%, Stock-Level 4%) over warehouse / district / customer /
//! stock / order rows, with the standard access skew (a home warehouse per
//! session, occasional remote accesses). Row ids are packed into `u64` keys
//! with a table tag in the top byte.

use awdit_simdb::{OpSpec, TxnSource, TxnSpec};
use rand::rngs::SmallRng;
use rand::Rng;

const TABLE_WAREHOUSE: u64 = 1;
const TABLE_DISTRICT: u64 = 2;
const TABLE_CUSTOMER: u64 = 3;
const TABLE_STOCK: u64 = 4;
const TABLE_ORDER: u64 = 5;
const TABLE_NEW_ORDER: u64 = 6;

fn key(table: u64, id: u64) -> u64 {
    (table << 56) | id
}

/// Configuration for the TPC-C-style workload.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TpccConfig {
    /// Number of warehouses (TPC-C's scale factor).
    pub warehouses: u64,
    /// Districts per warehouse (10 in the spec).
    pub districts_per_warehouse: u64,
    /// Customers per district (scaled down from the spec's 3000).
    pub customers_per_district: u64,
    /// Item/stock rows per warehouse (scaled down from the spec's 100k).
    pub items: u64,
    /// Max order lines per New-Order transaction (spec: 5–15).
    pub max_order_lines: u64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 4,
            districts_per_warehouse: 10,
            customers_per_district: 30,
            items: 200,
            max_order_lines: 10,
        }
    }
}

/// The TPC-C-style transaction generator.
#[derive(Clone, Debug)]
pub struct Tpcc {
    config: TpccConfig,
    next_order_id: u64,
}

impl Tpcc {
    /// Creates the workload with the given configuration.
    pub fn new(config: TpccConfig) -> Self {
        Tpcc {
            config,
            next_order_id: 0,
        }
    }

    fn home_warehouse(&self, session: usize) -> u64 {
        session as u64 % self.config.warehouses
    }

    fn pick_district(&self, rng: &mut SmallRng, w: u64) -> u64 {
        w * self.config.districts_per_warehouse
            + rng.gen_range(0..self.config.districts_per_warehouse)
    }

    fn pick_customer(&self, rng: &mut SmallRng, d: u64) -> u64 {
        d * self.config.customers_per_district
            + rng.gen_range(0..self.config.customers_per_district)
    }

    fn new_order(&mut self, rng: &mut SmallRng, session: usize) -> TxnSpec {
        let c = &self.config;
        let w = self.home_warehouse(session);
        let d = self.pick_district(rng, w);
        let cust = self.pick_customer(rng, d);
        let mut ops = vec![
            OpSpec::Read(key(TABLE_WAREHOUSE, w)),
            OpSpec::Read(key(TABLE_DISTRICT, d)),
            OpSpec::Write(key(TABLE_DISTRICT, d)), // bump next-order id
            OpSpec::Read(key(TABLE_CUSTOMER, cust)),
        ];
        let order = self.next_order_id;
        self.next_order_id += 1;
        ops.push(OpSpec::Write(key(TABLE_ORDER, order)));
        ops.push(OpSpec::Write(key(TABLE_NEW_ORDER, order)));
        let lines = rng.gen_range(1..=c.max_order_lines);
        for _ in 0..lines {
            // 1% of order lines hit a remote warehouse (spec behaviour).
            let sw = if c.warehouses > 1 && rng.gen_bool(0.01) {
                rng.gen_range(0..c.warehouses)
            } else {
                w
            };
            let item = rng.gen_range(0..c.items);
            let stock = key(TABLE_STOCK, sw * c.items + item);
            ops.push(OpSpec::Read(stock));
            ops.push(OpSpec::Write(stock));
        }
        TxnSpec::new(ops)
    }

    fn payment(&mut self, rng: &mut SmallRng, session: usize) -> TxnSpec {
        let w = self.home_warehouse(session);
        let d = self.pick_district(rng, w);
        // 15% remote customers (spec behaviour).
        let cd = if self.config.warehouses > 1 && rng.gen_bool(0.15) {
            let remote = rng.gen_range(0..self.config.warehouses);
            self.pick_district(rng, remote)
        } else {
            d
        };
        let cust = self.pick_customer(rng, cd);
        TxnSpec::new(vec![
            OpSpec::Read(key(TABLE_WAREHOUSE, w)),
            OpSpec::Write(key(TABLE_WAREHOUSE, w)),
            OpSpec::Read(key(TABLE_DISTRICT, d)),
            OpSpec::Write(key(TABLE_DISTRICT, d)),
            OpSpec::Read(key(TABLE_CUSTOMER, cust)),
            OpSpec::Write(key(TABLE_CUSTOMER, cust)),
        ])
    }

    fn order_status(&mut self, rng: &mut SmallRng, session: usize) -> TxnSpec {
        let w = self.home_warehouse(session);
        let d = self.pick_district(rng, w);
        let cust = self.pick_customer(rng, d);
        let mut ops = vec![OpSpec::Read(key(TABLE_CUSTOMER, cust))];
        if self.next_order_id > 0 {
            let order = rng.gen_range(0..self.next_order_id);
            ops.push(OpSpec::Read(key(TABLE_ORDER, order)));
        }
        TxnSpec::new(ops)
    }

    fn delivery(&mut self, rng: &mut SmallRng, session: usize) -> TxnSpec {
        let w = self.home_warehouse(session);
        let mut ops = Vec::new();
        // Deliver up to one pending order per district (scaled down from 10).
        for _ in 0..3 {
            if self.next_order_id == 0 {
                break;
            }
            let order = rng.gen_range(0..self.next_order_id);
            ops.push(OpSpec::Read(key(TABLE_NEW_ORDER, order)));
            ops.push(OpSpec::Write(key(TABLE_ORDER, order)));
            let d = self.pick_district(rng, w);
            let cust = self.pick_customer(rng, d);
            ops.push(OpSpec::Write(key(TABLE_CUSTOMER, cust)));
        }
        if ops.is_empty() {
            ops.push(OpSpec::Read(key(TABLE_WAREHOUSE, w)));
        }
        TxnSpec::new(ops)
    }

    fn stock_level(&mut self, rng: &mut SmallRng, session: usize) -> TxnSpec {
        let c = &self.config;
        let w = self.home_warehouse(session);
        let d = self.pick_district(rng, w);
        let mut ops = vec![OpSpec::Read(key(TABLE_DISTRICT, d))];
        for _ in 0..8 {
            let item = rng.gen_range(0..c.items);
            ops.push(OpSpec::Read(key(TABLE_STOCK, w * c.items + item)));
        }
        TxnSpec::new(ops)
    }
}

impl TxnSource for Tpcc {
    fn next_txn(&mut self, session: usize, rng: &mut SmallRng) -> TxnSpec {
        let roll = rng.gen_range(0..100u32);
        match roll {
            0..=44 => self.new_order(rng, session),
            45..=87 => self.payment(rng, session),
            88..=91 => self.order_status(rng, session),
            92..=95 => self.delivery(rng, session),
            _ => self.stock_level(rng, session),
        }
    }

    fn preload_keys(&self) -> Vec<u64> {
        let c = &self.config;
        let mut keys = Vec::new();
        for w in 0..c.warehouses {
            keys.push(key(TABLE_WAREHOUSE, w));
            for d in 0..c.districts_per_warehouse {
                let district = w * c.districts_per_warehouse + d;
                keys.push(key(TABLE_DISTRICT, district));
                for cu in 0..c.customers_per_district {
                    keys.push(key(
                        TABLE_CUSTOMER,
                        district * c.customers_per_district + cu,
                    ));
                }
            }
            for i in 0..c.items {
                keys.push(key(TABLE_STOCK, w * c.items + i));
            }
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::{check, HistoryStats, IsolationLevel};
    use awdit_simdb::{collect_history, DbIsolation, SimConfig};
    use rand::SeedableRng;

    #[test]
    fn generates_all_profiles() {
        let mut w = Tpcc::new(TpccConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sizes = std::collections::HashSet::new();
        for i in 0..200 {
            let t = w.next_txn(i % 4, &mut rng);
            assert!(!t.is_empty());
            sizes.insert(t.len());
        }
        assert!(sizes.len() >= 3, "expected varied transaction profiles");
    }

    #[test]
    fn serializable_tpcc_history_is_consistent() {
        let mut w = Tpcc::new(TpccConfig::default());
        let cfg = SimConfig::new(DbIsolation::Serializable, 8, 42);
        let h = collect_history(cfg, &mut w, 300).unwrap();
        let stats = HistoryStats::of(&h);
        assert!(stats.ops > 1000);
        for level in IsolationLevel::ALL {
            assert!(check(&h, level).is_consistent());
        }
    }

    #[test]
    fn preload_covers_tables() {
        let w = Tpcc::new(TpccConfig::default());
        let keys = w.preload_keys();
        assert!(keys.iter().any(|&k| k >> 56 == TABLE_WAREHOUSE));
        assert!(keys.iter().any(|&k| k >> 56 == TABLE_DISTRICT));
        assert!(keys.iter().any(|&k| k >> 56 == TABLE_CUSTOMER));
        assert!(keys.iter().any(|&k| k >> 56 == TABLE_STOCK));
    }
}
