//! # awdit-workloads — benchmark workload generators
//!
//! Synthetic equivalents of the three benchmarks the AWDIT paper collects
//! histories from (Section 5.1), plus parameterized uniform workloads for
//! the scalability experiments:
//!
//! * [`Tpcc`] — TPC-C-style OLTP: five transaction profiles over
//!   warehouse/district/customer/stock rows with the standard mix.
//! * [`CTwitter`] — Cobra's C-Twitter: tweets, follows, and timeline reads
//!   over a Zipf-skewed social graph (~7.6 ops per transaction).
//! * [`Rubis`] — RUBiS: a browse-heavy auction-site mix modeled after
//!   eBay.
//! * [`Uniform`] / [`VariedSize`] — the Cobra-style custom workloads used
//!   to scale transaction size (Fig. 9 right).
//!
//! All generators implement [`awdit_simdb::TxnSource`] and plug directly
//! into the simulator's harness:
//!
//! ```
//! use awdit_simdb::{collect_history, DbIsolation, SimConfig};
//! use awdit_workloads::{CTwitter, CTwitterConfig};
//!
//! # fn main() -> Result<(), awdit_core::BuildError> {
//! let mut workload = CTwitter::new(CTwitterConfig::default());
//! let config = SimConfig::new(DbIsolation::Causal, 50, 7);
//! let history = collect_history(config, &mut workload, 1_000)?;
//! assert_eq!(history.num_sessions(), 50);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctwitter;
pub mod custom;
pub mod rubis;
pub mod tpcc;
pub mod zipf;

pub use ctwitter::{CTwitter, CTwitterConfig};
pub use custom::{Uniform, VariedSize};
pub use rubis::{Rubis, RubisConfig};
pub use tpcc::{Tpcc, TpccConfig};
pub use zipf::Zipf;

use awdit_simdb::TxnSource;

/// The three paper benchmarks, by name (for harness binaries and the CLI).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Benchmark {
    /// TPC-C-style OLTP.
    TpcC,
    /// C-Twitter-style social network.
    CTwitter,
    /// RUBiS-style auction site.
    Rubis,
}

impl Benchmark {
    /// All benchmarks, in the paper's presentation order.
    pub const ALL: [Benchmark; 3] = [Benchmark::Rubis, Benchmark::CTwitter, Benchmark::TpcC];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::TpcC => "TPC-C",
            Benchmark::CTwitter => "C-Twitter",
            Benchmark::Rubis => "RUBiS",
        }
    }

    /// Instantiates the workload with its default configuration.
    pub fn build(self) -> Box<dyn TxnSource> {
        match self {
            Benchmark::TpcC => Box::new(Tpcc::new(TpccConfig::default())),
            Benchmark::CTwitter => Box::new(CTwitter::new(CTwitterConfig::default())),
            Benchmark::Rubis => Box::new(Rubis::new(RubisConfig::default())),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Benchmark {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tpcc" | "tpc-c" => Ok(Benchmark::TpcC),
            "ctwitter" | "c-twitter" | "twitter" => Ok(Benchmark::CTwitter),
            "rubis" => Ok(Benchmark::Rubis),
            _ => Err(format!("unknown benchmark `{s}` (tpcc, ctwitter, rubis)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn benchmarks_build_and_generate() {
        let mut rng = SmallRng::seed_from_u64(0);
        for b in Benchmark::ALL {
            let mut w = b.build();
            let t = w.next_txn(0, &mut rng);
            assert!(!t.is_empty(), "{b} generated an empty transaction");
            assert!(!w.preload_keys().is_empty(), "{b} has no preload keys");
        }
    }

    #[test]
    fn benchmark_names_parse() {
        for b in Benchmark::ALL {
            let parsed: Benchmark = b.name().parse().unwrap();
            assert_eq!(parsed, b);
        }
        assert!("mongo".parse::<Benchmark>().is_err());
    }
}
