//! A C-Twitter-style social-network workload.
//!
//! Modeled after the Cobra framework's "C-Twitter" benchmark (itself after
//! Twitter's real-time data pipeline): users with a Zipf-skewed popularity
//! distribution tweet, follow each other, and read timelines assembled
//! from the people they follow. Averages ≈7.6 operations per transaction
//! like the paper's runs.

use awdit_simdb::{OpSpec, TxnSource, TxnSpec};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::zipf::Zipf;

const TABLE_TWEET: u64 = 1;
const TABLE_FOLLOW: u64 = 2;
const TABLE_PROFILE: u64 = 3;

fn tweet_key(user: u64) -> u64 {
    (TABLE_TWEET << 56) | user
}

fn follow_key(user: u64, slot: u64) -> u64 {
    (TABLE_FOLLOW << 56) | (user << 16) | slot
}

fn profile_key(user: u64) -> u64 {
    (TABLE_PROFILE << 56) | user
}

/// Configuration for the C-Twitter-style workload.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct CTwitterConfig {
    /// Number of users.
    pub users: u64,
    /// Follow slots tracked per user.
    pub follows_per_user: u64,
    /// Timeline length: how many followees a timeline read visits.
    pub timeline_reads: u64,
    /// Zipf exponent for user popularity.
    pub skew: f64,
}

impl Default for CTwitterConfig {
    fn default() -> Self {
        CTwitterConfig {
            users: 500,
            follows_per_user: 8,
            timeline_reads: 6,
            skew: 1.0,
        }
    }
}

/// The C-Twitter-style transaction generator.
#[derive(Clone, Debug)]
pub struct CTwitter {
    config: CTwitterConfig,
    popularity: Zipf,
}

impl CTwitter {
    /// Creates the workload with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.users == 0`.
    pub fn new(config: CTwitterConfig) -> Self {
        CTwitter {
            popularity: Zipf::new(config.users as usize, config.skew),
            config,
        }
    }

    fn pick_user(&self, rng: &mut SmallRng) -> u64 {
        self.popularity.sample(rng) as u64
    }

    /// Tweet: update own latest-tweet row and profile counters.
    fn tweet(&self, rng: &mut SmallRng, user: u64) -> TxnSpec {
        let _ = rng;
        TxnSpec::new(vec![
            OpSpec::Read(profile_key(user)),
            OpSpec::Write(tweet_key(user)),
            OpSpec::Write(profile_key(user)),
        ])
    }

    /// Follow: add a followee to one of the user's follow slots.
    fn follow(&self, rng: &mut SmallRng, user: u64) -> TxnSpec {
        let followee = self.pick_user(rng);
        let slot = rng.gen_range(0..self.config.follows_per_user);
        TxnSpec::new(vec![
            OpSpec::Read(profile_key(followee)),
            OpSpec::Write(follow_key(user, slot)),
            OpSpec::Write(profile_key(user)),
        ])
    }

    /// Timeline: read several followees' latest tweets (popular users are
    /// read more often).
    fn timeline(&self, rng: &mut SmallRng, user: u64) -> TxnSpec {
        let mut ops = vec![OpSpec::Read(profile_key(user))];
        for _ in 0..self.config.timeline_reads {
            let followee = self.pick_user(rng);
            ops.push(OpSpec::Read(tweet_key(followee)));
        }
        TxnSpec::new(ops)
    }
}

impl TxnSource for CTwitter {
    fn next_txn(&mut self, session: usize, rng: &mut SmallRng) -> TxnSpec {
        // Sessions act on behalf of a rotating set of users; the acting
        // user is sampled by popularity for writes too, keeping hot keys
        // hot on both sides.
        let user = ((session as u64) + self.pick_user(rng)) % self.config.users;
        let roll = rng.gen_range(0..100u32);
        match roll {
            0..=29 => self.tweet(rng, user),
            30..=39 => self.follow(rng, user),
            _ => self.timeline(rng, user),
        }
    }

    fn preload_keys(&self) -> Vec<u64> {
        let mut keys = Vec::new();
        for u in 0..self.config.users {
            keys.push(profile_key(u));
            keys.push(tweet_key(u));
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::{check, HistoryStats, IsolationLevel};
    use awdit_simdb::{collect_history, DbIsolation, SimConfig};
    use rand::SeedableRng;

    #[test]
    fn average_txn_size_is_near_paper() {
        let mut w = CTwitter::new(CTwitterConfig::default());
        let mut rng = SmallRng::seed_from_u64(5);
        let mut total = 0usize;
        let n = 2000;
        for i in 0..n {
            total += w.next_txn(i % 10, &mut rng).len();
        }
        let avg = total as f64 / n as f64;
        assert!((3.0..8.0).contains(&avg), "avg txn size {avg}");
    }

    #[test]
    fn causal_ctwitter_history_is_consistent() {
        let mut w = CTwitter::new(CTwitterConfig {
            users: 100,
            ..CTwitterConfig::default()
        });
        let cfg = SimConfig::new(DbIsolation::Causal, 6, 9);
        let h = collect_history(cfg, &mut w, 300).unwrap();
        assert!(HistoryStats::of(&h).ops > 500);
        for level in IsolationLevel::ALL {
            assert!(check(&h, level).is_consistent());
        }
    }

    #[test]
    fn popular_users_dominate_reads() {
        let w = CTwitter::new(CTwitterConfig::default());
        let mut rng = SmallRng::seed_from_u64(11);
        let mut hot = 0;
        let mut cold = 0;
        for _ in 0..5000 {
            let u = w.pick_user(&mut rng);
            if u < 10 {
                hot += 1;
            } else if u >= 400 {
                cold += 1;
            }
        }
        assert!(hot > cold, "Zipf skew missing: hot={hot} cold={cold}");
    }
}
