//! A minimal hand-rolled HTTP/1.1 layer over blocking sockets.
//!
//! `awdit serve` is std-only, so this module implements exactly the slice
//! of RFC 9112 the daemon needs: request-line and header parsing with a
//! bounded head, `Content-Length` and `chunked` request bodies readable
//! either whole or as a bounded byte/line stream, and plain-text response
//! writing with keep-alive accounting. Everything a client can get wrong
//! — torn frames, oversized heads, bogus lengths, truncated chunked
//! framing, non-UTF-8 event lines — surfaces as a typed [`HttpError`]
//! that the connection loop turns into a clean 4xx, never a panic.

use std::io::{self, BufRead, Write};
use std::time::Duration;

/// Hard cap on the request line plus all header bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Hard cap on one NDJSON event line inside a streamed body.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Per-connection request framing limits.
#[derive(Copy, Clone, Debug)]
pub struct HttpLimits {
    /// Largest accepted request body, after de-chunking.
    pub max_body_bytes: u64,
    /// Socket read timeout (maps to 408 when it fires mid-request).
    pub read_timeout: Duration,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_body_bytes: 64 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Everything that can go wrong while framing a request.
#[derive(Debug)]
pub enum HttpError {
    /// The client closed the connection before sending a request —
    /// the normal end of a keep-alive connection, not an error.
    Closed,
    /// The bytes on the wire are not valid HTTP/1.1 framing (→ 400).
    Malformed(String),
    /// The head or body exceeds its budget (→ 431 / 413).
    TooLarge(&'static str),
    /// The socket read timeout fired mid-request (→ 408).
    Timeout,
    /// A transport error; the connection is dropped without a response.
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => f.write_str("connection closed"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(what) => write!(f, "{what} too large"),
            HttpError::Timeout => f.write_str("read timed out"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
            io::ErrorKind::UnexpectedEof => HttpError::Malformed("unexpected end of stream".into()),
            _ => HttpError::Io(e),
        }
    }
}

/// A parsed request head (the body is read separately via [`BodyReader`]).
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method.
    pub method: String,
    /// Decoded path, query string stripped.
    pub path: String,
    /// `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in order.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// First header value under `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter under `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Reads one line (up to and including `\n`) into `buf`, bounded by what
/// remains of the head budget. Returns the number of bytes consumed.
fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    budget: usize,
) -> Result<usize, HttpError> {
    let start = buf.len();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            if buf.len() == start {
                return Err(HttpError::Closed);
            }
            return Err(HttpError::Malformed("truncated line".into()));
        }
        let (consume, done) = match available.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (available.len(), false),
        };
        if buf.len() - start + consume > budget {
            return Err(HttpError::TooLarge("request head"));
        }
        buf.extend_from_slice(&available[..consume]);
        reader.consume(consume);
        if done {
            return Ok(buf.len() - start);
        }
    }
}

fn trim_crlf(line: &[u8]) -> &[u8] {
    let line = line.strip_suffix(b"\n").unwrap_or(line);
    line.strip_suffix(b"\r").unwrap_or(line)
}

/// Reads and parses one request head. [`HttpError::Closed`] before the
/// first byte means the keep-alive connection ended cleanly.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, HttpError> {
    let mut head = Vec::with_capacity(256);
    read_line_bounded(reader, &mut head, MAX_HEAD_BYTES)?;
    let request_line = trim_crlf(&head);
    let request_line = std::str::from_utf8(request_line)
        .map_err(|_| HttpError::Malformed("request line is not UTF-8".into()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line `{}`",
                request_line.escape_debug()
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad version `{version}`")));
    }
    let method = method.to_ascii_uppercase();
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();

    let mut headers = Vec::new();
    let mut budget = MAX_HEAD_BYTES.saturating_sub(head.len());
    loop {
        let mut line = Vec::with_capacity(64);
        read_line_bounded(reader, &mut line, budget).map_err(|e| match e {
            // EOF between request line and blank line is a torn frame.
            HttpError::Closed => HttpError::Malformed("truncated head".into()),
            other => other,
        })?;
        budget = budget.saturating_sub(line.len());
        let line = trim_crlf(&line);
        if line.is_empty() {
            break;
        }
        let line = std::str::from_utf8(line)
            .map_err(|_| HttpError::Malformed("header line is not UTF-8".into()))?;
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header `{}`", line.escape_debug())))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    Ok(Request {
        method,
        path: path.to_string(),
        query,
        headers,
    })
}

/// How the request body is framed on the wire.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BodyKind {
    /// No body (no `Content-Length`, no `Transfer-Encoding`).
    Empty,
    /// Exactly this many bytes follow the head.
    Sized(u64),
    /// `Transfer-Encoding: chunked` framing.
    Chunked,
}

/// Determines the body framing from the head, validating the length
/// headers.
pub fn body_kind(req: &Request) -> Result<BodyKind, HttpError> {
    if let Some(te) = req.header("transfer-encoding") {
        if te.eq_ignore_ascii_case("chunked") {
            return Ok(BodyKind::Chunked);
        }
        return Err(HttpError::Malformed(format!(
            "unsupported transfer-encoding `{te}`"
        )));
    }
    match req.header("content-length") {
        None => Ok(BodyKind::Empty),
        Some(v) => match v.trim().parse::<u64>() {
            Ok(0) => Ok(BodyKind::Empty),
            Ok(n) => Ok(BodyKind::Sized(n)),
            Err(_) => Err(HttpError::Malformed(format!("bad content-length `{v}`"))),
        },
    }
}

#[derive(Copy, Clone)]
enum BodyState {
    Done,
    Sized { remaining: u64 },
    Chunked { in_chunk: u64 },
}

/// Incremental, bounded reader over one request body: de-chunks,
/// enforces the body budget, and reports truncation as
/// [`HttpError::Malformed`]. Wraps the connection's `BufRead` without
/// consuming past the body, so keep-alive survives.
pub struct BodyReader<'a, R: BufRead> {
    inner: &'a mut R,
    state: BodyState,
    total: u64,
    max: u64,
}

impl<'a, R: BufRead> BodyReader<'a, R> {
    /// A reader for `kind`, bounded by `limits.max_body_bytes`.
    pub fn new(inner: &'a mut R, kind: BodyKind, limits: &HttpLimits) -> Self {
        let state = match kind {
            BodyKind::Empty => BodyState::Done,
            BodyKind::Sized(n) => BodyState::Sized { remaining: n },
            BodyKind::Chunked => BodyState::Chunked { in_chunk: 0 },
        };
        BodyReader {
            inner,
            state,
            total: 0,
            max: limits.max_body_bytes,
        }
    }

    /// Total body bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        self.total
    }

    /// Reads the next piece of the body into `buf`; `Ok(0)` marks the
    /// end of the body.
    pub fn read_some(&mut self, buf: &mut [u8]) -> Result<usize, HttpError> {
        let n = loop {
            match self.state {
                BodyState::Done => return Ok(0),
                BodyState::Sized { remaining } => {
                    if remaining == 0 {
                        self.state = BodyState::Done;
                        return Ok(0);
                    }
                    let want = remaining.min(buf.len() as u64) as usize;
                    let n = self.inner.read(&mut buf[..want]).map_err(HttpError::from)?;
                    if n == 0 {
                        return Err(HttpError::Malformed(
                            "body shorter than content-length".into(),
                        ));
                    }
                    self.state = BodyState::Sized {
                        remaining: remaining - n as u64,
                    };
                    break n;
                }
                BodyState::Chunked { in_chunk } => {
                    if in_chunk == 0 {
                        let size = self.next_chunk()?;
                        if size == 0 {
                            return Ok(0);
                        }
                        self.state = BodyState::Chunked { in_chunk: size };
                        continue;
                    }
                    let want = in_chunk.min(buf.len() as u64) as usize;
                    let n = self.inner.read(&mut buf[..want]).map_err(HttpError::from)?;
                    if n == 0 {
                        return Err(HttpError::Malformed("truncated chunk".into()));
                    }
                    let left = in_chunk - n as u64;
                    self.state = BodyState::Chunked { in_chunk: left };
                    if left == 0 {
                        self.expect_crlf()?;
                    }
                    break n;
                }
            }
        };
        self.total += n as u64;
        if self.total > self.max {
            return Err(HttpError::TooLarge("request body"));
        }
        Ok(n)
    }

    /// Parses the next chunk-size line; `0` is the terminal chunk (its
    /// trailer section is consumed too, leaving the stream at the next
    /// request head).
    fn next_chunk(&mut self) -> Result<u64, HttpError> {
        let mut line = Vec::with_capacity(16);
        read_line_bounded(self.inner, &mut line, 256).map_err(|e| match e {
            HttpError::Closed => HttpError::Malformed("truncated chunked body".into()),
            other => other,
        })?;
        let line = trim_crlf(&line);
        let text =
            std::str::from_utf8(line).map_err(|_| HttpError::Malformed("bad chunk size".into()))?;
        let size_hex = text.split(';').next().unwrap_or("").trim();
        let size = u64::from_str_radix(size_hex, 16)
            .map_err(|_| HttpError::Malformed(format!("bad chunk size `{text}`")))?;
        if size == 0 {
            // Trailer section: zero or more header lines, then a blank.
            loop {
                let mut t = Vec::with_capacity(16);
                read_line_bounded(self.inner, &mut t, 1024).map_err(|e| match e {
                    HttpError::Closed => HttpError::Malformed("truncated trailer".into()),
                    other => other,
                })?;
                if trim_crlf(&t).is_empty() {
                    break;
                }
            }
            self.state = BodyState::Done;
        }
        Ok(size)
    }

    fn expect_crlf(&mut self) -> Result<(), HttpError> {
        let mut line = Vec::with_capacity(2);
        read_line_bounded(self.inner, &mut line, 2).map_err(|e| match e {
            HttpError::Closed => HttpError::Malformed("truncated chunk terminator".into()),
            other => other,
        })?;
        if !trim_crlf(&line).is_empty() {
            return Err(HttpError::Malformed("missing chunk terminator".into()));
        }
        Ok(())
    }

    /// Reads the whole (bounded) body into memory.
    pub fn read_all(&mut self) -> Result<Vec<u8>, HttpError> {
        let mut out = Vec::new();
        let mut buf = [0u8; 8192];
        loop {
            match self.read_some(&mut buf)? {
                0 => return Ok(out),
                n => out.extend_from_slice(&buf[..n]),
            }
        }
    }

    /// Consumes and discards the rest of the body (keep-alive hygiene
    /// after an early response). Gives up — signalling the connection
    /// should close instead — if the remainder would bust the budget.
    pub fn discard_rest(&mut self) -> Result<(), HttpError> {
        let mut buf = [0u8; 8192];
        while self.read_some(&mut buf)? != 0 {}
        Ok(())
    }
}

/// Line-oriented view over a [`BodyReader`], for streaming NDJSON
/// intake: yields one event line at a time without ever buffering the
/// whole body, enforcing [`MAX_LINE_BYTES`] per line.
pub struct BodyLines<'a, R: BufRead> {
    body: BodyReader<'a, R>,
    buf: Vec<u8>,
    pos: usize,
    done: bool,
}

impl<'a, R: BufRead> BodyLines<'a, R> {
    /// Wraps `body` for line-at-a-time reading.
    pub fn new(body: BodyReader<'a, R>) -> Self {
        BodyLines {
            body,
            buf: Vec::with_capacity(8192),
            pos: 0,
            done: false,
        }
    }

    /// Total body bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        self.body.bytes_read()
    }

    /// The next line with its terminator and any trailing `\r` stripped;
    /// `Ok(None)` at end of body. A final unterminated line is yielded.
    pub fn next_line(&mut self) -> Result<Option<String>, HttpError> {
        loop {
            if let Some(i) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                let end = self.pos + i;
                let line = trim_crlf(&self.buf[self.pos..end]).to_vec();
                self.pos = end + 1;
                return Self::to_utf8(line).map(Some);
            }
            if self.done {
                if self.pos >= self.buf.len() {
                    return Ok(None);
                }
                let line = trim_crlf(&self.buf[self.pos..]).to_vec();
                self.pos = self.buf.len();
                return Self::to_utf8(line).map(Some);
            }
            // Compact, then pull more body bytes.
            self.buf.drain(..self.pos);
            self.pos = 0;
            if self.buf.len() > MAX_LINE_BYTES {
                return Err(HttpError::TooLarge("event line"));
            }
            let mut chunk = [0u8; 8192];
            match self.body.read_some(&mut chunk)? {
                0 => self.done = true,
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
    }

    fn to_utf8(line: Vec<u8>) -> Result<String, HttpError> {
        String::from_utf8(line).map_err(|_| HttpError::Malformed("event line is not UTF-8".into()))
    }

    /// Unwraps back to the underlying [`BodyReader`] (to discard the
    /// rest of the body after an early response). Any buffered-but-not-
    /// yet-yielded bytes are dropped — callers only do this when they are
    /// done consuming lines.
    pub fn into_body(self) -> BodyReader<'a, R> {
        self.body
    }
}

/// The standard reason phrase for the status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete response with `Content-Length` framing.
pub fn write_response<W: Write>(
    out: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, String)],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    out.write_all(head.as_bytes())?;
    out.write_all(body)?;
    out.flush()
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_request_line_query_and_headers() {
        let req = parse(
            b"POST /v1/sessions/a/events?prune=0&x HTTP/1.1\r\nHost: x\r\nContent-Length: 3\r\n\r\nabc",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sessions/a/events");
        assert_eq!(req.query_param("prune"), Some("0"));
        assert_eq!(req.query_param("x"), Some(""));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(body_kind(&req).unwrap(), BodyKind::Sized(3));
    }

    #[test]
    fn torn_frames_are_malformed_not_panics() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
        assert!(matches!(parse(b"GET"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nHost: x"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"\xff\xfe\x00 / HTTP/1.1\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut big = Vec::from(&b"GET / HTTP/1.1\r\n"[..]);
        big.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        assert!(matches!(parse(&big), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn sized_body_reads_and_detects_truncation() {
        let limits = HttpLimits::default();
        let mut r = BufReader::new(&b"hello"[..]);
        let mut body = BodyReader::new(&mut r, BodyKind::Sized(5), &limits);
        assert_eq!(body.read_all().unwrap(), b"hello");

        let mut r = BufReader::new(&b"hel"[..]);
        let mut body = BodyReader::new(&mut r, BodyKind::Sized(5), &limits);
        assert!(matches!(body.read_all(), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn chunked_body_dechunks() {
        let limits = HttpLimits::default();
        let wire = b"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let mut r = BufReader::new(&wire[..]);
        let mut body = BodyReader::new(&mut r, BodyKind::Chunked, &limits);
        assert_eq!(body.read_all().unwrap(), b"hello world");

        let wire = b"zz\r\nhello\r\n";
        let mut r = BufReader::new(&wire[..]);
        let mut body = BodyReader::new(&mut r, BodyKind::Chunked, &limits);
        assert!(matches!(body.read_all(), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn body_budget_is_enforced() {
        let limits = HttpLimits {
            max_body_bytes: 4,
            ..HttpLimits::default()
        };
        let mut r = BufReader::new(&b"hello"[..]);
        let mut body = BodyReader::new(&mut r, BodyKind::Sized(5), &limits);
        assert!(matches!(body.read_all(), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn body_lines_handles_crlf_and_final_fragment() {
        let limits = HttpLimits::default();
        let mut r = BufReader::new(&b"a\r\nb\n\nc"[..]);
        let body = BodyReader::new(&mut r, BodyKind::Sized(7), &limits);
        let mut lines = BodyLines::new(body);
        assert_eq!(lines.next_line().unwrap().as_deref(), Some("a"));
        assert_eq!(lines.next_line().unwrap().as_deref(), Some("b"));
        assert_eq!(lines.next_line().unwrap().as_deref(), Some(""));
        assert_eq!(lines.next_line().unwrap().as_deref(), Some("c"));
        assert_eq!(lines.next_line().unwrap(), None);
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "application/json",
            b"{}",
            &[("Retry-After", "1".into())],
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn json_escape_covers_controls() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
