//! The daemon itself: a thread-per-core accept pool in front of the
//! [`SessionHub`], speaking the minimal HTTP layer from [`crate::http`].
//!
//! Workers share one non-blocking listener (each holds a `try_clone`
//! handle) and poll it with a short sleep so a [`ShutdownToken`] trigger
//! is observed within tens of milliseconds without any self-pipe
//! machinery. Accepted sockets are switched back to blocking reads with a
//! timeout, so a stalled client costs one worker at most
//! [`HttpLimits::read_timeout`] before the connection is shed with `408`.
//!
//! Routes:
//!
//! | Method & path                     | Purpose                                  |
//! |-----------------------------------|------------------------------------------|
//! | `POST /v1/sessions/{id}/events`   | stream NDJSON events into a tenant       |
//! | `POST /v1/sessions/{id}/finish`   | finalize a tenant, get its summary       |
//! | `GET /v1/sessions/{id}/violations`| retrieve/long-poll the violation log     |
//! | `POST /v1/check`                  | one-shot batch check of an uploaded file |
//! | `GET /healthz`                    | liveness + per-tenant stream statistics  |
//! | `GET /metrics`                    | Prometheus text exposition               |

use std::io::{self, BufRead, BufReader, BufWriter, Cursor, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use awdit_core::{parallel, Engine, EngineConfig, IsolationLevel, Outcome};
use awdit_formats::{parse_event, read_auto, HistoryReport, Report};
use awdit_obs::metrics::{Counter, Histogram};
use awdit_obs::Obs;
use awdit_stream::{Event, ShutdownToken, StreamConfig, StreamStats};

use crate::http::{
    body_kind, json_escape, read_request, write_response, BodyKind, BodyLines, BodyReader,
    HttpError, HttpLimits, Request,
};
use crate::session::{valid_session_id, IntakeOutcome, IntakeStats, SessionHub, SessionSummary};

/// Events buffered from the wire before they are applied under the
/// tenant lock — bounds lock hold time per batch without a syscall per
/// event.
const EVENT_BATCH: usize = 512;

/// How long a worker sleeps when the listener has nothing to accept.
const ACCEPT_IDLE: Duration = Duration::from_millis(20);

/// Longest honored `wait_ms` on the violations long-poll.
const MAX_POLL: Duration = Duration::from_secs(30);

/// Everything `Server::bind` needs to stand up a daemon.
#[derive(Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Accept/worker threads (`0` = all cores).
    pub threads: usize,
    /// Worker threads for the shared batch-check engine behind
    /// `POST /v1/check` (`0` = all cores). Independent of the accept
    /// threads *and* of the per-tenant stream config: a one-shot batch
    /// check can saturate the box even when online tenants are tuned
    /// down.
    pub check_threads: usize,
    /// Default per-tenant stream configuration (level, pruning, …).
    pub stream: StreamConfig,
    /// Default per-tenant staging budget: intake returns `429` while a
    /// tenant holds this many staged (dependency-blocked) transactions.
    pub staging_budget: u64,
    /// Cap on warm checkers parked for tenant reuse (beyond it, finished
    /// checkers are dropped).
    pub warm_pool: usize,
    /// HTTP framing limits (body cap, read timeout).
    pub limits: HttpLimits,
    /// Observability handle; `/metrics` serves its Prometheus export.
    pub obs: Obs,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            threads: 0,
            check_threads: 0,
            stream: StreamConfig::default(),
            staging_budget: 4096,
            warm_pool: 32,
            limits: HttpLimits::default(),
            obs: Obs::new(),
        }
    }
}

/// What a drained server hands back: the terminal summary of every
/// tenant that was still open when shutdown hit, plus the ones already
/// finished.
#[derive(Clone, Debug, Default)]
pub struct ServeSummary {
    /// Terminal summaries, sorted by tenant id.
    pub sessions: Vec<SessionSummary>,
}

/// Cached metric handles so the hot path never takes the registry lock.
struct ServeMetrics {
    handles: Option<Handles>,
}

struct Handles {
    connections: Arc<Counter>,
    requests: Arc<Counter>,
    http_errors: Arc<Counter>,
    events: Arc<Counter>,
    backpressure: Arc<Counter>,
    sessions_opened: Arc<Counter>,
    sessions_finished: Arc<Counter>,
    intake_micros: Arc<Histogram>,
}

impl ServeMetrics {
    fn new(obs: &Obs) -> Self {
        let handles = obs.metrics().map(|m| Handles {
            connections: m.counter("awdit_serve_connections_total"),
            requests: m.counter("awdit_serve_requests_total"),
            http_errors: m.counter("awdit_serve_http_errors_total"),
            events: m.counter("awdit_serve_events_total"),
            backpressure: m.counter("awdit_serve_backpressure_total"),
            sessions_opened: m.counter("awdit_serve_sessions_opened_total"),
            sessions_finished: m.counter("awdit_serve_sessions_finished_total"),
            intake_micros: m.histogram("awdit_serve_intake_micros"),
        });
        ServeMetrics { handles }
    }

    fn connection(&self) {
        if let Some(h) = &self.handles {
            h.connections.inc();
        }
    }
    fn request(&self) {
        if let Some(h) = &self.handles {
            h.requests.inc();
        }
    }
    fn http_error(&self) {
        if let Some(h) = &self.handles {
            h.http_errors.inc();
        }
    }
    fn events(&self, n: u64) {
        if let Some(h) = &self.handles {
            h.events.add(n);
        }
    }
    fn backpressure(&self) {
        if let Some(h) = &self.handles {
            h.backpressure.inc();
        }
    }
    fn session_opened(&self) {
        if let Some(h) = &self.handles {
            h.sessions_opened.inc();
        }
    }
    fn session_finished(&self) {
        if let Some(h) = &self.handles {
            h.sessions_finished.inc();
        }
    }
    fn intake(&self, micros: u64) {
        if let Some(h) = &self.handles {
            h.intake_micros.observe(micros);
        }
    }
}

/// A bound-but-not-yet-running daemon. [`run`](Server::run) blocks until
/// the [`ShutdownToken`] fires, then drains every tenant and returns the
/// terminal summaries.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    hub: SessionHub,
    engine: Mutex<Engine>,
    shutdown: ShutdownToken,
    threads: usize,
    limits: HttpLimits,
    obs: Obs,
    metrics: ServeMetrics,
}

impl Server {
    /// Binds the listen socket and builds the hub. Nothing runs yet.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors.
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let threads = parallel::effective_threads(cfg.threads);
        // One worker pool for the whole daemon, wide enough for the
        // widest dispatcher: the batch engine and every tenant checker
        // share its parked threads instead of spawning their own.
        let pool_width = parallel::effective_threads(cfg.check_threads)
            .max(parallel::effective_threads(cfg.stream.threads));
        let pool = Arc::new(parallel::Pool::new(pool_width));
        let engine_cfg = EngineConfig {
            level: cfg.stream.level,
            threads: cfg.check_threads,
            ..EngineConfig::default()
        };
        let mut engine = Engine::with_config_pool(engine_cfg, Arc::clone(&pool));
        engine.set_obs(cfg.obs.clone());
        let metrics = ServeMetrics::new(&cfg.obs);
        Ok(Server {
            listener,
            local_addr,
            hub: SessionHub::new(
                cfg.stream,
                cfg.staging_budget.max(1),
                cfg.warm_pool,
                pool,
                cfg.obs.clone(),
            ),
            engine: Mutex::new(engine),
            shutdown: ShutdownToken::new(),
            threads,
            limits: cfg.limits,
            obs: cfg.obs,
            metrics,
        })
    }

    /// The bound address — the source of truth when `addr` asked for an
    /// ephemeral port.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The token that stops [`run`](Server::run); clone it into signal
    /// handlers or test harnesses.
    pub fn shutdown_token(&self) -> ShutdownToken {
        self.shutdown.clone()
    }

    /// Serves until the shutdown token triggers, then finalizes every
    /// open tenant and returns all terminal summaries.
    ///
    /// # Errors
    ///
    /// Propagates listener-cloning I/O errors; per-connection errors are
    /// absorbed (the offending connection is dropped).
    pub fn run(&self) -> io::Result<ServeSummary> {
        let mut handles = Vec::with_capacity(self.threads);
        for _ in 0..self.threads {
            handles.push(self.listener.try_clone()?);
        }
        std::thread::scope(|s| {
            for listener in handles {
                s.spawn(move || self.worker(listener));
            }
        });
        Ok(ServeSummary {
            sessions: self.hub.drain_all(),
        })
    }

    fn worker(&self, listener: TcpListener) {
        loop {
            if self.shutdown.is_triggered() {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    self.metrics.connection();
                    let _ = self.handle_connection(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_IDLE);
                }
                Err(_) => std::thread::sleep(ACCEPT_IDLE),
            }
        }
    }

    fn handle_connection(&self, stream: TcpStream) -> io::Result<()> {
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(self.limits.read_timeout))?;
        let _ = stream.set_nodelay(true);
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        loop {
            let req = match read_request(&mut reader) {
                Ok(r) => r,
                Err(HttpError::Closed) => return Ok(()),
                Err(e) => {
                    self.metrics.http_error();
                    let _ = framing_error_response(&mut writer, &e);
                    return Ok(());
                }
            };
            self.metrics.request();
            let keep = self.dispatch(&req, &mut reader, &mut writer)?;
            writer.flush()?;
            if !keep || req.wants_close() || self.shutdown.is_triggered() {
                return Ok(());
            }
        }
    }

    fn dispatch<R: BufRead, W: Write>(
        &self,
        req: &Request,
        reader: &mut R,
        writer: &mut W,
    ) -> io::Result<bool> {
        let segs: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        match (req.method.as_str(), segs.as_slice()) {
            ("GET", ["healthz"]) => self.get_healthz(req, reader, writer),
            ("GET", ["metrics"]) => self.get_metrics(req, reader, writer),
            ("POST", ["v1", "check"]) => self.post_check(req, reader, writer),
            ("POST", ["v1", "sessions", id, "events"]) => self.post_events(req, id, reader, writer),
            ("POST", ["v1", "sessions", id, "finish"]) => self.post_finish(req, id, reader, writer),
            ("GET", ["v1", "sessions", id, "violations"]) => {
                let id = id.to_string();
                if !self.consume_body(req, reader, writer)? {
                    return Ok(false);
                }
                self.get_violations(req, &id, writer)
            }
            (_, ["healthz" | "metrics"]) | (_, ["v1", ..]) => {
                json_error(writer, 405, "method not allowed")?;
                Ok(false)
            }
            _ => {
                json_error(writer, 404, "not found")?;
                Ok(false)
            }
        }
    }

    /// Discards any request body (GET endpoints and `finish`, which take
    /// none) so keep-alive stays framed; responds and closes on framing
    /// errors.
    fn consume_body<R: BufRead, W: Write>(
        &self,
        req: &Request,
        reader: &mut R,
        writer: &mut W,
    ) -> io::Result<bool> {
        let kind = match body_kind(req) {
            Ok(k) => k,
            Err(e) => {
                self.metrics.http_error();
                framing_error_response(writer, &e)?;
                return Ok(false);
            }
        };
        if matches!(kind, BodyKind::Empty) {
            return Ok(true);
        }
        let mut body = BodyReader::new(reader, kind, &self.limits);
        match body.discard_rest() {
            Ok(()) => Ok(true),
            Err(e) => {
                self.metrics.http_error();
                framing_error_response(writer, &e)?;
                Ok(false)
            }
        }
    }

    fn get_metrics<R: BufRead, W: Write>(
        &self,
        req: &Request,
        reader: &mut R,
        writer: &mut W,
    ) -> io::Result<bool> {
        if !self.consume_body(req, reader, writer)? {
            return Ok(false);
        }
        let text = self.obs.export_prometheus();
        write_response(
            writer,
            200,
            "text/plain; version=0.0.4",
            text.as_bytes(),
            &[],
            true,
        )?;
        Ok(true)
    }

    fn get_healthz<R: BufRead, W: Write>(
        &self,
        req: &Request,
        reader: &mut R,
        writer: &mut W,
    ) -> io::Result<bool> {
        if !self.consume_body(req, reader, writer)? {
            return Ok(false);
        }
        let status = if self.shutdown.is_triggered() {
            "draining"
        } else {
            "ok"
        };
        let ids = self.hub.ids();
        let mut open = 0usize;
        let mut finished = 0usize;
        let mut agg = StreamStats::default();
        let mut tenants = String::new();
        for id in &ids {
            let Some(t) = self.hub.get(id) else { continue };
            let (s, done) = t.stats();
            if done {
                finished += 1;
            } else {
                open += 1;
            }
            agg.events += s.events;
            agg.processed += s.processed;
            agg.retired_txns += s.retired_txns;
            agg.live_txns += s.live_txns;
            agg.peak_live_txns = agg.peak_live_txns.max(s.peak_live_txns);
            agg.staged_txns += s.staged_txns;
            agg.peak_staged_txns = agg.peak_staged_txns.max(s.peak_staged_txns);
            agg.live_edges += s.live_edges;
            agg.violations += s.violations;
            agg.horizon_misses += s.horizon_misses;
            if !tenants.is_empty() {
                tenants.push(',');
            }
            tenants.push_str(&format!(
                "{{\"id\":\"{}\",\"finished\":{},{}}}",
                json_escape(id),
                done,
                stream_stats_json(&s)
            ));
        }
        let es = self.engine.lock().unwrap().stats();
        let body = format!(
            "{{\"status\":\"{}\",\"sessions\":{{\"open\":{},\"finished\":{},\"pooled\":{},\
             \"warm_cap\":{}}},\
             \"stream\":{{{}}},\
             \"engine\":{{\"histories\":{},\"checks\":{},\"arena_growths\":{},\"arena_bytes\":{},\
             \"threads\":{}}},\
             \"tenants\":[{}]}}",
            status,
            open,
            finished,
            self.hub.pooled(),
            self.hub.warm_cap(),
            stream_stats_json(&agg),
            es.histories,
            es.checks,
            es.arena_growths,
            es.arena_bytes,
            es.threads,
            tenants,
        );
        write_response(writer, 200, "application/json", body.as_bytes(), &[], true)?;
        Ok(true)
    }

    fn post_check<R: BufRead, W: Write>(
        &self,
        req: &Request,
        reader: &mut R,
        writer: &mut W,
    ) -> io::Result<bool> {
        let kind = match body_kind(req) {
            Ok(k) => k,
            Err(e) => {
                self.metrics.http_error();
                framing_error_response(writer, &e)?;
                return Ok(false);
            }
        };
        let mut body = BodyReader::new(reader, kind, &self.limits);
        let bytes = match body.read_all() {
            Ok(b) => b,
            Err(e) => {
                self.metrics.http_error();
                framing_error_response(writer, &e)?;
                return Ok(false);
            }
        };
        let iso = req.query_param("isolation").unwrap_or("");
        let all = iso.eq_ignore_ascii_case("all");
        let level = if iso.is_empty() || all {
            self.hub.defaults().level
        } else {
            match iso.parse::<IsolationLevel>() {
                Ok(l) => l,
                Err(e) => {
                    json_error(writer, 400, &e.to_string())?;
                    return Ok(false);
                }
            }
        };
        let name = req.query_param("name").unwrap_or("upload").to_string();
        let started = Instant::now();
        let mut engine = self.engine.lock().unwrap();
        if let Err(e) = read_auto(Cursor::new(bytes), &mut *engine) {
            // Seal-and-discard resets the ingest arenas after the torn
            // upload; the outcome of the partial history is irrelevant.
            let _ = engine.finish_ingest_level(level);
            drop(engine);
            json_error(writer, 400, &format!("cannot parse history: {e}"))?;
            return Ok(false);
        }
        let outcomes: Vec<Outcome> = if all {
            match engine.finish_ingest_all_levels() {
                Ok(arr) => arr.to_vec(),
                Err(e) => {
                    drop(engine);
                    json_error(writer, 400, &format!("malformed history: {e}"))?;
                    return Ok(false);
                }
            }
        } else {
            match engine.finish_ingest_level(level) {
                Ok(out) => vec![out],
                Err(e) => {
                    drop(engine);
                    json_error(writer, 400, &format!("malformed history: {e}"))?;
                    return Ok(false);
                }
            }
        };
        let time_ms = started.elapsed().as_secs_f64() * 1e3;
        let report = Report::new(vec![HistoryReport::new(
            &name,
            engine.ingested(),
            &outcomes,
            time_ms,
        )]);
        drop(engine);
        let json = report.to_json();
        write_response(writer, 200, "application/json", json.as_bytes(), &[], true)?;
        Ok(true)
    }

    /// Per-tenant stream configuration from query parameters, honored
    /// only when this request creates the tenant.
    fn stream_overrides(&self, req: &Request) -> Result<Option<StreamConfig>, String> {
        let mut cfg = self.hub.defaults();
        let mut touched = false;
        if let Some(v) = req.query_param("isolation") {
            cfg.level = v
                .parse::<IsolationLevel>()
                .map_err(|e| format!("isolation: {e}"))?;
            touched = true;
        }
        if let Some(v) = req.query_param("prune") {
            cfg.prune = match v {
                "true" | "1" | "on" => true,
                "false" | "0" | "off" => false,
                other => return Err(format!("prune: expected true/false, got {other:?}")),
            };
            touched = true;
        }
        if let Some(v) = req.query_param("interval") {
            cfg.prune_interval = v
                .parse::<u64>()
                .map_err(|_| format!("interval: not a number: {v:?}"))?
                .max(1);
            touched = true;
        }
        Ok(if touched { Some(cfg) } else { None })
    }

    fn post_events<R: BufRead, W: Write>(
        &self,
        req: &Request,
        id: &str,
        reader: &mut R,
        writer: &mut W,
    ) -> io::Result<bool> {
        if !valid_session_id(id) {
            json_error(writer, 400, "invalid session id")?;
            return Ok(false);
        }
        let cfg = match self.stream_overrides(req) {
            Ok(c) => c,
            Err(msg) => {
                json_error(writer, 400, &msg)?;
                return Ok(false);
            }
        };
        let budget = match req.query_param("budget") {
            None => None,
            Some(v) => match v.parse::<u64>() {
                Ok(n) => Some(n.max(1)),
                Err(_) => {
                    json_error(writer, 400, &format!("budget: not a number: {v:?}"))?;
                    return Ok(false);
                }
            },
        };
        let kind = match body_kind(req) {
            Ok(k) => k,
            Err(e) => {
                self.metrics.http_error();
                framing_error_response(writer, &e)?;
                return Ok(false);
            }
        };
        let (tenant, created) = self.hub.tenant(id, cfg, budget);
        if created {
            self.metrics.session_opened();
        }
        let started = Instant::now();
        let body = BodyReader::new(reader, kind, &self.limits);
        let mut lines = BodyLines::new(body);
        let mut batch: Vec<Event> = Vec::with_capacity(EVENT_BATCH);
        let mut line_no = 0usize;
        let mut accepted = 0u64;
        let mut last = IntakeStats::default();
        loop {
            let line = match lines.next_line() {
                Ok(l) => l,
                Err(e) => {
                    self.metrics.http_error();
                    self.metrics.events(accepted);
                    framing_error_response(writer, &e)?;
                    return Ok(false);
                }
            };
            if let Some(l) = &line {
                line_no += 1;
                let trimmed = l.trim();
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    continue;
                }
                match parse_event(trimmed, line_no) {
                    Ok(ev) => batch.push(ev),
                    Err(e) => {
                        self.metrics.events(accepted);
                        json_error(writer, 400, &format!("bad event: {e}"))?;
                        return Ok(false);
                    }
                }
            }
            let at_end = line.is_none();
            if (at_end || batch.len() >= EVENT_BATCH) && !batch.is_empty() {
                match tenant.apply_events(&batch) {
                    IntakeOutcome::Accepted(st) => {
                        accepted += st.accepted;
                        last = st;
                        batch.clear();
                    }
                    IntakeOutcome::Backpressure(st) => {
                        accepted += st.accepted;
                        self.metrics.backpressure();
                        self.metrics.events(accepted);
                        let body = format!(
                            "{{\"error\":\"staging budget exhausted\",\"session\":\"{}\",\
                             \"accepted\":{},{}}}",
                            json_escape(id),
                            accepted,
                            intake_stats_json(&st),
                        );
                        write_response(
                            writer,
                            429,
                            "application/json",
                            body.as_bytes(),
                            &[("Retry-After", "1".to_string())],
                            false,
                        )?;
                        return Ok(false);
                    }
                    IntakeOutcome::StreamError { stats, message } => {
                        accepted += stats.accepted;
                        self.metrics.events(accepted);
                        let body = format!(
                            "{{\"error\":\"{}\",\"session\":\"{}\",\"accepted\":{},{}}}",
                            json_escape(&message),
                            json_escape(id),
                            accepted,
                            intake_stats_json(&stats),
                        );
                        write_response(
                            writer,
                            409,
                            "application/json",
                            body.as_bytes(),
                            &[],
                            false,
                        )?;
                        return Ok(false);
                    }
                    IntakeOutcome::Finished => {
                        json_error(writer, 409, "session already finished")?;
                        return Ok(false);
                    }
                }
            }
            if at_end {
                break;
            }
        }
        self.metrics.events(accepted);
        self.metrics.intake(started.elapsed().as_micros() as u64);
        let body = format!(
            "{{\"session\":\"{}\",\"accepted\":{},{}}}",
            json_escape(id),
            accepted,
            intake_stats_json(&last),
        );
        write_response(writer, 200, "application/json", body.as_bytes(), &[], true)?;
        Ok(true)
    }

    fn post_finish<R: BufRead, W: Write>(
        &self,
        req: &Request,
        id: &str,
        reader: &mut R,
        writer: &mut W,
    ) -> io::Result<bool> {
        let id = id.to_string();
        if !self.consume_body(req, reader, writer)? {
            return Ok(false);
        }
        let was_open = match self.hub.get(&id) {
            Some(t) => !t.stats().1,
            None => {
                json_error(writer, 404, "unknown session")?;
                return Ok(false);
            }
        };
        let Some(summary) = self.hub.finish(&id) else {
            json_error(writer, 404, "unknown session")?;
            return Ok(false);
        };
        if was_open {
            self.metrics.session_finished();
        }
        let body = summary_json(&summary);
        write_response(writer, 200, "application/json", body.as_bytes(), &[], true)?;
        Ok(true)
    }

    fn get_violations<W: Write>(
        &self,
        req: &Request,
        id: &str,
        writer: &mut W,
    ) -> io::Result<bool> {
        let Some(tenant) = self.hub.get(id) else {
            json_error(writer, 404, "unknown session")?;
            return Ok(false);
        };
        let since = match req.query_param("since") {
            None => 0,
            Some(v) => match v.parse::<u64>() {
                Ok(n) => n,
                Err(_) => {
                    json_error(writer, 400, &format!("since: not a number: {v:?}"))?;
                    return Ok(false);
                }
            },
        };
        let wait = match req.query_param("wait_ms") {
            None => Duration::ZERO,
            Some(v) => match v.parse::<u64>() {
                Ok(ms) => Duration::from_millis(ms).min(MAX_POLL),
                Err(_) => {
                    json_error(writer, 400, &format!("wait_ms: not a number: {v:?}"))?;
                    return Ok(false);
                }
            },
        };
        let (records, finished) = tenant.violations_since(since, wait);
        let mut items = String::new();
        for r in &records {
            if !items.is_empty() {
                items.push(',');
            }
            let kind = match &r.kind {
                Some(k) => format!("\"{}\"", json_escape(k)),
                None => "null".to_string(),
            };
            items.push_str(&format!(
                "{{\"seq\":{},\"kind\":{},\"message\":\"{}\"}}",
                r.seq,
                kind,
                json_escape(&r.message)
            ));
        }
        let body = format!(
            "{{\"session\":\"{}\",\"finished\":{},\"violations\":[{}]}}",
            json_escape(id),
            finished,
            items
        );
        write_response(writer, 200, "application/json", body.as_bytes(), &[], true)?;
        Ok(true)
    }
}

/// Maps a framing error to its status and closes the exchange;
/// [`HttpError::Closed`] and raw I/O errors get no response (the peer is
/// gone or the socket is unusable).
fn framing_error_response<W: Write>(writer: &mut W, e: &HttpError) -> io::Result<()> {
    let (status, msg) = match e {
        HttpError::Closed | HttpError::Io(_) => return Ok(()),
        HttpError::Malformed(m) => (400, m.clone()),
        HttpError::TooLarge("request head") => (431, "request head too large".to_string()),
        HttpError::TooLarge(what) => (413, format!("{what} too large")),
        HttpError::Timeout => (408, "read timed out".to_string()),
    };
    json_error(writer, status, &msg)
}

/// Writes a one-field JSON error body and marks the connection closed.
fn json_error<W: Write>(writer: &mut W, status: u16, message: &str) -> io::Result<()> {
    let body = format!("{{\"error\":\"{}\"}}", json_escape(message));
    write_response(
        writer,
        status,
        "application/json",
        body.as_bytes(),
        &[],
        false,
    )
}

fn intake_stats_json(st: &IntakeStats) -> String {
    format!(
        "\"events\":{},\"staged\":{},\"live\":{},\"violations\":{}",
        st.events, st.staged, st.live, st.violations
    )
}

fn stream_stats_json(s: &StreamStats) -> String {
    format!(
        "\"events\":{},\"processed\":{},\"retired_txns\":{},\"live_txns\":{},\
         \"peak_live_txns\":{},\"staged_txns\":{},\"peak_staged_txns\":{},\
         \"live_edges\":{},\"violations\":{},\"horizon_misses\":{},\"implicit_aborts\":{}",
        s.events,
        s.processed,
        s.retired_txns,
        s.live_txns,
        s.peak_live_txns,
        s.staged_txns,
        s.peak_staged_txns,
        s.live_edges,
        s.violations,
        s.horizon_misses,
        s.implicit_aborts
    )
}

/// The terminal summary of a finished tenant, as JSON.
pub fn summary_json(s: &SessionSummary) -> String {
    let error = match &s.error {
        Some(e) => format!("\"{}\"", json_escape(e)),
        None => "null".to_string(),
    };
    format!(
        "{{\"session\":\"{}\",\"level\":\"{}\",\"consistent\":{},\"error\":{},\"stats\":{{{}}}}}",
        json_escape(&s.id),
        s.level.short_name(),
        s.consistent,
        error,
        stream_stats_json(&s.stats)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn server() -> Server {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            obs: Obs::disabled(),
            ..ServeConfig::default()
        };
        Server::bind(cfg).expect("bind ephemeral")
    }

    fn roundtrip(server: &Server, raw: &str) -> String {
        let mut sock = TcpStream::connect(server.local_addr()).expect("connect");
        sock.write_all(raw.as_bytes()).expect("send");
        let _ = sock.shutdown(std::net::Shutdown::Write);
        let mut out = String::new();
        sock.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn healthz_and_shutdown() {
        let server = server();
        let token = server.shutdown_token();
        std::thread::scope(|s| {
            let handle = s.spawn(|| server.run().expect("run"));
            let resp = roundtrip(
                &server,
                "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
            );
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
            assert!(resp.contains("\"status\":\"ok\""), "{resp}");
            let resp = roundtrip(&server, "BOGUS nonsense\r\n\r\n");
            assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
            token.trigger();
            let summary = handle.join().expect("join");
            assert!(summary.sessions.is_empty());
        });
    }

    #[test]
    fn event_intake_and_finish() {
        let server = server();
        let token = server.shutdown_token();
        std::thread::scope(|s| {
            let handle = s.spawn(|| server.run().expect("run"));
            let ndjson = "{\"type\":\"begin\",\"session\":1}\n\
                          {\"type\":\"write\",\"session\":1,\"key\":10,\"value\":100}\n\
                          {\"type\":\"commit\",\"session\":1}\n";
            let resp = roundtrip(
                &server,
                &format!(
                    "POST /v1/sessions/t1/events HTTP/1.1\r\nHost: x\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{}",
                    ndjson.len(),
                    ndjson
                ),
            );
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
            assert!(resp.contains("\"accepted\":3"), "{resp}");
            let resp = roundtrip(
                &server,
                "POST /v1/sessions/t1/finish HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
            );
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
            assert!(resp.contains("\"consistent\":true"), "{resp}");
            token.trigger();
            handle.join().expect("join");
        });
    }
}
