//! SIGTERM/SIGINT → [`ShutdownToken`] bridging, without crates.io.
//!
//! std has no signal API, so this module registers a C `signal(2)`
//! handler directly (the crate's only `unsafe` island). The handler does
//! the one thing async-signal-safety allows — a relaxed atomic store into
//! a process-global flag — and a tiny watcher thread forwards the flag to
//! the [`ShutdownToken`] so the rest of the system stays signal-free.
//! A second signal while shutdown is already underway falls back to the
//! default disposition, so a stuck drain can still be killed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use awdit_stream::ShutdownToken;

/// Set by the signal handler; polled by the watcher thread.
static SIGNAL_FLAG: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    SIGNAL_FLAG.store(true, Ordering::Relaxed);
}

/// Registers SIGINT/SIGTERM handlers that trigger `token`, plus the
/// watcher thread that forwards the flag. Returns `false` when handlers
/// could not be installed (non-unix targets; the watcher still runs so a
/// programmatic `token.trigger()` keeps working).
pub fn install_signal_handlers(token: ShutdownToken) -> bool {
    let installed = install_raw_handlers();
    let watcher = std::thread::Builder::new()
        .name("awdit-signal-watch".into())
        .spawn(move || loop {
            if SIGNAL_FLAG.load(Ordering::Relaxed) {
                token.trigger();
                restore_default_handlers();
                return;
            }
            if token.is_triggered() {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    installed && watcher.is_ok()
}

#[cfg(unix)]
#[allow(unsafe_code)]
fn install_raw_handlers() -> bool {
    // `signal(2)` with a plain function pointer: the handler body is one
    // atomic store, which is async-signal-safe.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_ERR: usize = usize::MAX;
    unsafe {
        let a = signal(SIGINT, on_signal as *const () as usize);
        let b = signal(SIGTERM, on_signal as *const () as usize);
        a != SIG_ERR && b != SIG_ERR
    }
}

#[cfg(not(unix))]
fn install_raw_handlers() -> bool {
    false
}

#[cfg(unix)]
#[allow(unsafe_code)]
fn restore_default_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIG_DFL: usize = 0;
    unsafe {
        signal(2, SIG_DFL);
        signal(15, SIG_DFL);
    }
}

#[cfg(not(unix))]
fn restore_default_handlers() {}
