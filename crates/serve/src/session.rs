//! Multi-tenant session multiplexing: one [`OnlineChecker`] per tenant,
//! drawn from a shared warm pool.
//!
//! A *tenant* is a named event stream (`/v1/sessions/{id}/…`). Each
//! tenant owns its own checker — watermark GC bounds its live set
//! independently of every other tenant — plus an append-only violation
//! log with monotone sequence numbers for retrieval and long-polling.
//! Connections are not sessions: any number of connections may feed or
//! poll one tenant (its state sits behind a per-tenant mutex), and a
//! tenant outlives the connections that created it until it is finished.
//!
//! Finishing a tenant runs the checker's terminal pass
//! ([`OnlineChecker::drain`]) — thin-air reads, `so ∪ wr` deadlocks —
//! and returns the emptied-but-warm checker to the hub's pool, so the
//! next tenant (a reconnect, a new client) starts with pre-grown hash
//! maps, index slabs, and graph adjacency instead of cold allocations.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use awdit_core::parallel::Pool;
use awdit_core::IsolationLevel;
use awdit_obs::Obs;
use awdit_stream::{OnlineChecker, StreamConfig, StreamStats, StreamViolation};

/// Tenant ids are path segments; keep them boring.
pub fn valid_session_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

/// One retrievable violation, with its position in the tenant's log.
#[derive(Clone, Debug)]
pub struct ViolationRecord {
    /// 1-based position in the tenant's violation log.
    pub seq: u64,
    /// Kebab-case batch classification (`None` for beyond-horizon reads).
    pub kind: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl ViolationRecord {
    fn from_violation(seq: u64, v: &StreamViolation) -> Self {
        ViolationRecord {
            seq,
            kind: v.kind().map(|k| k.wire_name().to_string()),
            message: v.to_string(),
        }
    }
}

/// The terminal summary of a finished tenant.
#[derive(Clone, Debug)]
pub struct SessionSummary {
    /// Tenant id.
    pub id: String,
    /// Level the stream was checked at.
    pub level: IsolationLevel,
    /// Whether the whole stream was consistent.
    pub consistent: bool,
    /// Final stream statistics.
    pub stats: StreamStats,
    /// Sticky stream error, if the stream was poisoned.
    pub error: Option<String>,
}

/// Mutable per-tenant state, behind the tenant mutex.
struct TenantState {
    checker: Option<OnlineChecker>,
    log: Vec<ViolationRecord>,
    next_seq: u64,
    finished: Option<SessionSummary>,
    staging_budget: u64,
}

/// A live tenant: state plus a condvar for violation long-polling.
pub struct Tenant {
    state: Mutex<TenantState>,
    new_violations: Condvar,
}

/// What one intake batch did to a tenant.
#[derive(Clone, Debug)]
pub enum IntakeOutcome {
    /// All offered events were applied.
    Accepted(IntakeStats),
    /// Intake stopped early: the staging set hit the tenant's budget.
    /// The client should retry the unaccepted suffix after a pause.
    Backpressure(IntakeStats),
    /// The stream is poisoned (protocol or unique-value error); applies
    /// stopped at the offending event.
    StreamError {
        /// Progress up to the error.
        stats: IntakeStats,
        /// The sticky error, rendered.
        message: String,
    },
    /// The tenant was already finished.
    Finished,
}

/// Progress counters returned with every intake response.
#[derive(Copy, Clone, Debug, Default)]
pub struct IntakeStats {
    /// Events applied by this request.
    pub accepted: u64,
    /// Tenant-lifetime events applied.
    pub events: u64,
    /// Transactions currently staged (waiting on dependencies).
    pub staged: u64,
    /// Transactions currently live (processed, unretired).
    pub live: u64,
    /// Tenant-lifetime violations detected.
    pub violations: u64,
}

impl Tenant {
    fn intake_stats(checker: &OnlineChecker, accepted: u64) -> IntakeStats {
        let s = checker.stats();
        IntakeStats {
            accepted,
            events: s.events,
            staged: s.staged_txns,
            live: s.live_txns,
            violations: s.violations,
        }
    }

    /// Applies a batch of events under the tenant lock, enforcing the
    /// staging budget between events. Newly detected violations move to
    /// the retrieval log and wake long-pollers.
    pub fn apply_events(&self, events: &[awdit_stream::Event]) -> IntakeOutcome {
        let mut st = self.state.lock().unwrap();
        if st.finished.is_some() {
            return IntakeOutcome::Finished;
        }
        let budget = st.staging_budget;
        let checker = st.checker.as_mut().expect("unfinished tenant has checker");
        let mut accepted = 0u64;
        let mut error = None;
        let mut backpressure = false;
        for event in events {
            if checker.stats().staged_txns >= budget {
                backpressure = true;
                break;
            }
            match checker.apply(event) {
                Ok(()) => accepted += 1,
                Err(e) => {
                    error = Some(e.to_string());
                    break;
                }
            }
        }
        let stats = Self::intake_stats(checker, accepted);
        let fresh = checker.drain_violations();
        if !fresh.is_empty() {
            for v in &fresh {
                st.next_seq += 1;
                let seq = st.next_seq;
                st.log.push(ViolationRecord::from_violation(seq, v));
            }
            self.new_violations.notify_all();
        }
        match error {
            Some(message) => IntakeOutcome::StreamError { stats, message },
            None if backpressure => IntakeOutcome::Backpressure(stats),
            None => IntakeOutcome::Accepted(stats),
        }
    }

    /// Violations with `seq > since`, waiting up to `wait` for new ones
    /// when the log is already drained past `since`. Returns the records
    /// plus whether the tenant is finished.
    pub fn violations_since(&self, since: u64, wait: Duration) -> (Vec<ViolationRecord>, bool) {
        let mut st = self.state.lock().unwrap();
        if !wait.is_zero() {
            let deadline = std::time::Instant::now() + wait;
            while st.next_seq <= since && st.finished.is_none() {
                let now = std::time::Instant::now();
                let Some(left) = deadline.checked_duration_since(now) else {
                    break;
                };
                if left.is_zero() {
                    break;
                }
                let (guard, _) = self.new_violations.wait_timeout(st, left).unwrap();
                st = guard;
                if st.next_seq > since {
                    break;
                }
                if std::time::Instant::now() >= deadline {
                    break;
                }
            }
        }
        let records = st.log.iter().filter(|r| r.seq > since).cloned().collect();
        (records, st.finished.is_some())
    }

    /// Point-in-time statistics (for `/healthz`).
    pub fn stats(&self) -> (StreamStats, bool) {
        let st = self.state.lock().unwrap();
        match (&st.checker, &st.finished) {
            (Some(c), _) => (*c.stats(), st.finished.is_some()),
            (None, Some(s)) => (s.stats, true),
            (None, None) => (StreamStats::default(), false),
        }
    }
}

/// The hub: tenant registry plus the warm checker pool.
pub struct SessionHub {
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
    pool: Mutex<Vec<OnlineChecker>>,
    defaults: StreamConfig,
    default_budget: u64,
    /// Cap on pooled warm checkers (beyond it, finished checkers are
    /// simply dropped).
    warm_cap: usize,
    /// The server-wide worker pool every tenant checker dispatches on —
    /// one set of parked threads for the whole daemon, not one per
    /// tenant.
    worker_pool: Arc<Pool>,
    obs: Obs,
}

impl SessionHub {
    /// A hub whose tenants default to `defaults` and `staging_budget`,
    /// parks at most `warm_cap` finished checkers for reuse, and runs
    /// every checker on the shared `worker_pool`.
    pub fn new(
        defaults: StreamConfig,
        staging_budget: u64,
        warm_cap: usize,
        worker_pool: Arc<Pool>,
        obs: Obs,
    ) -> Self {
        SessionHub {
            tenants: Mutex::new(HashMap::new()),
            pool: Mutex::new(Vec::new()),
            defaults,
            default_budget: staging_budget,
            warm_cap,
            worker_pool,
            obs,
        }
    }

    /// The hub-wide default stream configuration.
    pub fn defaults(&self) -> StreamConfig {
        self.defaults
    }

    /// The hub-wide default staging budget.
    pub fn default_budget(&self) -> u64 {
        self.default_budget
    }

    /// Number of checkers currently parked in the warm pool.
    pub fn pooled(&self) -> usize {
        self.pool.lock().unwrap().len()
    }

    /// The warm-pool cap this hub was configured with.
    pub fn warm_cap(&self) -> usize {
        self.warm_cap
    }

    /// A warm checker from the pool (reconfigured for `cfg`), or a fresh
    /// one on the shared worker pool.
    fn checker_for(&self, cfg: StreamConfig) -> OnlineChecker {
        match self.pool.lock().unwrap().pop() {
            Some(mut c) => {
                c.reconfigure(cfg);
                c
            }
            None => {
                let mut c = OnlineChecker::with_config_pool(cfg, Arc::clone(&self.worker_pool));
                c.set_obs(self.obs.clone());
                c
            }
        }
    }

    /// The tenant under `id`, creating it with `cfg`/`budget` (falling
    /// back to the hub defaults) on first contact; the boolean reports
    /// whether this call created it. Configuration overrides on an
    /// *existing* tenant are ignored — the stream is already underway.
    pub fn tenant(
        &self,
        id: &str,
        cfg: Option<StreamConfig>,
        budget: Option<u64>,
    ) -> (Arc<Tenant>, bool) {
        let mut tenants = self.tenants.lock().unwrap();
        if let Some(t) = tenants.get(id) {
            return (t.clone(), false);
        }
        let checker = self.checker_for(cfg.unwrap_or(self.defaults));
        let tenant = Arc::new(Tenant {
            state: Mutex::new(TenantState {
                checker: Some(checker),
                log: Vec::new(),
                next_seq: 0,
                finished: None,
                staging_budget: budget.unwrap_or(self.default_budget).max(1),
            }),
            new_violations: Condvar::new(),
        });
        tenants.insert(id.to_string(), tenant.clone());
        (tenant, true)
    }

    /// The tenant under `id`, if it exists.
    pub fn get(&self, id: &str) -> Option<Arc<Tenant>> {
        self.tenants.lock().unwrap().get(id).cloned()
    }

    /// Ids of all known tenants, sorted.
    pub fn ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.tenants.lock().unwrap().keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Finalizes tenant `id`: runs the checker's terminal pass, moves its
    /// last violations into the log, stores the summary, and parks the
    /// warm checker in the pool. Idempotent — finishing a finished tenant
    /// returns the stored summary.
    pub fn finish(&self, id: &str) -> Option<SessionSummary> {
        let tenant = self.get(id)?;
        let mut st = tenant.state.lock().unwrap();
        if let Some(done) = &st.finished {
            return Some(done.clone());
        }
        let mut checker = st.checker.take().expect("unfinished tenant has checker");
        let level = checker.level();
        let summary = match checker.drain() {
            Ok(outcome) => {
                for v in outcome.violations() {
                    st.next_seq += 1;
                    let seq = st.next_seq;
                    st.log.push(ViolationRecord::from_violation(seq, v));
                }
                SessionSummary {
                    id: id.to_string(),
                    level: outcome.level(),
                    consistent: outcome.is_consistent(),
                    stats: outcome.stats(),
                    error: None,
                }
            }
            Err(e) => SessionSummary {
                id: id.to_string(),
                level,
                consistent: false,
                stats: StreamStats::default(),
                error: Some(e.to_string()),
            },
        };
        {
            let mut pool = self.pool.lock().unwrap();
            if pool.len() < self.warm_cap {
                pool.push(checker);
            }
        }
        st.finished = Some(summary.clone());
        tenant.new_violations.notify_all();
        Some(summary)
    }

    /// Finalizes every unfinished tenant (graceful shutdown) and returns
    /// all terminal summaries, sorted by id.
    pub fn drain_all(&self) -> Vec<SessionSummary> {
        let ids = self.ids();
        ids.iter().filter_map(|id| self.finish(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_stream::Event;

    fn hub() -> SessionHub {
        SessionHub::new(
            StreamConfig::default(),
            1024,
            32,
            Arc::new(Pool::new(1)),
            Obs::disabled(),
        )
    }

    #[test]
    fn session_ids_are_validated() {
        assert!(valid_session_id("tenant-1.a_b"));
        assert!(!valid_session_id(""));
        assert!(!valid_session_id("a/b"));
        assert!(!valid_session_id(&"x".repeat(65)));
    }

    #[test]
    fn intake_logs_violations_and_finish_is_idempotent() {
        let hub = hub();
        let (t, _) = hub.tenant("a", None, None);
        // A committed read of a never-written value stays pending until
        // finish, where it surfaces as thin-air.
        let events = [
            Event::Begin { session: 0 },
            Event::Read {
                session: 0,
                key: 1,
                value: 99,
            },
            Event::Commit { session: 0 },
        ];
        match t.apply_events(&events) {
            IntakeOutcome::Accepted(s) => assert_eq!(s.accepted, 3),
            other => panic!("unexpected outcome {other:?}"),
        }
        let s1 = hub.finish("a").unwrap();
        assert!(!s1.consistent);
        let s2 = hub.finish("a").unwrap();
        assert_eq!(s1.consistent, s2.consistent);
        let (records, finished) = t.violations_since(0, Duration::ZERO);
        assert!(finished);
        assert_eq!(records.len(), 1);
        assert!(records[0].message.contains("thin-air"));
        // The warm checker went back to the pool and gets reused.
        assert_eq!(hub.pooled(), 1);
        let (_b, created) = hub.tenant("b", None, None);
        assert!(created);
        assert_eq!(hub.pooled(), 0);
    }

    #[test]
    fn staging_budget_stops_intake() {
        let hub = hub();
        let (t, _) = hub.tenant("a", None, Some(2));
        // Each transaction reads a value nobody wrote: all stay staged.
        let mut events = Vec::new();
        for i in 0..10u64 {
            events.push(Event::Begin { session: i });
            events.push(Event::Read {
                session: i,
                key: 7,
                value: 1000 + i,
            });
            events.push(Event::Commit { session: i });
        }
        match t.apply_events(&events) {
            IntakeOutcome::Backpressure(s) => {
                assert!(s.accepted < events.len() as u64);
                assert!(s.staged >= 2);
            }
            other => panic!("expected backpressure, got {other:?}"),
        }
    }

    #[test]
    fn events_after_finish_are_rejected() {
        let hub = hub();
        let (t, _) = hub.tenant("a", None, None);
        hub.finish("a").unwrap();
        match t.apply_events(&[Event::Begin { session: 0 }]) {
            IntakeOutcome::Finished => {}
            other => panic!("expected Finished, got {other:?}"),
        }
    }
}
