//! `awdit serve` — a multi-tenant network daemon for online isolation
//! checking.
//!
//! This crate puts the streaming checker behind a TCP socket: clients
//! stream NDJSON events into named tenants (`POST
//! /v1/sessions/{id}/events`), upload whole histories for one-shot batch
//! verdicts (`POST /v1/check`), and retrieve violations as they are
//! found (`GET /v1/sessions/{id}/violations`, with long-polling).
//! Everything is hand-rolled on `std` — the HTTP/1.1 subset in
//! [`http`], the `signal(2)` bridge in [`signal`] — because the engine
//! itself has no dependencies and its front door should not either.
//!
//! The architecture is three layers:
//!
//! * [`http`] — request framing: bounded heads, `Content-Length` and
//!   chunked bodies, NDJSON line iteration, response writing. Malformed
//!   input of any shape maps to a clean 4xx, never a panic.
//! * [`session`] — multi-tenant state: one
//!   [`OnlineChecker`](awdit_stream::OnlineChecker) per tenant with its
//!   own watermark GC, an append-only violation log with monotone
//!   sequence numbers for retrieval, staging-budget backpressure, and a
//!   warm checker pool so reconnecting tenants recycle allocations.
//! * [`server`] — the daemon: a thread-per-core accept pool over one
//!   shared listener, request routing, graceful drain on
//!   [`ShutdownToken`](awdit_stream::ShutdownToken) trigger (every open
//!   tenant is finalized and its terminal summary returned).

#![deny(unsafe_code)] // sole exception: the `signal(2)` island in `signal`
#![warn(missing_docs)]

pub mod http;
pub mod server;
pub mod session;
pub mod signal;

pub use http::{HttpError, HttpLimits};
pub use server::{summary_json, ServeConfig, ServeSummary, Server};
pub use session::{
    valid_session_id, IntakeOutcome, IntakeStats, SessionHub, SessionSummary, Tenant,
    ViolationRecord,
};
pub use signal::install_signal_handlers;
