//! Live counters of an [`OnlineChecker`](crate::OnlineChecker) run.

/// Counters tracking stream progress and memory behaviour. `live_txns` vs
/// `retired_txns` is the headline pair: under watermark pruning the former
/// stays bounded while the latter grows with the stream.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Events accepted.
    pub events: u64,
    /// Transactions begun.
    pub begins: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted (including implicit aborts at `finish`).
    pub aborts: u64,
    /// Committed transactions fully processed (checked and indexed).
    pub processed: u64,
    /// Processed transactions retired by watermark pruning.
    pub retired_txns: u64,
    /// Processed transactions currently held live (`processed - retired`).
    pub live_txns: u64,
    /// High-water mark of `live_txns`.
    pub peak_live_txns: u64,
    /// Committed transactions currently staged (waiting on dependencies).
    pub staged_txns: u64,
    /// High-water mark of `staged_txns`.
    pub peak_staged_txns: u64,
    /// Commit-relation edges currently live in the incremental DAG.
    pub live_edges: u64,
    /// Violations emitted so far.
    pub violations: u64,
    /// Reads that missed the retained window because their key had pruned
    /// writes (reported as beyond-horizon violations).
    pub horizon_misses: u64,
    /// Open transactions force-aborted by `finish`.
    pub implicit_aborts: u64,
}
