//! # awdit-stream — online, incremental isolation checking
//!
//! The batch pipeline in `awdit-core` checks a *complete* history in
//! optimal time. This crate turns it into an **online monitor**: an
//! [`OnlineChecker`] accepts transaction [`Event`]s as they happen —
//! `begin`/`write`/`read`/`commit`/`abort` per session, mirroring
//! [`HistoryBuilder`](awdit_core::HistoryBuilder) — maintains the
//! saturated commit relation `co′` incrementally for the chosen isolation
//! level, and reports every [`StreamViolation`] the moment it becomes
//! detectable rather than at end-of-history.
//!
//! Three pieces make that work:
//!
//! * the **same saturation kernels** the batch checkers run
//!   ([`awdit_core::incremental`]), driven one commit at a time over a
//!   growing [`StreamIndex`];
//! * an **incrementally maintained DAG** ([`IncrementalDag`],
//!   Pearce–Kelly dynamic topological order) that flags the first edge
//!   closing a cycle, with full per-edge provenance;
//! * **watermark pruning**: once every session's frontier has advanced
//!   past a transaction, its settled state (non-latest writes per key,
//!   graph node, clock, value-map entries) is retired and its slot
//!   recycled, so memory tracks the watermark lag instead of the stream
//!   length ([`StreamStats`] exposes `live_txns` vs `retired_txns`).
//!
//! With pruning disabled the checker is *exact*: it reaches the same
//! verdict as the batch [`check`](awdit_core::check) on every history
//! (property-tested across RC/RA/CC in `tests/streaming.rs`). With
//! pruning enabled, reads older than the retained window are surfaced as
//! explicit beyond-horizon violations instead of being misclassified.
//!
//! ```
//! use awdit_core::IsolationLevel;
//! use awdit_stream::OnlineChecker;
//!
//! let mut c = OnlineChecker::new(IsolationLevel::ReadAtomic);
//! c.begin(0).unwrap();
//! c.write(0, 1, 10).unwrap();
//! c.write(0, 2, 10).unwrap();
//! c.commit(0).unwrap();
//! c.begin(1).unwrap();
//! c.read(1, 1, 10).unwrap();
//! c.commit(1).unwrap();
//! assert!(c.drain_violations().is_empty());
//! assert!(c.finish().unwrap().is_consistent());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod dag;
pub mod event;
pub mod index;
pub mod shutdown;
pub mod stats;

pub use checker::{
    EngineExt, OnlineChecker, StreamConfig, StreamError, StreamOutcome, StreamViolation,
};
pub use dag::{DagEdge, IncrementalDag};
pub use event::{events_of_history, for_each_event, Event};
pub use index::{StreamIndex, TxnMeta};
pub use shutdown::ShutdownToken;
pub use stats::StreamStats;
