//! The growing (and, under pruning, shrinking) per-transaction index behind
//! [`OnlineChecker`](crate::OnlineChecker).
//!
//! A `StreamIndex` is the streaming mirror of
//! [`awdit_core::HistoryIndex`]: it implements
//! [`CommitView`] so the saturation
//! kernels cannot tell batch and stream apart. Dense ids are *slab slots*:
//! watermark pruning retires a transaction, frees its slot, and a later
//! transaction may reuse it — keeping memory proportional to the number of
//! *live* transactions rather than the length of the stream.

use std::collections::HashMap;

use awdit_core::incremental::CommitView;
use awdit_core::{DenseId, ExtRead, Key, TxnId, Value};

/// Per-transaction derived data, mirroring the batch index's layout.
#[derive(Clone, Debug)]
pub struct TxnMeta {
    /// User-facing transaction id.
    pub txn_id: TxnId,
    /// Dense session index.
    pub session: u32,
    /// Position within the session, counting committed transactions.
    pub committed_pos: u32,
    /// Sorted, deduplicated keys written.
    pub keys_written: Vec<Key>,
    /// Sorted, deduplicated keys read externally (committed writers).
    pub keys_read: Vec<Key>,
    /// Writer of the `po`-first external read per key (parallel to
    /// `keys_read`).
    pub first_writer_per_key: Vec<DenseId>,
    /// External reads in program order.
    pub ext_reads: Vec<ExtRead>,
    /// Distinct `(key, writer)` pairs, sorted.
    pub read_pairs: Vec<(Key, DenseId)>,
    /// Every write of the transaction (for value-map cleanup at pruning).
    pub writes: Vec<(Key, Value)>,
    /// Final (`po`-last) write position per key, sorted by key.
    pub final_writes: Vec<(Key, u32)>,
    /// Staged readers currently holding a resolved reference to this
    /// transaction (blocks pruning).
    pub pending_readers: u32,
}

impl TxnMeta {
    /// The final write position of `key`, if the transaction writes it.
    pub fn final_write_of(&self, key: Key) -> Option<u32> {
        self.final_writes
            .binary_search_by_key(&key, |&(k, _)| k)
            .ok()
            .map(|i| self.final_writes[i].1)
    }
}

/// Slab-backed streaming index over the live committed transactions.
#[derive(Debug, Default)]
pub struct StreamIndex {
    slots: Vec<Option<TxnMeta>>,
    free: Vec<u32>,
    live: usize,
    num_sessions: usize,
    /// Per key: sessions writing it (ascending), each with its live
    /// committed writers in session order — the `Writes_s'[x]` arrays.
    writes_by_key: HashMap<Key, Vec<(u32, Vec<DenseId>)>>,
}

impl StreamIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (processed, unretired) transactions.
    pub fn num_live(&self) -> usize {
        self.live
    }

    /// Empties the index for a fresh stream, retaining the slab's and the
    /// write map's allocation capacity.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        self.num_sessions = 0;
        self.writes_by_key.clear();
    }

    /// Tracks that `k` sessions exist.
    pub fn ensure_sessions(&mut self, k: usize) {
        self.num_sessions = self.num_sessions.max(k);
    }

    /// Inserts a processed transaction, returning its slot.
    pub fn insert(&mut self, meta: TxnMeta) -> DenseId {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(meta);
                s
            }
            None => {
                self.slots.push(Some(meta));
                (self.slots.len() - 1) as u32
            }
        };
        self.live += 1;
        let m = self.slots[slot as usize].as_ref().unwrap();
        let (session, pos, keys) = (m.session, m.committed_pos, m.keys_written.clone());
        for key in keys {
            let per_session = self.writes_by_key.entry(key).or_default();
            let i = match per_session.binary_search_by_key(&session, |&(s, _)| s) {
                Ok(i) => i,
                Err(i) => {
                    per_session.insert(i, (session, Vec::new()));
                    i
                }
            };
            // Transactions of one session are processed in session order, so
            // pushing keeps the list sorted by committed position.
            debug_assert!(per_session[i]
                .1
                .last()
                .is_none_or(|&w| self.slots[w as usize].as_ref().unwrap().committed_pos < pos));
            per_session[i].1.push(slot);
        }
        slot
    }

    /// The metadata of a live slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is free.
    pub fn meta(&self, d: DenseId) -> &TxnMeta {
        self.slots[d as usize].as_ref().expect("live slot")
    }

    /// Mutable metadata of a live slot.
    pub fn meta_mut(&mut self, d: DenseId) -> &mut TxnMeta {
        self.slots[d as usize].as_mut().expect("live slot")
    }

    /// Iterates over the live slots.
    pub fn live_slots(&self) -> impl Iterator<Item = (DenseId, &TxnMeta)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.as_ref().map(|m| (i as u32, m)))
    }

    /// The live writers of `key` in session `s`, in session order.
    pub fn session_key_writers(&self, s: u32, key: Key) -> &[DenseId] {
        self.writes_by_key
            .get(&key)
            .and_then(|per_session| {
                per_session
                    .binary_search_by_key(&s, |&(sess, _)| sess)
                    .ok()
                    .map(|i| per_session[i].1.as_slice())
            })
            .unwrap_or(&[])
    }

    /// Retires a slot: removes it from the write lists and frees it for
    /// reuse. Returns the retired metadata (for value-map cleanup).
    pub fn retire(&mut self, d: DenseId) -> TxnMeta {
        let meta = self.slots[d as usize].take().expect("live slot");
        self.live -= 1;
        for &key in &meta.keys_written {
            if let Some(per_session) = self.writes_by_key.get_mut(&key) {
                if let Ok(i) = per_session.binary_search_by_key(&meta.session, |&(s, _)| s) {
                    per_session[i].1.retain(|&w| w != d);
                    if per_session[i].1.is_empty() {
                        per_session.remove(i);
                    }
                }
                if per_session.is_empty() {
                    self.writes_by_key.remove(&key);
                }
            }
        }
        self.free.push(d);
        meta
    }
}

impl CommitView for StreamIndex {
    fn num_sessions(&self) -> usize {
        self.num_sessions
    }
    fn session_of(&self, d: DenseId) -> u32 {
        self.meta(d).session
    }
    fn committed_pos(&self, d: DenseId) -> u32 {
        self.meta(d).committed_pos
    }
    fn ext_reads(&self, d: DenseId) -> &[ExtRead] {
        &self.meta(d).ext_reads
    }
    fn keys_written(&self, d: DenseId) -> &[Key] {
        &self.meta(d).keys_written
    }
    fn keys_read(&self, d: DenseId) -> &[Key] {
        &self.meta(d).keys_read
    }
    fn first_writers(&self, d: DenseId) -> &[DenseId] {
        &self.meta(d).first_writer_per_key
    }
    fn writes_key(&self, d: DenseId, key: Key) -> bool {
        self.meta(d).keys_written.binary_search(&key).is_ok()
    }
    fn read_pairs(&self, d: DenseId) -> &[(Key, DenseId)] {
        &self.meta(d).read_pairs
    }
    fn for_each_key_writes(&self, key: Key, f: &mut dyn FnMut(u32, &[DenseId])) {
        if let Some(per_session) = self.writes_by_key.get(&key) {
            for (s, writers) in per_session {
                f(*s, writers);
            }
        }
    }
}
