//! Transaction stream events — the wire vocabulary of the online checker.
//!
//! Events mirror the [`HistoryBuilder`](awdit_core::HistoryBuilder) mutator
//! calls one-for-one: sessions are named by arbitrary `u64` ids, and events
//! of one session must arrive in that session's real-time order (events of
//! different sessions may interleave arbitrarily).

use std::fmt;

use awdit_core::{History, Op, SessionId};

/// One event of a transaction stream.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Event {
    /// A session opens a transaction.
    Begin {
        /// Session name.
        session: u64,
    },
    /// The open transaction writes `value` to `key`.
    Write {
        /// Session name.
        session: u64,
        /// Key written.
        key: u64,
        /// Value written (unique per key, as in the batch pipeline).
        value: u64,
    },
    /// The open transaction reads `value` from `key`.
    Read {
        /// Session name.
        session: u64,
        /// Key read.
        key: u64,
        /// Value observed.
        value: u64,
    },
    /// The open transaction commits.
    Commit {
        /// Session name.
        session: u64,
    },
    /// The open transaction aborts.
    Abort {
        /// Session name.
        session: u64,
    },
}

impl Event {
    /// The session the event belongs to.
    pub fn session(&self) -> u64 {
        match *self {
            Event::Begin { session }
            | Event::Write { session, .. }
            | Event::Read { session, .. }
            | Event::Commit { session }
            | Event::Abort { session } => session,
        }
    }
}

/// Visits a finished [`History`]'s event-stream form one event at a
/// time, interleaving sessions round-robin (one whole transaction per
/// session per round) — the streaming core of [`events_of_history`],
/// for writers that need no materialized `Vec<Event>`.
///
/// Per-session event order equals session order, as the online checker
/// requires; the cross-session interleaving is one plausible arrival order
/// among many — any of them yields the same verdict.
pub fn for_each_event(h: &History, mut f: impl FnMut(&Event)) {
    let k = h.num_sessions();
    let mut next = vec![0usize; k];
    let mut progressed = true;
    while progressed {
        progressed = false;
        for (s, pos) in next.iter_mut().enumerate() {
            let txns = h.session(SessionId(s as u32));
            if *pos >= txns.len() {
                continue;
            }
            progressed = true;
            let t = txns.txn(*pos);
            *pos += 1;
            let session = s as u64;
            f(&Event::Begin { session });
            for op in t.ops() {
                f(&match *op {
                    Op::Write { key, value } => Event::Write {
                        session,
                        key: h.key_name(key),
                        value: value.0,
                    },
                    Op::Read { key, value, .. } => Event::Read {
                        session,
                        key: h.key_name(key),
                        value: value.0,
                    },
                });
            }
            f(&if t.is_committed() {
                Event::Commit { session }
            } else {
                Event::Abort { session }
            });
        }
    }
}

/// Flattens a finished [`History`] into an event stream — the
/// materialized form of [`for_each_event`].
pub fn events_of_history(h: &History) -> Vec<Event> {
    let mut events = Vec::with_capacity(h.size() + 2 * h.num_txns());
    for_each_event(h, |e| events.push(*e));
    events
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::Begin { session } => write!(f, "s{session}: begin"),
            Event::Write {
                session,
                key,
                value,
            } => write!(f, "s{session}: W({key}, {value})"),
            Event::Read {
                session,
                key,
                value,
            } => write!(f, "s{session}: R({key}, {value})"),
            Event::Commit { session } => write!(f, "s{session}: commit"),
            Event::Abort { session } => write!(f, "s{session}: abort"),
        }
    }
}
