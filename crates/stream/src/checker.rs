//! The online checker: event intake, dependency staging, incremental
//! saturation, online cycle detection, and watermark pruning.
//!
//! # Pipeline
//!
//! Events arrive per session in session order (sessions interleave freely).
//! A committed transaction is **staged** until its dependencies are
//! available: its session's previous committed transaction must be
//! processed, and every external read must resolve to a *closed* writer
//! (committed writers additionally to a *processed* one). Once ready it is
//! **processed**: Read Consistency is checked, the transaction joins the
//! [`StreamIndex`], base `so`/`wr` edges and the level's inferred edges
//! (produced by the same kernels the batch checkers run) are inserted into
//! an incrementally-maintained DAG, and any edge closing a cycle is
//! reported immediately as a violation with full provenance.
//!
//! Reads of values nobody has written yet stay pending — they become
//! thin-air violations at [`finish`](OnlineChecker::finish); transactions
//! deadlocked on each other (a `so ∪ wr` cycle) are detected at `finish`
//! too, mirroring the batch classification.
//!
//! # Watermark pruning
//!
//! The per-session frontier clocks induce a *watermark*: the pointwise
//! minimum clock that every future transaction is guaranteed to dominate.
//! A processed transaction retires once (1) it is below the watermark,
//! (2) it is not the latest retained writer of any of its keys (a
//! *boundary* writer is kept per `(session, key)` so CC lookups below the
//! watermark still find their visible writer), and (3) no staged reader
//! holds a reference to it. Retiring removes its clock, graph node,
//! value-map entries, and index slot — the slot is recycled, so live
//! memory tracks the watermark lag, not the stream length.
//!
//! Commit-order constraints threaded *through* a retired transaction are
//! condensed onto its session-order successors (see
//! [`EdgeKind::Condensed`](awdit_core::graph::EdgeKind)); constraints into
//! a retired transaction's one-off readers are considered settled at the
//! horizon. A later read of a pruned write misses the retained window and
//! is reported as a [`StreamViolation::BeyondHorizon`] (counted in
//! [`StreamStats::horizon_misses`]) rather than misclassified. With
//! pruning disabled the checker is exact and agrees with the batch
//! pipeline on every history.

use std::collections::{HashMap, HashSet, VecDeque};

use awdit_core::graph::{CommitGraph, EdgeKind};
use awdit_core::incremental::{infer_cc_edges, infer_cc_pairs, HbTracker, RaKernel, RcKernel};
use awdit_core::parallel;
use awdit_core::witness::{
    ReadConsistencyViolation, Violation, ViolationKind, WitnessCycle, WitnessEdge,
};
use awdit_core::{IsolationLevel, Key, OpLoc, TxnId, Value, VectorClock};
use awdit_obs::metrics::{Counter, Gauge};
use awdit_obs::Obs;
use std::sync::Arc;

use crate::dag::{DagEdge, IncrementalDag};
use crate::event::Event;
use crate::index::{StreamIndex, TxnMeta};
use crate::shutdown::ShutdownToken;
use crate::stats::StreamStats;

/// Errors that poison a stream (mirroring
/// [`BuildError`](awdit_core::BuildError)): once one occurs, every further
/// [`apply`](OnlineChecker::apply) and the final
/// [`finish`](OnlineChecker::finish) report it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StreamError {
    /// Two writes carry the same `(key, value)` pair, breaking the
    /// unique-value assumption.
    ///
    /// Under watermark pruning this is enforced within the retained window
    /// only: a collision with a write retired past the horizon cannot be
    /// distinguished from a fresh unique value with bounded memory, so it
    /// is not detected (exact mode detects every collision).
    DuplicateWrite {
        /// The key written twice with the same value.
        key: u64,
        /// The duplicated value.
        value: u64,
        /// The first write.
        first: OpLoc,
        /// The offending second write.
        second: OpLoc,
    },
    /// An operation or close event arrived with no open transaction.
    NoOpenTransaction {
        /// The offending session name.
        session: u64,
    },
    /// `begin` arrived while the session already had an open transaction.
    NestedTransaction {
        /// The offending session name.
        session: u64,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::DuplicateWrite {
                key,
                value,
                first,
                second,
            } => write!(
                f,
                "duplicate write of value {value} to key {key} at {second} (first at {first})"
            ),
            StreamError::NoOpenTransaction { session } => {
                write!(f, "event on session {session} with no open transaction")
            }
            StreamError::NestedTransaction { session } => {
                write!(f, "begin on session {session} while a transaction is open")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// A violation reported by the online checker: either one of the batch
/// pipeline's violations, or the stream-specific beyond-horizon read.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StreamViolation {
    /// A violation with a batch-pipeline analog.
    Core(Violation),
    /// A read of a value whose key had writes pruned past the watermark:
    /// the checker cannot distinguish a stale read of a pruned write from a
    /// thin-air read, so it reports the miss explicitly.
    BeyondHorizon {
        /// The reading transaction.
        txn: TxnId,
        /// Position of the read in program order.
        op: u32,
        /// Key name read.
        key: u64,
        /// Value observed.
        value: u64,
    },
}

impl StreamViolation {
    /// The batch classification, if one exists (`None` for beyond-horizon).
    pub fn kind(&self) -> Option<ViolationKind> {
        match self {
            StreamViolation::Core(v) => Some(v.kind()),
            StreamViolation::BeyondHorizon { .. } => None,
        }
    }
}

impl std::fmt::Display for StreamViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamViolation::Core(v) => write!(f, "{v}"),
            StreamViolation::BeyondHorizon {
                txn,
                op,
                key,
                value,
            } => write!(
                f,
                "beyond-horizon read at {txn}[{op}]: R({key}, {value}) precedes the retained window"
            ),
        }
    }
}

/// Configuration of an [`OnlineChecker`].
#[derive(Copy, Clone, Debug)]
pub struct StreamConfig {
    /// The isolation level to check.
    pub level: IsolationLevel,
    /// Whether watermark pruning runs (off = exact batch agreement, memory
    /// grows with the stream).
    pub prune: bool,
    /// Processed transactions between pruning sweeps.
    pub prune_interval: u64,
    /// Maximum number of cycle violations reported (the verdict is
    /// unaffected; this caps witness extraction work, like
    /// [`CheckOptions::max_cycles`](awdit_core::CheckOptions)).
    pub max_cycle_reports: usize,
    /// Worker threads for the per-commit CC inference (`0` = all cores).
    /// A commit whose distinct `(key, writer)` read set is wide enough has
    /// its pairs sharded across scoped workers and the edge sinks merged
    /// in pair order, so the emitted edges — and every verdict and
    /// violation — are bit-identical to `threads = 1`. Narrow commits run
    /// sequentially regardless.
    pub threads: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            level: IsolationLevel::Causal,
            prune: true,
            prune_interval: 256,
            max_cycle_reports: 64,
            threads: 1,
        }
    }
}

impl From<&awdit_core::EngineConfig> for StreamConfig {
    /// Projects the engine's unified config onto the streaming knobs, so
    /// batch checks and online monitors built from one
    /// [`Engine`](awdit_core::Engine) agree on their tuning
    /// (`max_cycles` maps to [`max_cycle_reports`](StreamConfig::max_cycle_reports)).
    ///
    /// The engine's `cc_strategy` is **not** projected: the streaming
    /// checker runs a single incremental CC kernel, so online verdicts
    /// are strategy-independent by construction.
    fn from(cfg: &awdit_core::EngineConfig) -> Self {
        StreamConfig {
            level: cfg.level,
            prune: cfg.prune,
            prune_interval: cfg.prune_interval,
            max_cycle_reports: cfg.max_cycles,
            threads: cfg.threads,
        }
    }
}

/// Streaming extension methods for the core [`Engine`](awdit_core::Engine)
/// handle (`awdit-core` cannot name this crate's types, so the wiring
/// lives here).
pub trait EngineExt {
    /// An [`OnlineChecker`] configured from the engine's
    /// [`EngineConfig`](awdit_core::EngineConfig) — the `watch` entry
    /// point of the engine API.
    fn watch(&self) -> OnlineChecker;
}

impl EngineExt for awdit_core::Engine {
    fn watch(&self) -> OnlineChecker {
        let mut checker = OnlineChecker::with_config(StreamConfig::from(self.config()));
        checker.set_obs(self.obs().clone());
        checker
    }
}

/// Cached metric handles so per-event recording never takes the registry
/// lock. Counter totals reconcile exactly with the matching
/// [`StreamStats`] fields when the handle is attached before the first
/// event.
#[derive(Debug)]
struct StreamMetrics {
    events: Arc<Counter>,
    processed: Arc<Counter>,
    retired: Arc<Counter>,
    violations: Arc<Counter>,
    horizon_misses: Arc<Counter>,
    gcs: Arc<Counter>,
    staged: Arc<Gauge>,
    live: Arc<Gauge>,
    live_edges: Arc<Gauge>,
}

impl StreamMetrics {
    fn from_obs(obs: &Obs) -> Option<Self> {
        let m = obs.metrics()?;
        Some(StreamMetrics {
            events: m.counter("awdit_stream_events_total"),
            processed: m.counter("awdit_stream_processed_total"),
            retired: m.counter("awdit_stream_retired_total"),
            violations: m.counter("awdit_stream_violations_total"),
            horizon_misses: m.counter("awdit_stream_horizon_misses_total"),
            gcs: m.counter("awdit_stream_gcs_total"),
            staged: m.gauge("awdit_stream_staged_txns"),
            live: m.gauge("awdit_stream_live_txns"),
            live_edges: m.gauge("awdit_stream_live_edges"),
        })
    }
}

/// The final result of a stream check.
#[derive(Clone, Debug)]
pub struct StreamOutcome {
    level: IsolationLevel,
    violations: Vec<StreamViolation>,
    stats: StreamStats,
}

impl StreamOutcome {
    /// Shorthand for "no violation was found" over the whole stream,
    /// including violations already handed out via
    /// [`OnlineChecker::drain_violations`].
    pub fn is_consistent(&self) -> bool {
        self.stats.violations == 0
    }

    /// The level that was checked.
    pub fn level(&self) -> IsolationLevel {
        self.level
    }

    /// The violations not already drained during the stream, in emission
    /// order ([`StreamStats::violations`] counts all of them).
    pub fn violations(&self) -> &[StreamViolation] {
        &self.violations
    }

    /// Final stream statistics.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }
}

/// Raw (unresolved) operation of an in-flight transaction.
#[derive(Copy, Clone, Debug)]
enum RawOp {
    Write { key: Key, value: Value },
    Read { key: Key, value: Value },
}

/// Resolution state of one operation slot (only reads carry content).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum ReadSrc {
    /// The slot is a write.
    NotARead,
    /// Read of an own write at position `op`.
    Internal { op: u32 },
    /// Read of a committed (or still-staged) external writer.
    External { txn: TxnId, op: u32 },
    /// Read of an aborted transaction's write.
    Aborted { txn: TxnId, op: u32 },
    /// The value has not been written by anyone seen so far.
    AwaitingValue,
    /// Resolved at `finish`: nobody ever wrote it.
    ThinAir,
    /// The key had writes pruned past the watermark; unresolvable.
    Horizon,
}

#[derive(Debug)]
struct OpenTxn {
    id: TxnId,
    ops: Vec<RawOp>,
}

#[derive(Debug)]
struct StagedTxn {
    session: u32,
    committed_pos: u32,
    ops: Vec<RawOp>,
    sources: Vec<ReadSrc>,
    deps: usize,
}

#[derive(Debug)]
struct SessionState {
    open: Option<OpenTxn>,
    next_txn_index: u32,
    committed_count: u32,
    /// Most recent committed transaction (staged or processed) — the `so`
    /// dependency of the next commit.
    last_committed: Option<TxnId>,
    /// Slot of the most recently processed committed transaction (`None`
    /// after it retires; the `so` edge to a retired predecessor is implied
    /// and safely droppable — nothing can order back into the pruned
    /// prefix).
    last_processed_slot: Option<u32>,
    /// Writes of aborted transactions, for value-map cleanup at pruning:
    /// `(transaction index in session, key, value)`.
    aborted_writes: Vec<(u32, Key, Value)>,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum TxnState {
    Staged,
    Processed { slot: u32 },
    Aborted,
}

#[derive(Copy, Clone, Debug)]
enum Waiter {
    /// A staged reader waiting for this writer to close/process (one entry
    /// per read operation).
    Read(TxnId),
    /// The session successor waiting for this transaction to process.
    So(TxnId),
}

/// Checks a stream of transaction events against one isolation level,
/// incrementally and with bounded memory (see the module docs).
///
/// # Examples
///
/// ```
/// use awdit_core::IsolationLevel;
/// use awdit_stream::{Event, OnlineChecker};
///
/// let mut c = OnlineChecker::new(IsolationLevel::Causal);
/// for ev in [
///     Event::Begin { session: 0 },
///     Event::Write { session: 0, key: 1, value: 10 },
///     Event::Commit { session: 0 },
///     Event::Begin { session: 1 },
///     Event::Read { session: 1, key: 1, value: 10 },
///     Event::Commit { session: 1 },
/// ] {
///     c.apply(&ev).unwrap();
/// }
/// let outcome = c.finish().unwrap();
/// assert!(outcome.is_consistent());
/// ```
#[derive(Debug)]
pub struct OnlineChecker {
    cfg: StreamConfig,
    error: Option<StreamError>,

    session_ids: HashMap<u64, u32>,
    sessions: Vec<SessionState>,
    key_ids: HashMap<u64, Key>,
    key_names: Vec<u64>,

    /// The unique-value write map: `(key, value) → (writer, op)`.
    writes: HashMap<(Key, Value), (TxnId, u32)>,
    /// Per key: number of writes whose map entries were pruned.
    pruned_writes: HashMap<Key, u64>,
    txn_states: HashMap<TxnId, TxnState>,

    staged: HashMap<TxnId, StagedTxn>,
    waiting_value: HashMap<(Key, Value), Vec<(TxnId, u32)>>,
    waiting_txn: HashMap<TxnId, Vec<Waiter>>,
    ready: VecDeque<TxnId>,

    index: StreamIndex,
    tracker: HbTracker,
    rc: RcKernel,
    ra: RaKernel,
    dag: IncrementalDag,
    reported_cycles: HashSet<(TxnId, TxnId)>,
    cycle_reports: usize,

    violations: Vec<StreamViolation>,
    processed_since_gc: u64,
    stats: StreamStats,
    obs: Obs,
    metrics: Option<StreamMetrics>,
    shutdown: ShutdownToken,
    /// The persistent worker pool the sharded stages (CC inference, GC
    /// boundary scan) dispatch on. Created at build, or shared in via
    /// [`with_config_pool`](Self::with_config_pool) (`awdit serve` hands
    /// every checker the server-wide pool); survives
    /// [`reconfigure`](Self::reconfigure). Width 1 owns no threads.
    pool: Arc<parallel::Pool>,
}

impl OnlineChecker {
    /// A checker for `level` with default configuration (pruning on).
    pub fn new(level: IsolationLevel) -> Self {
        Self::with_config(StreamConfig {
            level,
            ..StreamConfig::default()
        })
    }

    /// A checker with explicit configuration.
    pub fn with_config(cfg: StreamConfig) -> Self {
        let pool = Arc::new(parallel::Pool::new(cfg.threads));
        Self::with_config_pool(cfg, pool)
    }

    /// [`with_config`](Self::with_config) dispatching on a caller-owned
    /// [`Pool`](parallel::Pool) — how `awdit serve` shares one pool
    /// across every tenant checker and its batch engine. The checker's
    /// per-dispatch budget is still `cfg.threads`; the pool's width caps
    /// it.
    pub fn with_config_pool(cfg: StreamConfig, pool: Arc<parallel::Pool>) -> Self {
        OnlineChecker {
            cfg,
            pool,
            error: None,
            session_ids: HashMap::new(),
            sessions: Vec::new(),
            key_ids: HashMap::new(),
            key_names: Vec::new(),
            writes: HashMap::new(),
            pruned_writes: HashMap::new(),
            txn_states: HashMap::new(),
            staged: HashMap::new(),
            waiting_value: HashMap::new(),
            waiting_txn: HashMap::new(),
            ready: VecDeque::new(),
            index: StreamIndex::new(),
            tracker: HbTracker::new(),
            rc: RcKernel::new(),
            ra: RaKernel::new(),
            dag: IncrementalDag::new(),
            reported_cycles: HashSet::new(),
            cycle_reports: 0,
            violations: Vec::new(),
            processed_since_gc: 0,
            stats: StreamStats::default(),
            obs: Obs::disabled(),
            metrics: None,
            shutdown: ShutdownToken::new(),
        }
    }

    /// Attaches an observability handle: stream metrics
    /// (`awdit_stream_*` counters and gauges) and GC spans flow into it.
    /// Counter totals reconcile exactly with [`stats`](Self::stats) when
    /// attached before the first event. `Engine::watch` propagates the
    /// engine's handle automatically.
    pub fn set_obs(&mut self, obs: Obs) {
        self.metrics = StreamMetrics::from_obs(&obs);
        self.obs = obs;
    }

    /// The checker's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The level being checked.
    pub fn level(&self) -> IsolationLevel {
        self.cfg.level
    }

    /// Current statistics.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// The current watermark (pointwise-minimum frontier clock).
    pub fn watermark(&self) -> VectorClock {
        self.tracker.watermark()
    }

    /// The retained (not yet pruned) committed transactions, sorted — the
    /// thread-count differential suites compare this live set after GC.
    pub fn live_txn_ids(&self) -> Vec<TxnId> {
        let mut ids: Vec<TxnId> = self.index.live_slots().map(|(_, m)| m.txn_id).collect();
        ids.sort_unstable();
        ids
    }

    /// Takes the violations emitted since the last drain (for live
    /// reporting). Draining keeps a long-running monitor's memory bounded:
    /// drained violations are handed to the caller and no longer retained,
    /// so the final [`StreamOutcome`] lists only the undrained ones (its
    /// verdict still accounts for all of them via
    /// [`StreamStats::violations`]).
    pub fn drain_violations(&mut self) -> Vec<StreamViolation> {
        std::mem::take(&mut self.violations)
    }

    /// The checker's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Attaches a shared [`ShutdownToken`]: feed loops poll
    /// [`shutdown_requested`](Self::shutdown_requested) at their batch
    /// boundaries and finalize through [`drain`](Self::drain) when it
    /// trips. The checker itself never stops early — violations detected
    /// between the trigger and the drain are still reported.
    pub fn set_shutdown(&mut self, token: ShutdownToken) {
        self.shutdown = token;
    }

    /// The attached shutdown token (untriggered and unshared by default).
    pub fn shutdown_token(&self) -> &ShutdownToken {
        &self.shutdown
    }

    /// Whether the attached [`ShutdownToken`] has been triggered.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.is_triggered()
    }

    /// Applies one event. Errors are sticky: the stream is poisoned after
    /// the first protocol or unique-value failure.
    pub fn apply(&mut self, event: &Event) -> Result<(), StreamError> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        let result = self.apply_inner(event);
        if let Err(e) = &result {
            self.error = Some(e.clone());
        }
        result
    }

    fn apply_inner(&mut self, event: &Event) -> Result<(), StreamError> {
        self.stats.events += 1;
        if let Some(m) = &self.metrics {
            m.events.inc();
        }
        match *event {
            Event::Begin { session } => {
                let s = self.ensure_session(session);
                let st = &mut self.sessions[s as usize];
                if st.open.is_some() {
                    return Err(StreamError::NestedTransaction { session });
                }
                let id = TxnId::new(s, st.next_txn_index);
                st.next_txn_index += 1;
                st.open = Some(OpenTxn {
                    id,
                    ops: Vec::new(),
                });
                self.stats.begins += 1;
                Ok(())
            }
            Event::Write {
                session,
                key,
                value,
            } => {
                let s = self.ensure_session(session);
                let k = self.ensure_key(key);
                let v = Value(value);
                let st = &mut self.sessions[s as usize];
                let Some(open) = st.open.as_mut() else {
                    return Err(StreamError::NoOpenTransaction { session });
                };
                let loc = OpLoc::new(open.id, open.ops.len() as u32);
                if let Some(&(first_txn, first_op)) = self.writes.get(&(k, v)) {
                    return Err(StreamError::DuplicateWrite {
                        key,
                        value,
                        first: OpLoc::new(first_txn, first_op),
                        second: loc,
                    });
                }
                open.ops.push(RawOp::Write { key: k, value: v });
                self.writes.insert((k, v), (loc.txn, loc.op));
                // Resolve readers that were waiting for this value.
                if let Some(waiters) = self.waiting_value.remove(&(k, v)) {
                    for (reader, op) in waiters {
                        if let Some(st) = self.staged.get_mut(&reader) {
                            st.sources[op as usize] = ReadSrc::External {
                                txn: loc.txn,
                                op: loc.op,
                            };
                        }
                        self.waiting_txn
                            .entry(loc.txn)
                            .or_default()
                            .push(Waiter::Read(reader));
                    }
                }
                Ok(())
            }
            Event::Read {
                session,
                key,
                value,
            } => {
                let s = self.ensure_session(session);
                let k = self.ensure_key(key);
                let st = &mut self.sessions[s as usize];
                let Some(open) = st.open.as_mut() else {
                    return Err(StreamError::NoOpenTransaction { session });
                };
                open.ops.push(RawOp::Read {
                    key: k,
                    value: Value(value),
                });
                Ok(())
            }
            Event::Commit { session } => {
                let s = self.ensure_session(session);
                if self.sessions[s as usize].open.is_none() {
                    return Err(StreamError::NoOpenTransaction { session });
                }
                self.commit_open(s);
                self.drain_ready();
                Ok(())
            }
            Event::Abort { session } => {
                let s = self.ensure_session(session);
                if self.sessions[s as usize].open.is_none() {
                    return Err(StreamError::NoOpenTransaction { session });
                }
                self.abort_open(s);
                self.drain_ready();
                Ok(())
            }
        }
    }

    /// Convenience wrappers mirroring [`HistoryBuilder`](awdit_core::HistoryBuilder).
    pub fn begin(&mut self, session: u64) -> Result<(), StreamError> {
        self.apply(&Event::Begin { session })
    }
    /// Applies a write event.
    pub fn write(&mut self, session: u64, key: u64, value: u64) -> Result<(), StreamError> {
        self.apply(&Event::Write {
            session,
            key,
            value,
        })
    }
    /// Applies a read event.
    pub fn read(&mut self, session: u64, key: u64, value: u64) -> Result<(), StreamError> {
        self.apply(&Event::Read {
            session,
            key,
            value,
        })
    }
    /// Applies a commit event.
    pub fn commit(&mut self, session: u64) -> Result<(), StreamError> {
        self.apply(&Event::Commit { session })
    }
    /// Applies an abort event.
    pub fn abort(&mut self, session: u64) -> Result<(), StreamError> {
        self.apply(&Event::Abort { session })
    }

    fn ensure_session(&mut self, name: u64) -> u32 {
        if let Some(&s) = self.session_ids.get(&name) {
            return s;
        }
        let s = self.sessions.len() as u32;
        self.session_ids.insert(name, s);
        self.sessions.push(SessionState {
            open: None,
            next_txn_index: 0,
            committed_count: 0,
            last_committed: None,
            last_processed_slot: None,
            aborted_writes: Vec::new(),
        });
        self.index.ensure_sessions(self.sessions.len());
        self.tracker.ensure_sessions(self.sessions.len());
        s
    }

    fn ensure_key(&mut self, name: u64) -> Key {
        if let Some(&k) = self.key_ids.get(&name) {
            return k;
        }
        let k = Key(self.key_names.len() as u32);
        self.key_ids.insert(name, k);
        self.key_names.push(name);
        k
    }

    /// The user-facing name of an interned key.
    fn key_name(&self, k: Key) -> u64 {
        self.key_names[k.index()]
    }

    fn commit_open(&mut self, s: u32) {
        let open = self.sessions[s as usize].open.take().expect("open txn");
        let id = open.id;
        let committed_pos = self.sessions[s as usize].committed_count;
        self.sessions[s as usize].committed_count += 1;
        self.stats.commits += 1;

        let mut sources = vec![ReadSrc::NotARead; open.ops.len()];
        let mut deps = 0usize;
        for (p, op) in open.ops.iter().enumerate() {
            let RawOp::Read { key, value } = *op else {
                continue;
            };
            sources[p] = match self.writes.get(&(key, value)) {
                Some(&(wtxn, wop)) if wtxn == id => ReadSrc::Internal { op: wop },
                Some(&(wtxn, wop)) => match self.txn_states.get(&wtxn) {
                    Some(TxnState::Aborted) => ReadSrc::Aborted { txn: wtxn, op: wop },
                    Some(TxnState::Processed { slot }) => {
                        self.index.meta_mut(*slot).pending_readers += 1;
                        ReadSrc::External { txn: wtxn, op: wop }
                    }
                    Some(TxnState::Staged) | None => {
                        // Staged, or the writer transaction is still open.
                        deps += 1;
                        self.waiting_txn
                            .entry(wtxn)
                            .or_default()
                            .push(Waiter::Read(id));
                        ReadSrc::External { txn: wtxn, op: wop }
                    }
                },
                None => {
                    if self.pruned_writes.get(&key).copied().unwrap_or(0) > 0 {
                        ReadSrc::Horizon
                    } else {
                        deps += 1;
                        self.waiting_value
                            .entry((key, value))
                            .or_default()
                            .push((id, p as u32));
                        ReadSrc::AwaitingValue
                    }
                }
            };
        }

        // so dependency: the session's previous committed transaction must
        // be processed first.
        if let Some(prev) = self.sessions[s as usize].last_committed {
            if matches!(self.txn_states.get(&prev), Some(TxnState::Staged)) {
                deps += 1;
                self.waiting_txn
                    .entry(prev)
                    .or_default()
                    .push(Waiter::So(id));
            }
        }
        self.sessions[s as usize].last_committed = Some(id);

        self.txn_states.insert(id, TxnState::Staged);
        self.staged.insert(
            id,
            StagedTxn {
                session: s,
                committed_pos,
                ops: open.ops,
                sources,
                deps,
            },
        );
        self.stats.staged_txns += 1;
        self.stats.peak_staged_txns = self.stats.peak_staged_txns.max(self.stats.staged_txns);
        if let Some(m) = &self.metrics {
            m.staged.set(self.stats.staged_txns as f64);
        }
        if deps == 0 {
            self.ready.push_back(id);
        }
    }

    fn abort_open(&mut self, s: u32) {
        let open = self.sessions[s as usize].open.take().expect("open txn");
        let id = open.id;
        self.stats.aborts += 1;
        self.txn_states.insert(id, TxnState::Aborted);
        for op in &open.ops {
            if let RawOp::Write { key, value } = *op {
                self.sessions[s as usize]
                    .aborted_writes
                    .push((id.index, key, value));
            }
        }
        // Readers waiting on this writer observe an aborted write: resolve
        // them without a wr edge.
        if let Some(waiters) = self.waiting_txn.remove(&id) {
            for w in waiters {
                let Waiter::Read(reader) = w else {
                    unreachable!("so waiters only wait on committed transactions")
                };
                if let Some(st) = self.staged.get_mut(&reader) {
                    for src in &mut st.sources {
                        if let ReadSrc::External { txn, op } = *src {
                            if txn == id {
                                *src = ReadSrc::Aborted { txn, op };
                            }
                        }
                    }
                    st.deps -= 1;
                    if st.deps == 0 {
                        self.ready.push_back(reader);
                    }
                }
            }
        }
    }

    fn drain_ready(&mut self) {
        while let Some(id) = self.ready.pop_front() {
            self.process_txn(id);
        }
    }

    fn emit(&mut self, v: StreamViolation) {
        self.stats.violations += 1;
        if let Some(m) = &self.metrics {
            m.violations.inc();
        }
        self.violations.push(v);
    }

    fn emit_core(&mut self, v: Violation) {
        self.emit(StreamViolation::Core(v));
    }

    /// Read Consistency for one committed transaction (Algorithm 4,
    /// per-transaction form). `final_write_of` resolves a committed
    /// external writer's final write of a key.
    fn check_reads(
        &mut self,
        id: TxnId,
        ops: &[RawOp],
        sources: &[ReadSrc],
        final_write_of: &dyn Fn(&Self, TxnId, Key) -> Option<u32>,
    ) {
        let mut latest_own: HashMap<Key, u32> = HashMap::new();
        let mut out: Vec<StreamViolation> = Vec::new();
        for (p, op) in ops.iter().enumerate() {
            let read = OpLoc::new(id, p as u32);
            match *op {
                RawOp::Write { key, .. } => {
                    latest_own.insert(key, p as u32);
                }
                RawOp::Read { key, value } => {
                    let own = latest_own.get(&key).copied();
                    match sources[p] {
                        ReadSrc::NotARead => unreachable!(),
                        ReadSrc::AwaitingValue => {
                            unreachable!("awaiting reads resolve before processing")
                        }
                        ReadSrc::ThinAir => {
                            out.push(StreamViolation::Core(Violation::ReadConsistency(
                                ReadConsistencyViolation::ThinAirRead { read, key, value },
                            )))
                        }
                        ReadSrc::Horizon => {
                            self.stats.horizon_misses += 1;
                            if let Some(m) = &self.metrics {
                                m.horizon_misses.inc();
                            }
                            out.push(StreamViolation::BeyondHorizon {
                                txn: id,
                                op: p as u32,
                                key: self.key_name(key),
                                value: value.0,
                            });
                        }
                        ReadSrc::Internal { op: w } => {
                            if w > p as u32 {
                                out.push(StreamViolation::Core(Violation::ReadConsistency(
                                    ReadConsistencyViolation::FutureRead {
                                        read,
                                        write: OpLoc::new(id, w),
                                        key,
                                    },
                                )));
                            } else if own != Some(w) {
                                let later = own.expect("earlier internal write seen");
                                out.push(StreamViolation::Core(Violation::ReadConsistency(
                                    ReadConsistencyViolation::StaleOwnWrite {
                                        read,
                                        observed: OpLoc::new(id, w),
                                        later_write: OpLoc::new(id, later),
                                        key,
                                    },
                                )));
                            }
                        }
                        ReadSrc::External { txn, op } | ReadSrc::Aborted { txn, op } => {
                            if let Some(own_write) = own {
                                out.push(StreamViolation::Core(Violation::ReadConsistency(
                                    ReadConsistencyViolation::NotOwnWrite {
                                        read,
                                        own_write: OpLoc::new(id, own_write),
                                        observed: OpLoc::new(txn, op),
                                        key,
                                    },
                                )));
                            }
                            if matches!(sources[p], ReadSrc::Aborted { .. }) {
                                out.push(StreamViolation::Core(Violation::ReadConsistency(
                                    ReadConsistencyViolation::AbortedRead {
                                        read,
                                        write: OpLoc::new(txn, op),
                                        key,
                                    },
                                )));
                            } else if final_write_of(self, txn, key) != Some(op) {
                                out.push(StreamViolation::Core(Violation::ReadConsistency(
                                    ReadConsistencyViolation::NotFinalWrite {
                                        read,
                                        observed: OpLoc::new(txn, op),
                                        key,
                                    },
                                )));
                            }
                        }
                    }
                }
            }
        }
        for v in out {
            self.emit(v);
        }
    }

    fn process_txn(&mut self, id: TxnId) {
        let st = self.staged.remove(&id).expect("ready txn is staged");
        self.stats.staged_txns -= 1;
        let StagedTxn {
            session,
            committed_pos,
            ops,
            sources,
            ..
        } = st;

        // 1. Read Consistency. External writers are processed by now, so
        // their final writes come from the index.
        self.check_reads(id, &ops, &sources, &|this, wtxn, key| {
            let TxnState::Processed { slot } = this.txn_states[&wtxn] else {
                unreachable!("external writer processed before reader")
            };
            this.index.meta(slot).final_write_of(key)
        });

        // 2. Derived per-transaction index data (the streaming analog of
        // `HistoryIndex`'s per-transaction pass).
        let mut ext_reads = Vec::new();
        let mut keys_written = Vec::new();
        let mut all_writes = Vec::new();
        let mut final_map: HashMap<Key, u32> = HashMap::new();
        for (p, op) in ops.iter().enumerate() {
            match *op {
                RawOp::Write { key, value } => {
                    keys_written.push(key);
                    all_writes.push((key, value));
                    final_map.insert(key, p as u32);
                }
                RawOp::Read { key, .. } => {
                    if let ReadSrc::External { txn, .. } = sources[p] {
                        let TxnState::Processed { slot } = self.txn_states[&txn] else {
                            unreachable!("external writer processed before reader")
                        };
                        ext_reads.push(awdit_core::ExtRead {
                            key,
                            writer: slot,
                            op: p as u32,
                        });
                    }
                }
            }
        }
        keys_written.sort_unstable();
        keys_written.dedup();
        let mut final_writes: Vec<(Key, u32)> = final_map.into_iter().collect();
        final_writes.sort_unstable();
        // The same read-column derivation the batch `HistoryIndex` runs, so
        // the two sides cannot drift.
        let cols = awdit_core::ReadCols::from_ext_reads(&ext_reads);

        let meta = TxnMeta {
            txn_id: id,
            session,
            committed_pos,
            keys_written,
            keys_read: cols.keys_read,
            first_writer_per_key: cols.first_writers,
            ext_reads,
            read_pairs: cols.read_pairs,
            writes: all_writes,
            final_writes,
            pending_readers: 0,
        };
        let slot = self.index.insert(meta);
        self.dag.ensure_node(slot);

        // 3. Repeatable reads (RA only, mirroring the batch dispatcher).
        if self.cfg.level == IsolationLevel::ReadAtomic {
            let mut first_writer: HashMap<Key, u32> = HashMap::new();
            let mut nrr = Vec::new();
            for r in &self.index.meta(slot).ext_reads {
                match first_writer.get(&r.key) {
                    None => {
                        first_writer.insert(r.key, r.writer);
                    }
                    Some(&w) if w != r.writer => nrr.push(Violation::NonRepeatableRead {
                        txn: id,
                        key: r.key,
                        first_writer: self.index.meta(w).txn_id,
                        second_writer: self.index.meta(r.writer).txn_id,
                    }),
                    Some(_) => {}
                }
            }
            for v in nrr {
                self.emit_core(v);
            }
        }

        // 4. Base edges plus the level's inferred edges, from the shared
        // kernels.
        let mut edges: Vec<(u32, u32, EdgeKind)> = Vec::new();
        if let Some(prev) = self.sessions[session as usize].last_processed_slot {
            edges.push((prev, slot, EdgeKind::SessionOrder));
        }
        let mut seen_writers: HashSet<u32> = HashSet::new();
        for r in &self.index.meta(slot).ext_reads {
            if seen_writers.insert(r.writer) {
                edges.push((r.writer, slot, EdgeKind::WriteRead(r.key)));
            }
        }
        let clock = self.tracker.observe(&self.index, slot).clone();
        match self.cfg.level {
            IsolationLevel::ReadCommitted => self.rc.process(&self.index, slot, &mut edges),
            IsolationLevel::ReadAtomic => self.ra.process(&self.index, slot, &mut edges),
            IsolationLevel::Causal => self.infer_cc(slot, &clock, &mut edges),
        }

        // 5. Insert; every edge closing a cycle is a violation, reported
        // immediately with provenance and then dropped so checking
        // continues.
        for (from, to, kind) in edges {
            match self.dag.insert_edge(from, to, kind) {
                Ok(()) => {}
                Err(cycle) => self.report_cycle(&cycle),
            }
        }
        self.stats.live_edges = self.dag.num_edges();

        // 6. Publish and wake dependents.
        self.txn_states.insert(id, TxnState::Processed { slot });
        self.sessions[session as usize].last_processed_slot = Some(slot);
        if let Some(waiters) = self.waiting_txn.remove(&id) {
            for w in waiters {
                let reader = match w {
                    Waiter::Read(r) => {
                        self.index.meta_mut(slot).pending_readers += 1;
                        r
                    }
                    Waiter::So(r) => r,
                };
                if let Some(st) = self.staged.get_mut(&reader) {
                    st.deps -= 1;
                    if st.deps == 0 {
                        self.ready.push_back(reader);
                    }
                }
            }
        }

        // 7. Release the references this transaction held on its writers.
        let writer_slots: Vec<u32> = self
            .index
            .meta(slot)
            .ext_reads
            .iter()
            .map(|r| r.writer)
            .collect();
        for w in writer_slots {
            if w != slot {
                let m = self.index.meta_mut(w);
                m.pending_readers = m.pending_readers.saturating_sub(1);
            }
        }

        self.stats.processed += 1;
        self.stats.live_txns = self.index.num_live() as u64;
        self.stats.peak_live_txns = self.stats.peak_live_txns.max(self.stats.live_txns);
        if let Some(m) = &self.metrics {
            m.processed.inc();
            m.staged.set(self.stats.staged_txns as f64);
            m.live.set(self.stats.live_txns as f64);
            m.live_edges.set(self.stats.live_edges as f64);
        }

        self.processed_since_gc += 1;
        if self.cfg.prune && self.processed_since_gc >= self.cfg.prune_interval {
            self.processed_since_gc = 0;
            self.prune();
        }
    }

    /// The per-commit CC inference: sequential for narrow commits, the
    /// `(key, writer)` pairs sharded across the worker pool for wide ones
    /// (edge sinks merged in pair order — bit-identical to sequential).
    fn infer_cc(&self, slot: u32, clock: &VectorClock, edges: &mut Vec<(u32, u32, EdgeKind)>) {
        /// Sharding a handful of pairs costs more than inferring them.
        const MIN_PAIRS_PER_SHARD: usize = 32;
        let threads = parallel::effective_threads(self.cfg.threads);
        let meta = self.index.meta(slot);
        let pairs = &meta.read_pairs;
        if threads <= 1 || pairs.len() < 2 * MIN_PAIRS_PER_SHARD {
            infer_cc_edges(&self.index, slot, clock.entries(), edges);
            return;
        }
        let index = &self.index;
        let session = meta.session;
        let shards =
            parallel::split_even(pairs.len(), threads.min(pairs.len() / MIN_PAIRS_PER_SHARD));
        let sinks =
            parallel::map_shards(&self.pool, threads, "stream_infer_cc", &shards, |_, r| {
                let mut sink = parallel::EdgeBuf::new();
                let chunk = &pairs[r.start as usize..r.end as usize];
                infer_cc_pairs(index, session, chunk, clock.entries(), &mut sink);
                sink
            });
        parallel::merge_sinks(edges, sinks);
    }

    fn report_cycle(&mut self, cycle: &[DagEdge]) {
        let head = (
            self.index.meta(cycle[0].from).txn_id,
            self.index.meta(cycle[0].to).txn_id,
        );
        if self.cycle_reports >= self.cfg.max_cycle_reports || !self.reported_cycles.insert(head) {
            // Over the cap or already reported: the verdict is already
            // inconsistent; count it and move on.
            return;
        }
        self.cycle_reports += 1;
        let witness = WitnessCycle {
            edges: cycle
                .iter()
                .map(|e| WitnessEdge {
                    from: self.index.meta(e.from).txn_id,
                    to: self.index.meta(e.to).txn_id,
                    kind: e.kind,
                })
                .collect(),
        };
        self.emit_core(Violation::CommitOrderCycle {
            level: self.cfg.level,
            cycle: witness,
        });
    }

    /// Watermark pruning: retire settled transactions (see module docs).
    fn prune(&mut self) {
        let _span = self.obs.span("stream_gc");
        if let Some(m) = &self.metrics {
            m.gcs.inc();
        }
        let wm = self.tracker.watermark();
        let mut candidates: Vec<(u64, u32)> = self
            .index
            .live_slots()
            .filter(|&(slot, m)| {
                (m.session as usize) < wm.len()
                    && m.committed_pos < wm.get(m.session as usize)
                    && m.pending_readers == 0
                    // The session's latest processed txn must stay until its
                    // so-successor is processed: the successor edge is what
                    // condensation threads cross-horizon constraints onto.
                    && self.sessions[m.session as usize].last_processed_slot != Some(slot)
            })
            .map(|(slot, _)| (self.dag.order_of(slot), slot))
            .collect();
        candidates.sort_unstable();

        // Keep boundary writers: the latest retained writer of each
        // (session, key) must survive so later CC lookups below the
        // watermark still find their visible writer. The check is
        // read-only per candidate, so it fans out over the pool ahead of
        // the sequential retire sweep. Precomputing every verdict before
        // any retire matches the interleaved sequential sweep exactly:
        // candidates run in DAG order, which within one (session, key)
        // writer list is session-position order, so a retire only ever
        // removes writers *before* a later candidate in its list — the
        // successor entry its check reads is untouched, and boundary
        // writers themselves are never retired.
        const MIN_CANDIDATES_PER_SHARD: usize = 32;
        let index = &self.index;
        let check = |slot: u32| -> bool {
            let m = index.meta(slot);
            let bound = wm.get(m.session as usize);
            debug_assert!(m.committed_pos < bound);
            m.keys_written.iter().any(|&key| {
                let list = index.session_key_writers(m.session, key);
                let i = list
                    .iter()
                    .position(|&w| w == slot)
                    .expect("writer listed for its key");
                match list.get(i + 1) {
                    Some(&next) => index.meta(next).committed_pos >= bound,
                    None => true,
                }
            })
        };
        let threads = parallel::effective_threads(self.cfg.threads);
        let boundary: Vec<bool> = if threads <= 1 || candidates.len() < 2 * MIN_CANDIDATES_PER_SHARD
        {
            candidates.iter().map(|&(_, slot)| check(slot)).collect()
        } else {
            let shards = parallel::split_even(
                candidates.len(),
                threads.min(candidates.len() / MIN_CANDIDATES_PER_SHARD),
            );
            let verdicts =
                parallel::map_shards(&self.pool, threads, "stream_gc", &shards, |_, r| {
                    candidates[r.start as usize..r.end as usize]
                        .iter()
                        .map(|&(_, slot)| check(slot))
                        .collect::<Vec<bool>>()
                });
            verdicts.concat()
        };

        for (&(_, slot), &is_boundary) in candidates.iter().zip(&boundary) {
            if is_boundary {
                continue;
            }
            self.retire(slot);
        }
    }

    fn retire(&mut self, slot: u32) {
        // Condense orderings that flow through this node along the
        // session-order backbone: each live in-neighbor keeps a `Condensed`
        // edge to the node's `so`/condensed successors, so commit-order
        // constraints threaded through the retired chain still participate
        // in cycle detection. (Shortcutting through *every* out-edge would
        // keep full cross-horizon precision but funnels unbounded degree
        // onto long-lived boundary writers; orderings through a retired
        // transaction into its one-off readers are settled at the horizon
        // instead — `exact` mode keeps everything.)
        let ins: Vec<u32> = self.dag.in_neighbors(slot).to_vec();
        let outs: Vec<u32> = self
            .dag
            .out_neighbors(slot)
            .iter()
            .filter(|&&(_, kind)| matches!(kind, EdgeKind::SessionOrder | EdgeKind::Condensed))
            .map(|&(w, _)| w)
            .collect();
        self.dag.remove_node(slot);
        for &a in &ins {
            for &b in &outs {
                if a != b {
                    // a → slot → b was acyclic, so a → b cannot close a
                    // cycle; insertion only reorders.
                    let _ = self.dag.insert_edge(a, b, EdgeKind::Condensed);
                }
            }
        }
        self.tracker.drop_clock(slot);
        let meta = self.index.retire(slot);
        for &(k, v) in &meta.writes {
            self.writes.remove(&(k, v));
            *self.pruned_writes.entry(k).or_insert(0) += 1;
        }
        self.txn_states.remove(&meta.txn_id);
        let s = meta.session;
        if self.sessions[s as usize].last_processed_slot == Some(slot) {
            self.sessions[s as usize].last_processed_slot = None;
        }
        // Aborted transactions older than this one can no longer be read
        // within the retained window either.
        let cutoff = meta.txn_id.index;
        let aborted = std::mem::take(&mut self.sessions[s as usize].aborted_writes);
        let mut kept = Vec::new();
        for (idx, k, v) in aborted {
            if idx < cutoff {
                self.writes.remove(&(k, v));
                *self.pruned_writes.entry(k).or_insert(0) += 1;
                self.txn_states.remove(&TxnId::new(s, idx));
            } else {
                kept.push((idx, k, v));
            }
        }
        self.sessions[s as usize].aborted_writes = kept;

        self.stats.retired_txns += 1;
        self.stats.live_txns = self.index.num_live() as u64;
        self.stats.live_edges = self.dag.num_edges();
        if let Some(m) = &self.metrics {
            m.retired.inc();
            m.live.set(self.stats.live_txns as f64);
            m.live_edges.set(self.stats.live_edges as f64);
        }
    }

    /// Ends the stream: force-aborts open transactions, resolves pending
    /// reads as thin-air, surfaces `so ∪ wr` deadlocks as cycle violations,
    /// and returns the overall outcome.
    pub fn finish(mut self) -> Result<StreamOutcome, StreamError> {
        self.finish_in_place()
    }

    /// [`finish`](Self::finish), then [`reset`](Self::reset): finalizes the
    /// stream in place and leaves the checker empty but *warm* — the big
    /// hash maps, index slabs, and graph adjacency keep their capacity, so
    /// the next stream fed through the same checker allocates almost
    /// nothing. This is the drain hook long-running hosts use (`awdit
    /// serve` tenant pools, `watch --follow` on a [`ShutdownToken`]): the
    /// terminal summary comes out, the allocations stay in.
    pub fn drain(&mut self) -> Result<StreamOutcome, StreamError> {
        let outcome = self.finish_in_place();
        self.reset();
        outcome
    }

    /// Clears all per-stream state — transactions, value maps, index,
    /// clocks, DAG, violations, statistics, any sticky error — while
    /// retaining allocation capacity where the underlying structures allow
    /// it. The configuration and observability handles survive.
    pub fn reset(&mut self) {
        self.error = None;
        self.session_ids.clear();
        self.sessions.clear();
        self.key_ids.clear();
        self.key_names.clear();
        self.writes.clear();
        self.pruned_writes.clear();
        self.txn_states.clear();
        self.staged.clear();
        self.waiting_value.clear();
        self.waiting_txn.clear();
        self.ready.clear();
        self.index.clear();
        self.tracker.reset();
        // The RC kernel's scratch is round-stamped per reader and carries
        // no cross-transaction state, so it is reusable as-is; the RA
        // kernel's per-session latest-writer table is not.
        self.ra.reset();
        self.dag.clear();
        self.reported_cycles.clear();
        self.cycle_reports = 0;
        self.violations.clear();
        self.processed_since_gc = 0;
        self.stats = StreamStats::default();
        if let Some(m) = &self.metrics {
            m.staged.set(0.0);
            m.live.set(0.0);
            m.live_edges.set(0.0);
        }
    }

    /// [`reset`](Self::reset) with a new configuration — how a pooled
    /// checker is re-issued to a tenant with different tuning. The worker
    /// pool is kept (that's the point of warm reuse): the new `threads`
    /// budget dispatches on it, capped by its width.
    pub fn reconfigure(&mut self, cfg: StreamConfig) {
        self.reset();
        self.cfg = cfg;
    }

    fn finish_in_place(&mut self) -> Result<StreamOutcome, StreamError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }

        // A transaction still open when the stream ends never committed:
        // treat it as aborted (its writes were never confirmed).
        for s in 0..self.sessions.len() as u32 {
            if self.sessions[s as usize].open.is_some() {
                self.abort_open(s);
                self.stats.implicit_aborts += 1;
            }
        }
        self.drain_ready();

        // Reads whose value nobody ever wrote are thin-air.
        let waiting = std::mem::take(&mut self.waiting_value);
        for ((_, _), entries) in waiting {
            for (reader, op) in entries {
                if let Some(st) = self.staged.get_mut(&reader) {
                    st.sources[op as usize] = ReadSrc::ThinAir;
                    st.deps -= 1;
                    if st.deps == 0 {
                        self.ready.push_back(reader);
                    }
                }
            }
        }
        self.drain_ready();

        // Whatever is still staged is deadlocked on a `so ∪ wr` cycle.
        self.finish_deadlocked();

        self.stats.staged_txns = self.staged.len() as u64;
        if let Some(m) = &self.metrics {
            m.staged.set(self.stats.staged_txns as f64);
        }
        Ok(StreamOutcome {
            level: self.cfg.level,
            violations: std::mem::take(&mut self.violations),
            stats: self.stats,
        })
    }

    /// Reports the violations of transactions stuck in a `so ∪ wr` cycle:
    /// their Read Consistency and repeatable-read checks still run, and one
    /// witness cycle per strongly connected component is extracted —
    /// classified as a causality cycle for CC (mirroring the batch early
    /// return) and as a commit-order cycle for RC/RA (where the batch graph
    /// simply contains the base cycle).
    fn finish_deadlocked(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        let mut stuck: Vec<TxnId> = self.staged.keys().copied().collect();
        stuck.sort_unstable();
        let local: HashMap<TxnId, u32> = stuck
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u32))
            .collect();

        // Per-transaction checks first (the batch pipeline checks every
        // committed transaction regardless of cycles).
        for &id in &stuck {
            let st = &self.staged[&id];
            let (ops, sources) = (st.ops.clone(), st.sources.clone());
            self.check_reads(
                id,
                &ops,
                &sources,
                &|this, wtxn, key| match this.txn_states.get(&wtxn) {
                    Some(TxnState::Processed { slot }) => {
                        this.index.meta(*slot).final_write_of(key)
                    }
                    _ => this
                        .staged
                        .get(&wtxn)
                        .map(|w| {
                            let mut last = None;
                            for (p, op) in w.ops.iter().enumerate() {
                                if let RawOp::Write { key: k, .. } = *op {
                                    if k == key {
                                        last = Some(p as u32);
                                    }
                                }
                            }
                            last
                        })
                        .unwrap_or(None),
                },
            );
            if self.cfg.level == IsolationLevel::ReadAtomic {
                let st = &self.staged[&id];
                let mut first_writer: HashMap<Key, TxnId> = HashMap::new();
                let mut nrr = Vec::new();
                for (p, op) in st.ops.iter().enumerate() {
                    let RawOp::Read { key, .. } = *op else {
                        continue;
                    };
                    if let ReadSrc::External { txn, .. } = st.sources[p] {
                        match first_writer.get(&key) {
                            None => {
                                first_writer.insert(key, txn);
                            }
                            Some(&w) if w != txn => nrr.push(Violation::NonRepeatableRead {
                                txn: id,
                                key,
                                first_writer: w,
                                second_writer: txn,
                            }),
                            Some(_) => {}
                        }
                    }
                }
                for v in nrr {
                    self.emit_core(v);
                }
            }
        }

        // One witness cycle per SCC of the deadlocked base relation.
        let mut g = CommitGraph::new(stuck.len());
        for (li, &id) in stuck.iter().enumerate() {
            let st = &self.staged[&id];
            // so edge to the next staged transaction of the session (staged
            // transactions form a suffix of their session, so staged
            // adjacency is committed adjacency).
            if let Some(&next) = stuck.iter().find(|&&t| {
                t.session == id.session && self.staged[&t].committed_pos == st.committed_pos + 1
            }) {
                g.add_edge(li as u32, local[&next], EdgeKind::SessionOrder);
            }
            let mut seen: HashSet<TxnId> = HashSet::new();
            for (p, op) in st.ops.iter().enumerate() {
                let RawOp::Read { key, .. } = *op else {
                    continue;
                };
                if let ReadSrc::External { txn, .. } = st.sources[p] {
                    if let Some(&wl) = local.get(&txn) {
                        if seen.insert(txn) {
                            g.add_edge(wl, li as u32, EdgeKind::WriteRead(key));
                        }
                    }
                }
            }
        }
        let budget = self
            .cfg
            .max_cycle_reports
            .saturating_sub(self.cycle_reports)
            .max(1);
        g.freeze();
        for cycle in g.find_cycles(budget) {
            let witness = WitnessCycle {
                edges: cycle
                    .edges
                    .iter()
                    .map(|e| WitnessEdge {
                        from: stuck[e.from as usize],
                        to: stuck[e.to as usize],
                        kind: e.kind,
                    })
                    .collect(),
            };
            let v = match self.cfg.level {
                IsolationLevel::Causal => Violation::CausalityCycle(witness),
                level => Violation::CommitOrderCycle {
                    level,
                    cycle: witness,
                },
            };
            self.emit_core(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awdit_core::Engine;

    #[test]
    fn stream_config_projects_engine_config() {
        let engine = Engine::builder()
            .level(IsolationLevel::ReadAtomic)
            .max_cycles(7)
            .threads(3)
            .prune(false)
            .prune_interval(99)
            .build();
        let cfg = StreamConfig::from(engine.config());
        assert_eq!(cfg.level, IsolationLevel::ReadAtomic);
        assert_eq!(cfg.max_cycle_reports, 7);
        assert_eq!(cfg.threads, 3);
        assert!(!cfg.prune);
        assert_eq!(cfg.prune_interval, 99);
    }

    #[test]
    fn engine_watch_checks_online() {
        let engine = Engine::builder().level(IsolationLevel::Causal).build();
        let mut c = engine.watch();
        c.begin(0).unwrap();
        c.write(0, 1, 10).unwrap();
        c.commit(0).unwrap();
        c.begin(1).unwrap();
        c.read(1, 1, 10).unwrap();
        c.commit(1).unwrap();
        assert!(c.finish().unwrap().is_consistent());
    }
}
