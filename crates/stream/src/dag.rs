//! An incrementally maintained DAG over live transactions.
//!
//! The batch pipeline saturates the whole commit relation and then runs
//! Tarjan once; an online checker instead needs to know *at every edge
//! insertion* whether the relation just became cyclic. This module
//! implements the Pearce–Kelly algorithm for dynamic topological order
//! maintenance: each node carries an order value, in-order insertions are
//! `O(1)`, and an out-of-order insertion triggers a localized search of the
//! affected region — returning the offending path when the new edge closes
//! a cycle.
//!
//! Nodes are slab slots: they can be removed (watermark pruning) and their
//! ids reused; order values are drawn from a monotone `u64` counter and are
//! never reused, so a recycled slot cannot alias a stale order.

use std::collections::HashMap;

use awdit_core::graph::EdgeKind;

/// An edge of a cycle returned by [`IncrementalDag::insert_edge`], in slot
/// space.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DagEdge {
    /// Source slot.
    pub from: u32,
    /// Target slot.
    pub to: u32,
    /// Provenance of the ordering.
    pub kind: EdgeKind,
}

/// Dynamic DAG with online cycle detection (Pearce–Kelly).
#[derive(Debug, Default)]
pub struct IncrementalDag {
    out: Vec<Vec<(u32, EdgeKind)>>,
    inn: Vec<Vec<u32>>,
    ord: Vec<u64>,
    alive: Vec<bool>,
    next_ord: u64,
    edges: u64,
    // DFS scratch, stamped to avoid clearing.
    visit_stamp: Vec<u64>,
    round: u64,
}

impl IncrementalDag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes every node and edge for a fresh stream. The slot arrays and
    /// their adjacency lists keep their capacity; order values stay
    /// monotone across the clear (the no-alias guarantee extends across
    /// streams for free).
    pub fn clear(&mut self) {
        for v in &mut self.out {
            v.clear();
        }
        for v in &mut self.inn {
            v.clear();
        }
        self.alive.iter_mut().for_each(|a| *a = false);
        self.edges = 0;
    }

    /// Registers slot `v` as a fresh node at the end of the current order.
    /// Must be called before `v` appears in any edge; reuses freed slots.
    pub fn ensure_node(&mut self, v: u32) {
        let i = v as usize;
        if self.out.len() <= i {
            self.out.resize_with(i + 1, Vec::new);
            self.inn.resize_with(i + 1, Vec::new);
            self.ord.resize(i + 1, 0);
            self.alive.resize(i + 1, false);
            self.visit_stamp.resize(i + 1, 0);
        }
        debug_assert!(!self.alive[i], "slot {v} already live");
        self.out[i].clear();
        self.inn[i].clear();
        self.alive[i] = true;
        self.ord[i] = self.next_ord;
        self.next_ord += 1;
    }

    /// Whether `v` is currently a live node.
    pub fn is_live(&self, v: u32) -> bool {
        self.alive.get(v as usize).copied().unwrap_or(false)
    }

    /// Number of live in-edges of `v`.
    pub fn in_degree(&self, v: u32) -> usize {
        self.inn[v as usize].len()
    }

    /// Total live edges.
    pub fn num_edges(&self) -> u64 {
        self.edges
    }

    /// The topological order value of `v` (for pruning sweeps).
    pub fn order_of(&self, v: u32) -> u64 {
        self.ord[v as usize]
    }

    /// Whether the edge `x → y` is already present.
    pub fn has_edge(&self, x: u32, y: u32) -> bool {
        self.out[x as usize].iter().any(|&(w, _)| w == y)
    }

    /// Inserts `x → y`. Returns `Err(cycle)` — a closed walk starting with
    /// the new edge — if the insertion would create a cycle; the edge is
    /// **not** added in that case, so the structure stays acyclic and
    /// checking can continue.
    ///
    /// Duplicate `(x, y)` pairs are ignored (first kind wins), mirroring the
    /// batch graph where duplicates never affect acyclicity.
    pub fn insert_edge(&mut self, x: u32, y: u32, kind: EdgeKind) -> Result<(), Vec<DagEdge>> {
        debug_assert!(self.is_live(x) && self.is_live(y));
        if x == y {
            return Err(vec![DagEdge {
                from: x,
                to: y,
                kind,
            }]);
        }
        if self.has_edge(x, y) {
            return Ok(());
        }
        if self.ord[x as usize] > self.ord[y as usize] {
            // Affected region: does y reach x through nodes ordered ≤ ord[x]?
            self.round += 1;
            let ub = self.ord[x as usize];
            let mut parent: HashMap<u32, (u32, EdgeKind)> = HashMap::new();
            let mut delta_f: Vec<u32> = Vec::new();
            let mut stack = vec![y];
            self.visit_stamp[y as usize] = self.round;
            let mut reached = false;
            while let Some(v) = stack.pop() {
                delta_f.push(v);
                if v == x {
                    reached = true;
                    break;
                }
                for &(w, k) in &self.out[v as usize] {
                    let wi = w as usize;
                    if self.ord[wi] <= ub && self.visit_stamp[wi] != self.round {
                        self.visit_stamp[wi] = self.round;
                        parent.insert(w, (v, k));
                        stack.push(w);
                    }
                }
            }
            if reached {
                // Reconstruct y →* x, then close with the new edge x → y.
                let mut path_rev: Vec<DagEdge> = Vec::new();
                let mut cur = x;
                while cur != y {
                    let &(p, k) = parent.get(&cur).expect("parent chain reaches y");
                    path_rev.push(DagEdge {
                        from: p,
                        to: cur,
                        kind: k,
                    });
                    cur = p;
                }
                path_rev.reverse();
                let mut cycle = vec![DagEdge {
                    from: x,
                    to: y,
                    kind,
                }];
                cycle.extend(path_rev);
                return Err(cycle);
            }

            // No cycle: reorder the affected region. δF = forward from y
            // (ord ≤ ord[x]), δB = backward from x (ord ≥ ord[y]).
            self.round += 1;
            let lb = self.ord[y as usize];
            let mut delta_b: Vec<u32> = Vec::new();
            let mut stack = vec![x];
            self.visit_stamp[x as usize] = self.round;
            while let Some(v) = stack.pop() {
                delta_b.push(v);
                for &w in &self.inn[v as usize] {
                    let wi = w as usize;
                    if self.ord[wi] >= lb && self.visit_stamp[wi] != self.round {
                        self.visit_stamp[wi] = self.round;
                        stack.push(w);
                    }
                }
            }
            // Pool the order values, reassign: δB (in old order) first,
            // then δF (in old order).
            delta_b.sort_by_key(|&v| self.ord[v as usize]);
            delta_f.sort_by_key(|&v| self.ord[v as usize]);
            let mut pool: Vec<u64> = delta_b
                .iter()
                .chain(delta_f.iter())
                .map(|&v| self.ord[v as usize])
                .collect();
            pool.sort_unstable();
            for (slot, &v) in delta_b.iter().chain(delta_f.iter()).enumerate() {
                self.ord[v as usize] = pool[slot];
            }
        }
        self.out[x as usize].push((y, kind));
        self.inn[y as usize].push(x);
        self.edges += 1;
        Ok(())
    }

    /// The live in-neighbors of `v`.
    pub fn in_neighbors(&self, v: u32) -> &[u32] {
        &self.inn[v as usize]
    }

    /// The live out-neighbors of `v`, with edge kinds.
    pub fn out_neighbors(&self, v: u32) -> &[(u32, EdgeKind)] {
        &self.out[v as usize]
    }

    /// Removes node `v` and all its edges; the slot may be reused via
    /// [`ensure_node`](Self::ensure_node).
    pub fn remove_node(&mut self, v: u32) {
        let vi = v as usize;
        debug_assert!(self.alive[vi]);
        let out = std::mem::take(&mut self.out[vi]);
        for (w, _) in out {
            self.inn[w as usize].retain(|&u| u != v);
            self.edges -= 1;
        }
        let inn = std::mem::take(&mut self.inn[vi]);
        for w in inn {
            self.out[w as usize].retain(|&(u, _)| u != v);
            self.edges -= 1;
        }
        self.alive[vi] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k() -> EdgeKind {
        EdgeKind::SessionOrder
    }

    #[test]
    fn in_order_insertions_are_accepted() {
        let mut d = IncrementalDag::new();
        for v in 0..5 {
            d.ensure_node(v);
        }
        for v in 0..4 {
            assert!(d.insert_edge(v, v + 1, k()).is_ok());
        }
        assert_eq!(d.num_edges(), 4);
    }

    #[test]
    fn out_of_order_insertion_reorders() {
        let mut d = IncrementalDag::new();
        for v in 0..3 {
            d.ensure_node(v);
        }
        // 2 → 1 → 0 is fine, just reversed relative to insertion order.
        assert!(d.insert_edge(2, 1, k()).is_ok());
        assert!(d.insert_edge(1, 0, k()).is_ok());
        assert!(d.ord[2] < d.ord[1] && d.ord[1] < d.ord[0]);
    }

    #[test]
    fn cycle_is_detected_with_path() {
        let mut d = IncrementalDag::new();
        for v in 0..3 {
            d.ensure_node(v);
        }
        assert!(d.insert_edge(0, 1, k()).is_ok());
        assert!(d.insert_edge(1, 2, k()).is_ok());
        let err = d.insert_edge(2, 0, k()).unwrap_err();
        // Closed walk: 2 → 0 → 1 → 2.
        assert_eq!(err.len(), 3);
        assert_eq!(err[0].from, 2);
        assert_eq!(err[0].to, 0);
        assert_eq!(err.last().unwrap().to, 2);
        for w in err.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
        // The offending edge was not added; the DAG stays usable.
        assert_eq!(d.num_edges(), 2);
        assert!(d.insert_edge(0, 2, k()).is_ok());
    }

    #[test]
    fn removal_frees_slots_for_reuse() {
        let mut d = IncrementalDag::new();
        for v in 0..3 {
            d.ensure_node(v);
        }
        d.insert_edge(0, 1, k()).unwrap();
        d.insert_edge(1, 2, k()).unwrap();
        d.remove_node(0);
        assert_eq!(d.num_edges(), 1);
        assert_eq!(d.in_degree(1), 0);
        d.ensure_node(0);
        // The recycled slot starts fresh at the end of the order.
        assert!(d.insert_edge(2, 0, k()).is_ok());
        assert!(d.insert_edge(0, 1, k()).unwrap_err().len() >= 2);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut d = IncrementalDag::new();
        for v in 0..2 {
            d.ensure_node(v);
        }
        assert!(d.insert_edge(0, 1, k()).is_ok());
        assert!(d.insert_edge(0, 1, k()).is_ok());
        assert_eq!(d.num_edges(), 1);
    }

    #[test]
    fn long_random_stress_stays_consistent() {
        // Insert a few hundred random edges; every Ok insertion must keep
        // ord a valid topological order.
        let mut d = IncrementalDag::new();
        let n = 60u32;
        for v in 0..n {
            d.ensure_node(v);
        }
        let mut seed = 0x12345678u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for _ in 0..600 {
            let a = next() % n;
            let b = next() % n;
            if a == b {
                continue;
            }
            let _ = d.insert_edge(a, b, k());
            for v in 0..n {
                for &(w, _) in &d.out[v as usize] {
                    assert!(d.ord[v as usize] < d.ord[w as usize], "order invariant");
                }
            }
        }
    }
}
