//! Cooperative shutdown signalling for long-running monitors.
//!
//! A [`ShutdownToken`] is a cheap, cloneable flag shared between the
//! party that decides to stop (a signal handler, a server accept loop, a
//! test harness) and the feed loops that should wind down. Triggering is
//! idempotent and sticky; observers poll
//! [`ShutdownToken::is_triggered`] at their natural batch boundaries —
//! per event line, per accepted connection — and then finalize through
//! [`OnlineChecker::drain`](crate::OnlineChecker::drain) so the terminal
//! summary (thin-air reads, `so ∪ wr` deadlocks) is still emitted.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable, sticky stop flag.
///
/// All clones share one flag: any clone may [`ShutdownToken::trigger`]
/// it, and every clone observes the change.
/// The token carries no callback and allocates nothing beyond one shared
/// atomic, so it is safe to hand to signal handlers (the trigger is a
/// single async-signal-safe atomic store).
#[derive(Clone, Debug, Default)]
pub struct ShutdownToken {
    flag: Arc<AtomicBool>,
}

impl ShutdownToken {
    /// A fresh, untriggered token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent; never blocks.
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether any clone has triggered shutdown.
    pub fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = ShutdownToken::new();
        let c = t.clone();
        assert!(!t.is_triggered() && !c.is_triggered());
        c.trigger();
        assert!(t.is_triggered() && c.is_triggered());
        c.trigger(); // idempotent
        assert!(t.is_triggered());
    }
}
