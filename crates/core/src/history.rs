//! Histories: sessions of transactions with a resolved write–read relation.
//!
//! A [`History`] follows Definition 2.2 of the paper: a set of transactions
//! partitioned into sessions (the session order `so` totally orders each
//! session), where each transaction either committed or aborted, together
//! with a write–read relation `wr` pairing every read with the unique write
//! producing its value. `wr` is not stored explicitly: the unique-value
//! assumption lets the [`HistoryBuilder`] resolve each read to its source
//! write once, at construction time.
//!
//! # Layout
//!
//! The history is **columnar**: all operations live in one flat [`Csr`]
//! buffer (one row per transaction, session-major), with a per-session
//! offsets table and a flat commit-flag column — no nested
//! `Vec<Vec<Transaction>>`, no per-transaction allocation. Accessors hand
//! out lightweight [`TxnView`]/[`SessionView`] values borrowing those
//! columns, so peak memory during ingest is bounded by the columnar output
//! rather than intermediate nesting, and the whole history is a handful of
//! allocations regardless of size.
//!
//! # Streaming ingest
//!
//! [`HistorySink`] is the push-style event vocabulary of history
//! construction (`session`/`begin`/`write`/`read`/`commit`/`abort`).
//! [`HistoryBuilder`] implements it by appending to per-session column
//! buffers; the streaming readers in `awdit-formats`, the simulator in
//! `awdit-simdb`, and the [`Engine`](crate::Engine)'s recycled ingest
//! arenas all speak it, so any producer can feed any consumer without
//! materializing an intermediate representation. [`replay_history`] feeds
//! a finished history back into a sink (the writer-side inverse).

use std::collections::HashMap;
use std::fmt;

use crate::csr::Csr;
use crate::op::{Op, ReadSource};
use crate::types::{Key, OpLoc, SessionId, TxnId, Value};

/// A read-only view of one transaction: its `po`-ordered operations plus
/// the commit flag, borrowing the history's flat columns.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TxnView<'h> {
    ops: &'h [Op],
    committed: bool,
}

impl<'h> TxnView<'h> {
    /// The operations of the transaction in program order.
    #[inline]
    pub fn ops(&self) -> &'h [Op] {
        self.ops
    }

    /// Whether the transaction committed (as opposed to aborted).
    #[inline]
    pub fn is_committed(&self) -> bool {
        self.committed
    }

    /// Number of operations in the transaction.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the transaction has no operations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A read-only view of one session: its transactions in session order.
#[derive(Copy, Clone)]
pub struct SessionView<'h> {
    history: &'h History,
    /// Global (session-major) transaction range of the session.
    start: u32,
    end: u32,
}

impl<'h> SessionView<'h> {
    /// Number of transactions in the session (committed and aborted).
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Returns `true` if the session has no transactions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The transaction at session position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn txn(&self, i: usize) -> TxnView<'h> {
        assert!(i < self.len(), "transaction index out of bounds");
        self.history.global_txn(self.start as usize + i)
    }

    /// Iterates over the session's transactions in session order.
    pub fn iter(&self) -> SessionIter<'h> {
        SessionIter {
            history: self.history,
            range: self.start..self.end,
        }
    }
}

impl<'h> IntoIterator for SessionView<'h> {
    type Item = TxnView<'h>;
    type IntoIter = SessionIter<'h>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over a session's transactions (see [`SessionView::iter`]).
#[derive(Clone)]
pub struct SessionIter<'h> {
    history: &'h History,
    range: std::ops::Range<u32>,
}

impl<'h> Iterator for SessionIter<'h> {
    type Item = TxnView<'h>;

    fn next(&mut self) -> Option<TxnView<'h>> {
        let g = self.range.next()?;
        Some(self.history.global_txn(g as usize))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for SessionIter<'_> {}

/// An immutable transaction history, ready for isolation checking.
///
/// Construct one with [`HistoryBuilder`]. The history owns an interning table
/// mapping dense [`Key`]s back to the user-facing `u64` key names. Storage
/// is columnar — see the [module docs](self).
///
/// # Examples
///
/// ```
/// use awdit_core::HistoryBuilder;
///
/// # fn main() -> Result<(), awdit_core::BuildError> {
/// let mut b = HistoryBuilder::new();
/// let s = b.session();
/// b.begin(s);
/// b.write(s, 100, 1);
/// b.commit(s);
/// b.begin(s);
/// b.read(s, 100, 1);
/// b.commit(s);
/// let history = b.finish()?;
/// assert_eq!(history.num_sessions(), 1);
/// assert_eq!(history.size(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct History {
    /// Session `s`'s transactions are the global (session-major) rows
    /// `session_offsets[s]..session_offsets[s + 1]` of `ops`/`committed`.
    /// Either `k + 1` entries starting at 0, or empty (the no-allocation
    /// form of the zero-session history).
    session_offsets: Vec<u32>,
    /// Row `g`: the operations of global transaction `g`, program order.
    ops: Csr<Op>,
    /// Commit flag of global transaction `g`.
    committed: Vec<bool>,
    key_names: Vec<u64>,
}

impl Default for History {
    /// The empty history (no sessions, no transactions). Performs no heap
    /// allocation, so `std::mem::take` on a history arena is free.
    fn default() -> Self {
        History {
            session_offsets: Vec::new(),
            ops: Csr::new(),
            committed: Vec::new(),
            key_names: Vec::new(),
        }
    }
}

impl History {
    /// The view of global (session-major) transaction `g`.
    #[inline]
    fn global_txn(&self, g: usize) -> TxnView<'_> {
        TxnView {
            ops: self.ops.row(g),
            committed: self.committed[g],
        }
    }

    /// The global row of `id`, panicking if out of bounds.
    #[inline]
    fn global_of(&self, id: TxnId) -> usize {
        let s = id.session as usize;
        let g = self.session_offsets[s] as usize + id.index as usize;
        assert!(
            g < self.session_offsets[s + 1] as usize,
            "transaction {id} out of bounds"
        );
        g
    }

    /// Number of sessions, `k`.
    #[inline]
    pub fn num_sessions(&self) -> usize {
        self.session_offsets.len().saturating_sub(1)
    }

    /// Number of distinct keys appearing in the history, `ℓ`.
    #[inline]
    pub fn num_keys(&self) -> usize {
        self.key_names.len()
    }

    /// Total number of operations, `n` (the *size* of the history).
    #[inline]
    pub fn size(&self) -> usize {
        self.ops.num_values()
    }

    /// The transactions of session `s`, in session order.
    #[inline]
    pub fn session(&self, s: SessionId) -> SessionView<'_> {
        SessionView {
            history: self,
            start: self.session_offsets[s.index()],
            end: self.session_offsets[s.index() + 1],
        }
    }

    /// Iterates over all sessions.
    pub fn sessions(&self) -> impl Iterator<Item = (SessionId, SessionView<'_>)> {
        (0..self.num_sessions()).map(move |s| {
            let sid = SessionId(s as u32);
            (sid, self.session(sid))
        })
    }

    /// Looks up a transaction by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not denote a transaction of this history.
    #[inline]
    pub fn txn(&self, id: TxnId) -> TxnView<'_> {
        self.global_txn(self.global_of(id))
    }

    /// Looks up an operation by location.
    ///
    /// # Panics
    ///
    /// Panics if the location is out of bounds.
    #[inline]
    pub fn op(&self, loc: OpLoc) -> &Op {
        &self.ops.row(self.global_of(loc.txn))[loc.op as usize]
    }

    /// Iterates over all transactions (committed and aborted) with their ids.
    pub fn txns(&self) -> impl Iterator<Item = (TxnId, TxnView<'_>)> {
        self.sessions().flat_map(|(sid, txns)| {
            txns.iter()
                .enumerate()
                .map(move |(i, t)| (TxnId::new(sid.0, i as u32), t))
        })
    }

    /// Iterates over committed transactions only.
    pub fn committed_txns(&self) -> impl Iterator<Item = (TxnId, TxnView<'_>)> {
        self.txns().filter(|(_, t)| t.is_committed())
    }

    /// Number of transactions across all sessions (committed and aborted).
    #[inline]
    pub fn num_txns(&self) -> usize {
        self.committed.len()
    }

    /// Number of committed transactions.
    pub fn num_committed(&self) -> usize {
        self.committed.iter().filter(|&&c| c).count()
    }

    /// The user-facing name of a dense key.
    ///
    /// # Panics
    ///
    /// Panics if the key is not part of this history.
    #[inline]
    pub fn key_name(&self, key: Key) -> u64 {
        self.key_names[key.index()]
    }

    /// Heap footprint of the history's columns in bytes (capacities, not
    /// lengths) — tracked by the [`Engine`](crate::Engine)'s arena-growth
    /// accounting when the history is one of its recycled ingest arenas.
    pub fn heap_bytes(&self) -> usize {
        self.session_offsets.capacity() * std::mem::size_of::<u32>()
            + self.ops.heap_bytes()
            + self.committed.capacity()
            + self.key_names.capacity() * std::mem::size_of::<u64>()
    }

    /// The per-session offsets table: session `s` owns global transactions
    /// `session_offsets[s]..session_offsets[s + 1]`. Either `k + 1` entries
    /// starting at 0, or empty for the zero-session history. Part of the
    /// raw-columns serialization surface used by the binary history format.
    #[inline]
    pub fn session_offsets(&self) -> &[u32] {
        &self.session_offsets
    }

    /// The per-transaction offsets into [`flat_ops`](Self::flat_ops):
    /// global transaction `g` owns ops `txn_op_offsets[g]..
    /// txn_op_offsets[g + 1]`. Either `num_txns + 1` entries starting at
    /// 0, or empty for the zero-transaction history.
    #[inline]
    pub fn txn_op_offsets(&self) -> &[u32] {
        self.ops.offsets()
    }

    /// All operations in one flat buffer, session-major program order.
    #[inline]
    pub fn flat_ops(&self) -> &[Op] {
        self.ops.values()
    }

    /// The commit-flag column, one entry per global transaction.
    #[inline]
    pub fn committed_flags(&self) -> &[bool] {
        &self.committed
    }

    /// The key interning table: `key_names[k]` is the user-facing name of
    /// dense key `k`, in first-appearance order.
    #[inline]
    pub fn key_names(&self) -> &[u64] {
        &self.key_names
    }

    /// Takes the history's column buffers out for recycling, leaving the
    /// empty history behind. The returned buffers are cleared but keep
    /// their capacity — the arena-reuse path of the binary `.awb` loader,
    /// which refills them and reassembles with
    /// [`from_columns`](Self::from_columns).
    pub fn recycle_columns(&mut self) -> HistoryColumns {
        let taken = std::mem::take(self);
        let (txn_offsets, ops) = taken.ops.into_raw_parts();
        let mut cols = HistoryColumns {
            session_offsets: taken.session_offsets,
            txn_offsets,
            ops,
            committed: taken.committed,
            key_names: taken.key_names,
        };
        cols.clear();
        cols
    }

    /// Reassembles a history from raw column buffers, validating every
    /// structural invariant the accessors rely on: canonical monotone
    /// offset tables with the right endpoints, in-bounds keys, and read
    /// sources that point at in-bounds writes of the same `(key, value)`
    /// pair. This is the trusted entry point of the binary `.awb` loader —
    /// any buffers accepted here behave exactly like builder output and
    /// can never make the accessors panic.
    ///
    /// Semantic properties the builder enforces *across* operations (the
    /// unique-value write assumption) are **not** re-derived here; they
    /// hold for any columns obtained from a real history, and re-checking
    /// them would cost the hash pass this path exists to avoid.
    ///
    /// # Errors
    ///
    /// Returns a [`ColumnsError`] naming the first violated invariant.
    pub fn from_columns(cols: HistoryColumns) -> Result<History, ColumnsError> {
        let HistoryColumns {
            session_offsets,
            txn_offsets,
            ops,
            committed,
            key_names,
        } = cols;
        let num_txns = committed.len();

        if session_offsets.is_empty() {
            if num_txns != 0 {
                return Err(ColumnsError::BadSessionOffsets);
            }
        } else {
            // The canonical zero-session form is the *empty* table, not `[0]`.
            if session_offsets.len() == 1
                || session_offsets[0] != 0
                || *session_offsets.last().unwrap() as usize != num_txns
                || session_offsets.windows(2).any(|w| w[0] > w[1])
            {
                return Err(ColumnsError::BadSessionOffsets);
            }
        }

        if num_txns == 0 {
            if !txn_offsets.is_empty() || !ops.is_empty() {
                return Err(ColumnsError::BadTxnOffsets);
            }
        } else if txn_offsets.len() != num_txns + 1
            || txn_offsets[0] != 0
            || *txn_offsets.last().unwrap() as usize != ops.len()
            || txn_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(ColumnsError::BadTxnOffsets);
        }

        {
            let mut seen = std::collections::HashSet::with_capacity(key_names.len());
            for &name in &key_names {
                if !seen.insert(name) {
                    return Err(ColumnsError::DuplicateKeyName { name });
                }
            }
        }

        let num_sessions = session_offsets.len().saturating_sub(1);
        // Checks that `(txn, op)` names a write of `(key, value)`.
        let check_source = |txn: TxnId, src_op: u32, key: Key, value: Value| -> bool {
            let s = txn.session as usize;
            if s >= num_sessions {
                return false;
            }
            let g = session_offsets[s] as usize + txn.index as usize;
            if g >= session_offsets[s + 1] as usize {
                return false;
            }
            let row = txn_offsets[g] as usize..txn_offsets[g + 1] as usize;
            if src_op as usize >= row.len() {
                return false;
            }
            matches!(ops[row.start + src_op as usize],
                Op::Write { key: wk, value: wv } if wk == key && wv == value)
        };

        for s in 0..num_sessions {
            for g in session_offsets[s] as usize..session_offsets[s + 1] as usize {
                let row = txn_offsets[g] as usize..txn_offsets[g + 1] as usize;
                let txn = TxnId::new(s as u32, (g - session_offsets[s] as usize) as u32);
                for (i, op) in ops[row.clone()].iter().enumerate() {
                    if op.key().index() >= key_names.len() {
                        return Err(ColumnsError::KeyOutOfBounds {
                            global_txn: g,
                            op: i,
                        });
                    }
                    let (key, value) = (op.key(), op.value());
                    let ok = match *op {
                        Op::Write { .. } => true,
                        Op::Read { source, .. } => match source {
                            ReadSource::ThinAir => true,
                            ReadSource::Internal { op: src } => check_source(txn, src, key, value),
                            ReadSource::External {
                                txn: src_txn,
                                op: src,
                            } => check_source(src_txn, src, key, value),
                        },
                    };
                    if !ok {
                        return Err(ColumnsError::BadReadSource {
                            global_txn: g,
                            op: i,
                        });
                    }
                }
            }
        }

        Ok(History {
            session_offsets,
            ops: Csr::from_raw_parts(txn_offsets, ops),
            committed,
            key_names,
        })
    }
}

/// The owned raw column buffers of a [`History`], the exchange type of the
/// binary on-disk format: [`History::recycle_columns`] hands them out
/// (cleared, capacity kept) for a loader to refill, and
/// [`History::from_columns`] validates and reassembles them.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct HistoryColumns {
    /// Per-session global-transaction offsets (`k + 1` entries or empty).
    pub session_offsets: Vec<u32>,
    /// Per-transaction offsets into `ops` (`num_txns + 1` entries or empty).
    pub txn_offsets: Vec<u32>,
    /// All operations, session-major program order.
    pub ops: Vec<Op>,
    /// Commit flag per global transaction.
    pub committed: Vec<bool>,
    /// Key interning table in first-appearance order.
    pub key_names: Vec<u64>,
}

impl HistoryColumns {
    /// Clears every buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.session_offsets.clear();
        self.txn_offsets.clear();
        self.ops.clear();
        self.committed.clear();
        self.key_names.clear();
    }
}

/// Errors detected by [`History::from_columns`]: the first structural
/// invariant the supplied column buffers violate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ColumnsError {
    /// The session offsets table is not a canonical monotone table ending
    /// at the transaction count.
    BadSessionOffsets,
    /// The per-transaction op offsets table is not a canonical monotone
    /// table ending at the op count.
    BadTxnOffsets,
    /// An operation names a dense key outside the interning table.
    KeyOutOfBounds {
        /// Global (session-major) index of the offending transaction.
        global_txn: usize,
        /// Op index within the transaction.
        op: usize,
    },
    /// A read's source does not point at an in-bounds write of the same
    /// `(key, value)` pair.
    BadReadSource {
        /// Global (session-major) index of the offending transaction.
        global_txn: usize,
        /// Op index within the transaction.
        op: usize,
    },
    /// Two interning slots carry the same key name.
    DuplicateKeyName {
        /// The duplicated user-facing key name.
        name: u64,
    },
}

impl fmt::Display for ColumnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnsError::BadSessionOffsets => write!(f, "malformed session offsets table"),
            ColumnsError::BadTxnOffsets => write!(f, "malformed transaction offsets table"),
            ColumnsError::KeyOutOfBounds { global_txn, op } => {
                write!(f, "key out of bounds at txn {global_txn} op {op}")
            }
            ColumnsError::BadReadSource { global_txn, op } => {
                write!(f, "invalid read source at txn {global_txn} op {op}")
            }
            ColumnsError::DuplicateKeyName { name } => {
                write!(f, "duplicate key name {name} in interning table")
            }
        }
    }
}

impl std::error::Error for ColumnsError {}

impl fmt::Display for History {
    /// Renders the history in the native text format's spirit: one session
    /// per block, one transaction per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (sid, txns) in self.sessions() {
            writeln!(f, "session {sid}:")?;
            for (i, t) in txns.iter().enumerate() {
                write!(
                    f,
                    "  t{i}{}:",
                    if t.is_committed() { "" } else { " (aborted)" }
                )?;
                for op in t.ops() {
                    write!(f, " {op}")?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

/// Errors detected while building a history.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildError {
    /// Two writes carry the same `(key, value)` pair, breaking the
    /// unique-value assumption required for `wr` resolution.
    DuplicateWrite {
        /// The key written twice with the same value.
        key_name: u64,
        /// The duplicated value.
        value: Value,
        /// The first write.
        first: OpLoc,
        /// The offending second write.
        second: OpLoc,
    },
    /// An operation was issued outside a `begin`/`commit` pair.
    NoOpenTransaction {
        /// Session on which the stray operation was issued.
        session: SessionId,
    },
    /// `finish` was called while a transaction was still open.
    UnclosedTransaction {
        /// Session with the open transaction.
        session: SessionId,
    },
    /// `begin` was called while a transaction was already open.
    NestedTransaction {
        /// Session with the already-open transaction.
        session: SessionId,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateWrite {
                key_name,
                value,
                first,
                second,
            } => write!(
                f,
                "duplicate write of value {value} to key {key_name} at {second} (first written at {first})"
            ),
            BuildError::NoOpenTransaction { session } => {
                write!(f, "operation issued on session {session} with no open transaction")
            }
            BuildError::UnclosedTransaction { session } => {
                write!(f, "session {session} has an unclosed transaction")
            }
            BuildError::NestedTransaction { session } => {
                write!(f, "begin on session {session} while a transaction is open")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// The push-style event vocabulary of history construction — the shared
/// contract between every history *producer* (format readers, the NDJSON
/// stream replay, the simulator) and every *consumer*
/// ([`HistoryBuilder`], the [`Engine`](crate::Engine)'s recycled ingest
/// arenas).
///
/// Sessions are created with [`session`](Self::session) and addressed by
/// the returned [`SessionId`]; events of one session must arrive in that
/// session's order, while different sessions may interleave freely.
/// Malformed event sequences (operations outside a transaction, nested
/// `begin`s) are tolerated by the mutators and reported when the consumer
/// finishes — mirroring [`HistoryBuilder`]'s infallible-mutator design.
pub trait HistorySink {
    /// Adds a new session and returns its id.
    fn session(&mut self) -> SessionId;
    /// Number of sessions created so far.
    fn num_sessions(&self) -> usize;
    /// Begins a transaction on `session`.
    fn begin(&mut self, session: SessionId);
    /// Appends a write of `value` to the key named `key` in the open
    /// transaction.
    fn write(&mut self, session: SessionId, key: u64, value: u64);
    /// Appends a read observing `value` on the key named `key` in the open
    /// transaction.
    fn read(&mut self, session: SessionId, key: u64, value: u64);
    /// Commits the open transaction on `session`.
    fn commit(&mut self, session: SessionId);
    /// Aborts the open transaction on `session`.
    fn abort(&mut self, session: SessionId);
    /// Ensures at least `k` sessions exist (ids `0..k`).
    fn ensure_sessions(&mut self, k: usize) {
        while self.num_sessions() < k {
            self.session();
        }
    }

    /// Bulk-load hook for producers that already hold a *resolved*
    /// columnar history (the binary `.awb` loader): a consumer that can
    /// accept one directly returns a mutable handle to its arena, letting
    /// the producer skip the event vocabulary — and with it the whole
    /// read-resolution pass. The default returns `None`, in which case
    /// producers fall back to replaying events. A producer must use either
    /// this hook or the event methods for any one history, never both.
    fn load_resolved(&mut self) -> Option<&mut History> {
        None
    }
}

/// Feeds a finished history into a sink, session-major (the producer-side
/// inverse of building: what a format reader would emit for an equivalent
/// file). Feeding into a fresh consumer reproduces the history exactly —
/// including key interning order, which follows first appearance in
/// session-major program order.
pub fn replay_history<S: HistorySink + ?Sized>(history: &History, sink: &mut S) {
    sink.ensure_sessions(history.num_sessions());
    for (sid, txns) in history.sessions() {
        for t in txns.iter() {
            sink.begin(sid);
            for op in t.ops() {
                match *op {
                    Op::Write { key, value } => sink.write(sid, history.key_name(key), value.0),
                    Op::Read { key, value, .. } => sink.read(sid, history.key_name(key), value.0),
                }
            }
            if t.is_committed() {
                sink.commit(sid);
            } else {
                sink.abort(sid);
            }
        }
    }
}

/// Raw (unresolved) operation recorded by the builder.
#[derive(Copy, Clone, Debug)]
enum RawOp {
    Write { key: Key, value: Value },
    Read { key: Key, value: Value },
}

/// Per-session columnar staging: all of the session's operations in one
/// flat buffer (the open transaction, if any, is the tail past the closed
/// transactions' ops), plus parallel length/commit columns for the closed
/// transactions. A whole session costs O(1) allocations, all recycled by
/// [`HistoryBuilder::reset`].
#[derive(Debug, Default)]
struct SessionBuf {
    ops: Vec<RawOp>,
    /// Closed transactions' op counts, session order.
    txn_lens: Vec<u32>,
    /// Closed transactions' commit flags (parallel to `txn_lens`).
    committed: Vec<bool>,
    /// Number of ops belonging to closed transactions (prefix of `ops`).
    closed_ops: u32,
    /// Whether a transaction is currently open.
    open: bool,
}

impl SessionBuf {
    fn clear(&mut self) {
        self.ops.clear();
        self.txn_lens.clear();
        self.committed.clear();
        self.closed_ops = 0;
        self.open = false;
    }

    fn heap_bytes(&self) -> usize {
        self.ops.capacity() * std::mem::size_of::<RawOp>()
            + self.txn_lens.capacity() * std::mem::size_of::<u32>()
            + self.committed.capacity()
    }
}

/// Incrementally constructs a [`History`].
///
/// The builder interns `u64` key names into dense [`Key`]s, enforces the
/// unique-value assumption, and resolves every read to its source write when
/// [`finish`](HistoryBuilder::finish) is called. Reads of values nobody wrote
/// resolve to [`ReadSource::ThinAir`] (reported later by the Read Consistency
/// check) rather than failing the build, mirroring how a black-box tester
/// must cope with arbitrary database output.
///
/// Staging is columnar (one flat op buffer per session), so building a
/// history of `T` transactions performs `O(k)` allocations, not `O(T)`;
/// [`finish_into`](Self::finish_into) additionally recycles the output
/// history's buffers and re-arms the builder, which is how the
/// [`Engine`](crate::Engine) ingests whole fleets with a fixed set of
/// arenas. The builder is the canonical [`HistorySink`].
#[derive(Debug, Default)]
pub struct HistoryBuilder {
    /// Session slot pool; the first `num_sessions` are live. Retired slots
    /// keep their buffer capacity for the next history.
    slots: Vec<SessionBuf>,
    num_sessions: usize,
    key_ids: HashMap<u64, Key>,
    key_names: Vec<u64>,
    next_auto_value: u64,
    first_protocol_error: Option<(SessionId, ProtocolError)>,
    /// Unique-value write map, rebuilt per finish (capacity recycled).
    writes: HashMap<(Key, Value), OpLoc>,
}

impl HistoryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a new session and returns its id.
    pub fn session(&mut self) -> SessionId {
        let id = SessionId(self.num_sessions as u32);
        if self.num_sessions == self.slots.len() {
            self.slots.push(SessionBuf::default());
        }
        self.num_sessions += 1;
        id
    }

    /// Number of sessions created so far.
    #[inline]
    pub fn num_sessions(&self) -> usize {
        self.num_sessions
    }

    /// Ensures at least `k` sessions exist, returning their ids.
    pub fn sessions(&mut self, k: usize) -> Vec<SessionId> {
        while self.num_sessions < k {
            self.session();
        }
        (0..k as u32).map(SessionId).collect()
    }

    /// Interns a key name, returning its dense id.
    pub fn key(&mut self, name: u64) -> Key {
        if let Some(&k) = self.key_ids.get(&name) {
            return k;
        }
        let k = Key(self.key_names.len() as u32);
        self.key_ids.insert(name, k);
        self.key_names.push(name);
        k
    }

    #[inline]
    fn buf(&mut self, session: SessionId) -> &mut SessionBuf {
        assert!(session.index() < self.num_sessions, "unknown session");
        &mut self.slots[session.index()]
    }

    /// Begins a transaction on `session`.
    ///
    /// # Panics
    ///
    /// Panics if the session id is unknown. A `begin` while another
    /// transaction is open is reported by [`finish`](Self::finish).
    pub fn begin(&mut self, session: SessionId) {
        if self.buf(session).open {
            // Remember the protocol error; surfacing it from `finish` keeps
            // the builder's mutators infallible.
            self.protocol_error(session, ProtocolError::Nested);
            return;
        }
        self.buf(session).open = true;
    }

    /// Appends a write of `value` to `key_name` in the open transaction.
    pub fn write(&mut self, session: SessionId, key_name: u64, value: u64) {
        let key = self.key(key_name);
        self.push_op(
            session,
            RawOp::Write {
                key,
                value: Value(value),
            },
        );
    }

    /// Appends a write with a fresh, globally-unique value; returns the value.
    pub fn write_auto(&mut self, session: SessionId, key_name: u64) -> u64 {
        // Auto values count down from the top of the range so that they never
        // collide with small user-chosen values.
        self.next_auto_value += 1;
        let v = u64::MAX - self.next_auto_value;
        self.write(session, key_name, v);
        v
    }

    /// Appends a read observing `value` on `key_name` in the open transaction.
    pub fn read(&mut self, session: SessionId, key_name: u64, value: u64) {
        let key = self.key(key_name);
        self.push_op(
            session,
            RawOp::Read {
                key,
                value: Value(value),
            },
        );
    }

    /// Commits the open transaction on `session`.
    pub fn commit(&mut self, session: SessionId) {
        self.close(session, true);
    }

    /// Aborts the open transaction on `session`.
    pub fn abort(&mut self, session: SessionId) {
        self.close(session, false);
    }

    fn close(&mut self, session: SessionId, committed: bool) {
        let buf = self.buf(session);
        if !buf.open {
            self.protocol_error(session, ProtocolError::NotOpen);
            return;
        }
        let len = buf.ops.len() as u32 - buf.closed_ops;
        buf.txn_lens.push(len);
        buf.committed.push(committed);
        buf.closed_ops = buf.ops.len() as u32;
        buf.open = false;
    }

    fn push_op(&mut self, session: SessionId, op: RawOp) {
        let buf = self.buf(session);
        if !buf.open {
            self.protocol_error(session, ProtocolError::NotOpen);
            return;
        }
        buf.ops.push(op);
    }

    fn protocol_error(&mut self, session: SessionId, kind: ProtocolError) {
        if self.first_protocol_error.is_none() {
            self.first_protocol_error = Some((session, kind));
        }
    }

    /// Clears the builder for the next history, keeping every buffer's
    /// capacity (session slots, key tables, the write map). Called
    /// automatically by [`finish_into`](Self::finish_into); call it
    /// directly to discard a partially-fed history (e.g. after a parse
    /// error mid-stream).
    pub fn reset(&mut self) {
        for s in &mut self.slots[..self.num_sessions] {
            s.clear();
        }
        self.num_sessions = 0;
        self.key_ids.clear();
        self.key_names.clear();
        self.next_auto_value = 0;
        self.first_protocol_error = None;
        self.writes.clear();
    }

    /// Heap footprint of the builder's staging buffers in bytes
    /// (capacities, not lengths; hash maps estimated from their
    /// capacities) — tracked by the engine's arena-growth accounting
    /// when the builder is its recycled ingest sink.
    pub fn heap_bytes(&self) -> usize {
        self.slots.iter().map(SessionBuf::heap_bytes).sum::<usize>()
            + self.slots.capacity() * std::mem::size_of::<SessionBuf>()
            + self.key_names.capacity() * std::mem::size_of::<u64>()
            + self.key_ids.capacity() * std::mem::size_of::<(u64, Key)>()
            + self.writes.capacity() * std::mem::size_of::<((Key, Value), OpLoc)>()
    }

    /// Resolves reads and produces the immutable [`History`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateWrite`] if two writes share a
    /// `(key, value)` pair, and protocol errors
    /// ([`BuildError::NoOpenTransaction`], [`BuildError::NestedTransaction`],
    /// [`BuildError::UnclosedTransaction`]) for malformed begin/commit
    /// sequences.
    pub fn finish(mut self) -> Result<History, BuildError> {
        let mut out = History::default();
        self.finish_into(&mut out)?;
        Ok(out)
    }

    /// [`finish`](Self::finish) into a caller-owned history arena: `out`'s
    /// columns are cleared and refilled in place (capacities kept), and the
    /// builder is [`reset`](Self::reset) for the next history. A second
    /// same-shape build therefore performs **zero** heap growth on either
    /// side — the [`Engine`](crate::Engine)'s streaming-ingest path.
    ///
    /// # Errors
    ///
    /// As [`finish`]. On error `out` is left cleared (empty history) and
    /// the builder is reset.
    ///
    /// [`finish`]: Self::finish
    pub fn finish_into(&mut self, out: &mut History) -> Result<(), BuildError> {
        let result = self.finish_into_inner(out);
        self.reset();
        result
    }

    fn finish_into_inner(&mut self, out: &mut History) -> Result<(), BuildError> {
        // Clear the output columns up front so the error paths leave the
        // canonical empty history behind (equal to `History::default()`).
        out.session_offsets.clear();
        out.committed.clear();
        out.key_names.clear();
        let mut ops = std::mem::take(&mut out.ops).into_builder();

        if let Some((session, kind)) = self.first_protocol_error {
            out.ops = ops.finish();
            return Err(match kind {
                ProtocolError::NotOpen => BuildError::NoOpenTransaction { session },
                ProtocolError::Nested => BuildError::NestedTransaction { session },
            });
        }
        for (s, buf) in self.slots[..self.num_sessions].iter().enumerate() {
            if buf.open {
                out.ops = ops.finish();
                return Err(BuildError::UnclosedTransaction {
                    session: SessionId(s as u32),
                });
            }
        }

        // Pass 1: build the unique-value write map (key, value) -> location.
        self.writes.clear();
        for (s, buf) in self.slots[..self.num_sessions].iter().enumerate() {
            let mut off = 0usize;
            for (i, &len) in buf.txn_lens.iter().enumerate() {
                let txn = TxnId::new(s as u32, i as u32);
                for p in 0..len as usize {
                    if let RawOp::Write { key, value } = buf.ops[off + p] {
                        let loc = OpLoc::new(txn, p as u32);
                        if let Some(&first) = self.writes.get(&(key, value)) {
                            out.ops = ops.finish();
                            return Err(BuildError::DuplicateWrite {
                                key_name: self.key_names[key.index()],
                                value,
                                first,
                                second: loc,
                            });
                        }
                        self.writes.insert((key, value), loc);
                    }
                }
                off += len as usize;
            }
        }

        // Pass 2: resolve reads, appending straight to the flat columns.
        out.session_offsets.push(0);
        for (s, buf) in self.slots[..self.num_sessions].iter().enumerate() {
            let mut off = 0usize;
            for (i, &len) in buf.txn_lens.iter().enumerate() {
                let txn = TxnId::new(s as u32, i as u32);
                for p in 0..len as usize {
                    ops.push_value(match buf.ops[off + p] {
                        RawOp::Write { key, value } => Op::Write { key, value },
                        RawOp::Read { key, value } => {
                            let source = match self.writes.get(&(key, value)) {
                                Some(&loc) if loc.txn == txn => ReadSource::Internal { op: loc.op },
                                Some(&loc) => ReadSource::External {
                                    txn: loc.txn,
                                    op: loc.op,
                                },
                                None => ReadSource::ThinAir,
                            };
                            Op::Read { key, value, source }
                        }
                    });
                }
                ops.close_row();
                out.committed.push(buf.committed[i]);
                off += len as usize;
            }
            out.session_offsets.push(out.committed.len() as u32);
        }

        out.ops = ops.finish();
        out.key_names.extend_from_slice(&self.key_names);
        if self.num_sessions == 0 {
            // Canonical zero-session form, equal to `History::default()`.
            out.session_offsets.clear();
        }
        Ok(())
    }
}

impl HistorySink for HistoryBuilder {
    fn session(&mut self) -> SessionId {
        HistoryBuilder::session(self)
    }
    fn num_sessions(&self) -> usize {
        HistoryBuilder::num_sessions(self)
    }
    fn begin(&mut self, session: SessionId) {
        HistoryBuilder::begin(self, session);
    }
    fn write(&mut self, session: SessionId, key: u64, value: u64) {
        HistoryBuilder::write(self, session, key, value);
    }
    fn read(&mut self, session: SessionId, key: u64, value: u64) {
        HistoryBuilder::read(self, session, key, value);
    }
    fn commit(&mut self, session: SessionId) {
        HistoryBuilder::commit(self, session);
    }
    fn abort(&mut self, session: SessionId) {
        HistoryBuilder::abort(self, session);
    }
}

#[derive(Copy, Clone, Debug)]
enum ProtocolError {
    NotOpen,
    Nested,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_history() -> History {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        b.begin(s0);
        b.write(s0, 10, 1);
        b.write(s0, 20, 2);
        b.commit(s0);
        b.begin(s1);
        b.read(s1, 10, 1);
        b.read(s1, 20, 2);
        b.commit(s1);
        b.finish().unwrap()
    }

    #[test]
    fn builds_and_resolves_external_reads() {
        let h = simple_history();
        assert_eq!(h.num_sessions(), 2);
        assert_eq!(h.size(), 4);
        assert_eq!(h.num_keys(), 2);
        let t = h.txn(TxnId::new(1, 0));
        match t.ops()[0] {
            Op::Read { source, .. } => {
                assert_eq!(
                    source,
                    ReadSource::External {
                        txn: TxnId::new(0, 0),
                        op: 0
                    }
                );
            }
            _ => panic!("expected read"),
        }
    }

    #[test]
    fn resolves_internal_and_thin_air_reads() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        b.begin(s);
        b.write(s, 1, 5);
        b.read(s, 1, 5); // internal
        b.read(s, 1, 99); // thin air
        b.commit(s);
        let h = b.finish().unwrap();
        let t = h.txn(TxnId::new(0, 0));
        assert_eq!(
            t.ops()[1].read_source(),
            Some(ReadSource::Internal { op: 0 })
        );
        assert_eq!(t.ops()[2].read_source(), Some(ReadSource::ThinAir));
    }

    #[test]
    fn duplicate_write_is_rejected() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        b.begin(s);
        b.write(s, 1, 5);
        b.write(s, 1, 5);
        b.commit(s);
        match b.finish() {
            Err(BuildError::DuplicateWrite { key_name, .. }) => assert_eq!(key_name, 1),
            other => panic!("expected duplicate write error, got {other:?}"),
        }
    }

    #[test]
    fn same_value_on_different_keys_is_fine() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        b.begin(s);
        b.write(s, 1, 5);
        b.write(s, 2, 5);
        b.commit(s);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn protocol_errors_are_reported() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        b.write(s, 1, 1); // no open txn
        assert!(matches!(
            b.finish(),
            Err(BuildError::NoOpenTransaction { .. })
        ));

        let mut b = HistoryBuilder::new();
        let s = b.session();
        b.begin(s);
        b.begin(s);
        assert!(matches!(
            b.finish(),
            Err(BuildError::NestedTransaction { .. })
        ));

        let mut b = HistoryBuilder::new();
        let s = b.session();
        b.begin(s);
        b.write(s, 1, 1);
        assert!(matches!(
            b.finish(),
            Err(BuildError::UnclosedTransaction { .. })
        ));
    }

    #[test]
    fn aborted_transactions_are_kept() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        b.begin(s);
        b.write(s, 1, 1);
        b.abort(s);
        b.begin(s);
        b.read(s, 1, 1);
        b.commit(s);
        let h = b.finish().unwrap();
        assert_eq!(h.num_txns(), 2);
        assert_eq!(h.num_committed(), 1);
        assert!(!h.txn(TxnId::new(0, 0)).is_committed());
        // The read still resolves to the aborted write; Read Consistency
        // flags it later.
        assert_eq!(
            h.txn(TxnId::new(0, 1)).ops()[0].read_source(),
            Some(ReadSource::External {
                txn: TxnId::new(0, 0),
                op: 0
            })
        );
    }

    #[test]
    fn write_auto_values_do_not_collide() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        b.begin(s);
        let v1 = b.write_auto(s, 1);
        let v2 = b.write_auto(s, 1);
        b.write(s, 1, 1);
        b.commit(s);
        assert_ne!(v1, v2);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn display_renders_sessions() {
        let h = simple_history();
        let s = h.to_string();
        assert!(s.contains("session s0:"));
        assert!(s.contains("W(k0, 1)"));
        assert!(s.contains("R(k1, 2)"));
    }

    #[test]
    fn key_interning_is_stable() {
        let mut b = HistoryBuilder::new();
        let k1 = b.key(42);
        let k2 = b.key(42);
        let k3 = b.key(43);
        assert_eq!(k1, k2);
        assert_ne!(k1, k3);
        let s = b.session();
        b.begin(s);
        b.write(s, 42, 1);
        b.commit(s);
        let h = b.finish().unwrap();
        assert_eq!(h.key_name(k1), 42);
    }

    #[test]
    fn finish_into_recycles_both_sides() {
        let feed = |b: &mut HistoryBuilder| {
            let s0 = HistorySink::session(b);
            let s1 = HistorySink::session(b);
            for k in 0..8u64 {
                b.begin(s0);
                b.write(s0, k, k + 1);
                b.commit(s0);
                b.begin(s1);
                b.read(s1, k, k + 1);
                b.commit(s1);
            }
        };
        let mut b = HistoryBuilder::new();
        feed(&mut b);
        let mut h = History::default();
        b.finish_into(&mut h).unwrap();
        let first = h.clone();
        let bytes_h = h.heap_bytes();
        let bytes_b = b.heap_bytes();
        // Builder was reset: same feed produces a bit-identical history
        // with zero growth of either arena.
        feed(&mut b);
        b.finish_into(&mut h).unwrap();
        assert_eq!(h, first);
        assert_eq!(h.heap_bytes(), bytes_h);
        assert_eq!(b.heap_bytes(), bytes_b);
    }

    #[test]
    fn finish_into_error_leaves_empty_history_and_reset_builder() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        b.begin(s);
        b.write(s, 1, 1);
        let mut h = History::default();
        assert!(matches!(
            b.finish_into(&mut h),
            Err(BuildError::UnclosedTransaction { .. })
        ));
        assert_eq!(h.num_txns(), 0);
        assert_eq!(h.num_sessions(), 0);
        assert_eq!(h, History::default(), "error state is canonically empty");
        // The builder is ready for the next history.
        assert_eq!(b.num_sessions(), 0);
        let s = b.session();
        b.begin(s);
        b.write(s, 1, 1);
        b.commit(s);
        assert!(b.finish_into(&mut h).is_ok());
        assert_eq!(h.num_txns(), 1);
    }

    #[test]
    fn replay_reproduces_history_exactly() {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        b.begin(s0);
        b.write(s0, 7, 1);
        b.commit(s0);
        b.begin(s1);
        b.read(s1, 7, 1);
        b.write(s1, 3, 2);
        b.abort(s1);
        b.begin(s1);
        b.read(s1, 7, 99); // thin air survives replay
        b.commit(s1);
        let h = b.finish().unwrap();
        let mut b2 = HistoryBuilder::new();
        replay_history(&h, &mut b2);
        assert_eq!(b2.finish().unwrap(), h);
    }

    fn columns_of(h: &History) -> HistoryColumns {
        HistoryColumns {
            session_offsets: h.session_offsets().to_vec(),
            txn_offsets: h.txn_op_offsets().to_vec(),
            ops: h.flat_ops().to_vec(),
            committed: h.committed_flags().to_vec(),
            key_names: h.key_names().to_vec(),
        }
    }

    #[test]
    fn columns_round_trip_identically() {
        let h = simple_history();
        let rebuilt = History::from_columns(columns_of(&h)).unwrap();
        assert_eq!(rebuilt, h);

        let empty = History::from_columns(HistoryColumns::default()).unwrap();
        assert_eq!(empty, History::default());
    }

    #[test]
    fn recycle_columns_empties_and_keeps_capacity() {
        let mut h = simple_history();
        let cols = h.recycle_columns();
        assert_eq!(h, History::default());
        assert!(cols.ops.is_empty());
        assert!(cols.ops.capacity() >= 4);
    }

    #[test]
    fn from_columns_rejects_broken_invariants() {
        let h = simple_history();
        let base = columns_of(&h);

        let mut c = base.clone();
        c.session_offsets[1] = 9;
        assert!(matches!(
            History::from_columns(c),
            Err(ColumnsError::BadSessionOffsets)
        ));

        let mut c = base.clone();
        c.txn_offsets.pop();
        assert!(matches!(
            History::from_columns(c),
            Err(ColumnsError::BadTxnOffsets)
        ));

        let mut c = base.clone();
        c.key_names.clear();
        assert!(matches!(
            History::from_columns(c),
            Err(ColumnsError::KeyOutOfBounds { .. })
        ));

        let mut c = base.clone();
        c.key_names[1] = c.key_names[0];
        assert!(matches!(
            History::from_columns(c),
            Err(ColumnsError::DuplicateKeyName { .. })
        ));

        // Point session 1's read at a non-existent op of txn (0, 0).
        let mut c = base.clone();
        c.ops[2] = Op::Read {
            key: Key(0),
            value: Value(1),
            source: ReadSource::External {
                txn: TxnId::new(0, 0),
                op: 7,
            },
        };
        assert!(matches!(
            History::from_columns(c),
            Err(ColumnsError::BadReadSource { .. })
        ));

        // A non-canonical `[0]` session table is rejected.
        let mut c = HistoryColumns::default();
        c.session_offsets.push(0);
        assert!(matches!(
            History::from_columns(c),
            Err(ColumnsError::BadSessionOffsets)
        ));
    }

    #[test]
    fn session_views_index_and_iterate() {
        let h = simple_history();
        let v = h.session(SessionId(0));
        assert_eq!(v.len(), 1);
        assert!(!v.is_empty());
        assert_eq!(v.txn(0).len(), 2);
        let collected: Vec<usize> = v.iter().map(|t| t.len()).collect();
        assert_eq!(collected, vec![2]);
        let by_value: Vec<bool> = v.into_iter().map(|t| t.is_committed()).collect();
        assert_eq!(by_value, vec![true]);
    }
}
