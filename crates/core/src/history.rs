//! Histories: sessions of transactions with a resolved write–read relation.
//!
//! A [`History`] follows Definition 2.2 of the paper: a set of transactions
//! partitioned into sessions (the session order `so` totally orders each
//! session), where each transaction either committed or aborted, together
//! with a write–read relation `wr` pairing every read with the unique write
//! producing its value. `wr` is not stored explicitly: the unique-value
//! assumption lets the [`HistoryBuilder`] resolve each read to its source
//! write once, at construction time.

use std::collections::HashMap;
use std::fmt;

use crate::op::{Op, ReadSource};
use crate::types::{Key, OpLoc, SessionId, TxnId, Value};

/// A transaction: a `po`-ordered list of operations plus a commit flag.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transaction {
    ops: Vec<Op>,
    committed: bool,
}

impl Transaction {
    /// The operations of the transaction in program order.
    #[inline]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Whether the transaction committed (as opposed to aborted).
    #[inline]
    pub fn is_committed(&self) -> bool {
        self.committed
    }

    /// Number of operations in the transaction.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the transaction has no operations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// An immutable transaction history, ready for isolation checking.
///
/// Construct one with [`HistoryBuilder`]. The history owns an interning table
/// mapping dense [`Key`]s back to the user-facing `u64` key names.
///
/// # Examples
///
/// ```
/// use awdit_core::HistoryBuilder;
///
/// # fn main() -> Result<(), awdit_core::BuildError> {
/// let mut b = HistoryBuilder::new();
/// let s = b.session();
/// b.begin(s);
/// b.write(s, 100, 1);
/// b.commit(s);
/// b.begin(s);
/// b.read(s, 100, 1);
/// b.commit(s);
/// let history = b.finish()?;
/// assert_eq!(history.num_sessions(), 1);
/// assert_eq!(history.size(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct History {
    sessions: Vec<Vec<Transaction>>,
    key_names: Vec<u64>,
    size: usize,
}

impl History {
    /// Number of sessions, `k`.
    #[inline]
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Number of distinct keys appearing in the history, `ℓ`.
    #[inline]
    pub fn num_keys(&self) -> usize {
        self.key_names.len()
    }

    /// Total number of operations, `n` (the *size* of the history).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The transactions of session `s`, in session order.
    #[inline]
    pub fn session(&self, s: SessionId) -> &[Transaction] {
        &self.sessions[s.index()]
    }

    /// Iterates over all sessions.
    pub fn sessions(&self) -> impl Iterator<Item = (SessionId, &[Transaction])> {
        self.sessions
            .iter()
            .enumerate()
            .map(|(i, txns)| (SessionId(i as u32), txns.as_slice()))
    }

    /// Looks up a transaction by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not denote a transaction of this history.
    #[inline]
    pub fn txn(&self, id: TxnId) -> &Transaction {
        &self.sessions[id.session as usize][id.index as usize]
    }

    /// Looks up an operation by location.
    ///
    /// # Panics
    ///
    /// Panics if the location is out of bounds.
    #[inline]
    pub fn op(&self, loc: OpLoc) -> &Op {
        &self.txn(loc.txn).ops()[loc.op as usize]
    }

    /// Iterates over all transactions (committed and aborted) with their ids.
    pub fn txns(&self) -> impl Iterator<Item = (TxnId, &Transaction)> {
        self.sessions.iter().enumerate().flat_map(|(s, txns)| {
            txns.iter()
                .enumerate()
                .map(move |(i, t)| (TxnId::new(s as u32, i as u32), t))
        })
    }

    /// Iterates over committed transactions only.
    pub fn committed_txns(&self) -> impl Iterator<Item = (TxnId, &Transaction)> {
        self.txns().filter(|(_, t)| t.is_committed())
    }

    /// Number of transactions across all sessions (committed and aborted).
    pub fn num_txns(&self) -> usize {
        self.sessions.iter().map(Vec::len).sum()
    }

    /// Number of committed transactions.
    pub fn num_committed(&self) -> usize {
        self.committed_txns().count()
    }

    /// The user-facing name of a dense key.
    ///
    /// # Panics
    ///
    /// Panics if the key is not part of this history.
    #[inline]
    pub fn key_name(&self, key: Key) -> u64 {
        self.key_names[key.index()]
    }
}

impl fmt::Display for History {
    /// Renders the history in the native text format's spirit: one session
    /// per block, one transaction per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (sid, txns) in self.sessions() {
            writeln!(f, "session {sid}:")?;
            for (i, t) in txns.iter().enumerate() {
                write!(
                    f,
                    "  t{i}{}:",
                    if t.is_committed() { "" } else { " (aborted)" }
                )?;
                for op in t.ops() {
                    write!(f, " {op}")?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

/// Errors detected while building a history.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildError {
    /// Two writes carry the same `(key, value)` pair, breaking the
    /// unique-value assumption required for `wr` resolution.
    DuplicateWrite {
        /// The key written twice with the same value.
        key_name: u64,
        /// The duplicated value.
        value: Value,
        /// The first write.
        first: OpLoc,
        /// The offending second write.
        second: OpLoc,
    },
    /// An operation was issued outside a `begin`/`commit` pair.
    NoOpenTransaction {
        /// Session on which the stray operation was issued.
        session: SessionId,
    },
    /// `finish` was called while a transaction was still open.
    UnclosedTransaction {
        /// Session with the open transaction.
        session: SessionId,
    },
    /// `begin` was called while a transaction was already open.
    NestedTransaction {
        /// Session with the already-open transaction.
        session: SessionId,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateWrite {
                key_name,
                value,
                first,
                second,
            } => write!(
                f,
                "duplicate write of value {value} to key {key_name} at {second} (first written at {first})"
            ),
            BuildError::NoOpenTransaction { session } => {
                write!(f, "operation issued on session {session} with no open transaction")
            }
            BuildError::UnclosedTransaction { session } => {
                write!(f, "session {session} has an unclosed transaction")
            }
            BuildError::NestedTransaction { session } => {
                write!(f, "begin on session {session} while a transaction is open")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Raw (unresolved) operation recorded by the builder.
#[derive(Copy, Clone, Debug)]
enum RawOp {
    Write { key: Key, value: Value },
    Read { key: Key, value: Value },
}

#[derive(Debug)]
struct RawTxn {
    ops: Vec<RawOp>,
    committed: bool,
}

/// Incrementally constructs a [`History`].
///
/// The builder interns `u64` key names into dense [`Key`]s, enforces the
/// unique-value assumption, and resolves every read to its source write when
/// [`finish`](HistoryBuilder::finish) is called. Reads of values nobody wrote
/// resolve to [`ReadSource::ThinAir`] (reported later by the Read Consistency
/// check) rather than failing the build, mirroring how a black-box tester
/// must cope with arbitrary database output.
#[derive(Debug, Default)]
pub struct HistoryBuilder {
    sessions: Vec<Vec<RawTxn>>,
    open: Vec<Option<RawTxn>>,
    key_ids: HashMap<u64, Key>,
    key_names: Vec<u64>,
    next_auto_value: u64,
    first_protocol_error: Option<(SessionId, ProtocolError)>,
}

impl HistoryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a new session and returns its id.
    pub fn session(&mut self) -> SessionId {
        let id = SessionId(self.sessions.len() as u32);
        self.sessions.push(Vec::new());
        self.open.push(None);
        id
    }

    /// Ensures at least `k` sessions exist, returning their ids.
    pub fn sessions(&mut self, k: usize) -> Vec<SessionId> {
        while self.sessions.len() < k {
            self.session();
        }
        (0..k as u32).map(SessionId).collect()
    }

    /// Interns a key name, returning its dense id.
    pub fn key(&mut self, name: u64) -> Key {
        if let Some(&k) = self.key_ids.get(&name) {
            return k;
        }
        let k = Key(self.key_names.len() as u32);
        self.key_ids.insert(name, k);
        self.key_names.push(name);
        k
    }

    /// Begins a transaction on `session`.
    ///
    /// # Panics
    ///
    /// Panics if the session id is unknown. A `begin` while another
    /// transaction is open is reported by [`finish`](Self::finish).
    pub fn begin(&mut self, session: SessionId) {
        let slot = &mut self.open[session.index()];
        if slot.is_some() {
            // Close the previous transaction as aborted and remember the
            // protocol error; surfacing it from `finish` keeps the builder's
            // mutators infallible.
            self.protocol_error(session, ProtocolError::Nested);
            return;
        }
        *slot = Some(RawTxn {
            ops: Vec::new(),
            committed: false,
        });
    }

    /// Appends a write of `value` to `key_name` in the open transaction.
    pub fn write(&mut self, session: SessionId, key_name: u64, value: u64) {
        let key = self.key(key_name);
        self.push_op(
            session,
            RawOp::Write {
                key,
                value: Value(value),
            },
        );
    }

    /// Appends a write with a fresh, globally-unique value; returns the value.
    pub fn write_auto(&mut self, session: SessionId, key_name: u64) -> u64 {
        // Auto values count down from the top of the range so that they never
        // collide with small user-chosen values.
        self.next_auto_value += 1;
        let v = u64::MAX - self.next_auto_value;
        self.write(session, key_name, v);
        v
    }

    /// Appends a read observing `value` on `key_name` in the open transaction.
    pub fn read(&mut self, session: SessionId, key_name: u64, value: u64) {
        let key = self.key(key_name);
        self.push_op(
            session,
            RawOp::Read {
                key,
                value: Value(value),
            },
        );
    }

    /// Commits the open transaction on `session`.
    pub fn commit(&mut self, session: SessionId) {
        self.close(session, true);
    }

    /// Aborts the open transaction on `session`.
    pub fn abort(&mut self, session: SessionId) {
        self.close(session, false);
    }

    fn close(&mut self, session: SessionId, committed: bool) {
        match self.open[session.index()].take() {
            Some(mut t) => {
                t.committed = committed;
                self.sessions[session.index()].push(t);
            }
            None => self.protocol_error(session, ProtocolError::NotOpen),
        }
    }

    fn push_op(&mut self, session: SessionId, op: RawOp) {
        match &mut self.open[session.index()] {
            Some(t) => t.ops.push(op),
            None => self.protocol_error(session, ProtocolError::NotOpen),
        }
    }

    fn protocol_error(&mut self, session: SessionId, kind: ProtocolError) {
        if self.first_protocol_error.is_none() {
            self.first_protocol_error = Some((session, kind));
        }
    }

    /// Resolves reads and produces the immutable [`History`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateWrite`] if two writes share a
    /// `(key, value)` pair, and protocol errors
    /// ([`BuildError::NoOpenTransaction`], [`BuildError::NestedTransaction`],
    /// [`BuildError::UnclosedTransaction`]) for malformed begin/commit
    /// sequences.
    pub fn finish(mut self) -> Result<History, BuildError> {
        if let Some((session, kind)) = self.first_protocol_error {
            return Err(match kind {
                ProtocolError::NotOpen => BuildError::NoOpenTransaction { session },
                ProtocolError::Nested => BuildError::NestedTransaction { session },
            });
        }
        for (s, slot) in self.open.iter().enumerate() {
            if slot.is_some() {
                return Err(BuildError::UnclosedTransaction {
                    session: SessionId(s as u32),
                });
            }
        }

        // Pass 1: build the unique-value write map (key, value) -> location.
        let mut writes: HashMap<(Key, Value), OpLoc> = HashMap::new();
        for (s, txns) in self.sessions.iter().enumerate() {
            for (i, t) in txns.iter().enumerate() {
                let txn = TxnId::new(s as u32, i as u32);
                for (p, op) in t.ops.iter().enumerate() {
                    if let RawOp::Write { key, value } = *op {
                        let loc = OpLoc::new(txn, p as u32);
                        if let Some(&first) = writes.get(&(key, value)) {
                            return Err(BuildError::DuplicateWrite {
                                key_name: self.key_names[key.index()],
                                value,
                                first,
                                second: loc,
                            });
                        }
                        writes.insert((key, value), loc);
                    }
                }
            }
        }

        // Pass 2: resolve reads.
        let mut size = 0usize;
        let sessions: Vec<Vec<Transaction>> = self
            .sessions
            .drain(..)
            .enumerate()
            .map(|(s, txns)| {
                txns.into_iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let txn = TxnId::new(s as u32, i as u32);
                        size += t.ops.len();
                        let ops = t
                            .ops
                            .into_iter()
                            .map(|op| match op {
                                RawOp::Write { key, value } => Op::Write { key, value },
                                RawOp::Read { key, value } => {
                                    let source = match writes.get(&(key, value)) {
                                        Some(&loc) if loc.txn == txn => {
                                            ReadSource::Internal { op: loc.op }
                                        }
                                        Some(&loc) => ReadSource::External {
                                            txn: loc.txn,
                                            op: loc.op,
                                        },
                                        None => ReadSource::ThinAir,
                                    };
                                    Op::Read { key, value, source }
                                }
                            })
                            .collect();
                        Transaction {
                            ops,
                            committed: t.committed,
                        }
                    })
                    .collect()
            })
            .collect();

        Ok(History {
            sessions,
            key_names: self.key_names,
            size,
        })
    }
}

#[derive(Copy, Clone, Debug)]
enum ProtocolError {
    NotOpen,
    Nested,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_history() -> History {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        b.begin(s0);
        b.write(s0, 10, 1);
        b.write(s0, 20, 2);
        b.commit(s0);
        b.begin(s1);
        b.read(s1, 10, 1);
        b.read(s1, 20, 2);
        b.commit(s1);
        b.finish().unwrap()
    }

    #[test]
    fn builds_and_resolves_external_reads() {
        let h = simple_history();
        assert_eq!(h.num_sessions(), 2);
        assert_eq!(h.size(), 4);
        assert_eq!(h.num_keys(), 2);
        let t = h.txn(TxnId::new(1, 0));
        match t.ops()[0] {
            Op::Read { source, .. } => {
                assert_eq!(
                    source,
                    ReadSource::External {
                        txn: TxnId::new(0, 0),
                        op: 0
                    }
                );
            }
            _ => panic!("expected read"),
        }
    }

    #[test]
    fn resolves_internal_and_thin_air_reads() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        b.begin(s);
        b.write(s, 1, 5);
        b.read(s, 1, 5); // internal
        b.read(s, 1, 99); // thin air
        b.commit(s);
        let h = b.finish().unwrap();
        let t = h.txn(TxnId::new(0, 0));
        assert_eq!(
            t.ops()[1].read_source(),
            Some(ReadSource::Internal { op: 0 })
        );
        assert_eq!(t.ops()[2].read_source(), Some(ReadSource::ThinAir));
    }

    #[test]
    fn duplicate_write_is_rejected() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        b.begin(s);
        b.write(s, 1, 5);
        b.write(s, 1, 5);
        b.commit(s);
        match b.finish() {
            Err(BuildError::DuplicateWrite { key_name, .. }) => assert_eq!(key_name, 1),
            other => panic!("expected duplicate write error, got {other:?}"),
        }
    }

    #[test]
    fn same_value_on_different_keys_is_fine() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        b.begin(s);
        b.write(s, 1, 5);
        b.write(s, 2, 5);
        b.commit(s);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn protocol_errors_are_reported() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        b.write(s, 1, 1); // no open txn
        assert!(matches!(
            b.finish(),
            Err(BuildError::NoOpenTransaction { .. })
        ));

        let mut b = HistoryBuilder::new();
        let s = b.session();
        b.begin(s);
        b.begin(s);
        assert!(matches!(
            b.finish(),
            Err(BuildError::NestedTransaction { .. })
        ));

        let mut b = HistoryBuilder::new();
        let s = b.session();
        b.begin(s);
        b.write(s, 1, 1);
        assert!(matches!(
            b.finish(),
            Err(BuildError::UnclosedTransaction { .. })
        ));
    }

    #[test]
    fn aborted_transactions_are_kept() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        b.begin(s);
        b.write(s, 1, 1);
        b.abort(s);
        b.begin(s);
        b.read(s, 1, 1);
        b.commit(s);
        let h = b.finish().unwrap();
        assert_eq!(h.num_txns(), 2);
        assert_eq!(h.num_committed(), 1);
        assert!(!h.txn(TxnId::new(0, 0)).is_committed());
        // The read still resolves to the aborted write; Read Consistency
        // flags it later.
        assert_eq!(
            h.txn(TxnId::new(0, 1)).ops()[0].read_source(),
            Some(ReadSource::External {
                txn: TxnId::new(0, 0),
                op: 0
            })
        );
    }

    #[test]
    fn write_auto_values_do_not_collide() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        b.begin(s);
        let v1 = b.write_auto(s, 1);
        let v2 = b.write_auto(s, 1);
        b.write(s, 1, 1);
        b.commit(s);
        assert_ne!(v1, v2);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn display_renders_sessions() {
        let h = simple_history();
        let s = h.to_string();
        assert!(s.contains("session s0:"));
        assert!(s.contains("W(k0, 1)"));
        assert!(s.contains("R(k1, 2)"));
    }

    #[test]
    fn key_interning_is_stable() {
        let mut b = HistoryBuilder::new();
        let k1 = b.key(42);
        let k2 = b.key(42);
        let k3 = b.key(43);
        assert_eq!(k1, k2);
        assert_ne!(k1, k3);
        let s = b.session();
        b.begin(s);
        b.write(s, 42, 1);
        b.commit(s);
        let h = b.finish().unwrap();
        assert_eq!(h.key_name(k1), 42);
    }
}
