//! Extracting commit orders from acyclic saturations, and independently
//! validating a given commit order against the axioms.
//!
//! [`validate_commit_order`] implements Definitions 2.4/2.6/2.8 *directly*
//! (quantifying over transaction triples), with no saturation or minimality
//! tricks. It is quadratic and meant as a test oracle: Lemma 3.2 says the
//! checkers' verdicts must agree with "some linearization of `co′`
//! validates", which the test suites exercise on every consistent history.

use std::fmt;

use crate::graph::CommitGraph;
use crate::history::History;
use crate::index::{DenseId, HistoryIndex, NONE};
use crate::isolation::IsolationLevel;
use crate::types::{Key, TxnId};

/// A total commit order extracted from an acyclic commit graph, as
/// transaction ids in commit order.
pub fn commit_order_from_graph(index: &HistoryIndex, graph: &CommitGraph) -> Option<Vec<TxnId>> {
    graph
        .topological_order()
        .map(|topo| topo.into_iter().map(|d| index.txn_id(d)).collect())
}

/// Why a proposed commit order is not a valid witness.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CommitOrderError {
    /// The sequence is not a permutation of the committed transactions.
    NotAPermutation,
    /// Two transactions of one session appear out of session order.
    ViolatesSessionOrder {
        /// Earlier transaction in `so` placed later in the order.
        earlier: TxnId,
        /// Later transaction in `so` placed earlier in the order.
        later: TxnId,
    },
    /// A reader is ordered before its writer.
    ViolatesWriteRead {
        /// The writing transaction.
        writer: TxnId,
        /// The reading transaction placed before it.
        reader: TxnId,
    },
    /// The level's axiom fails for the triple `(t1, t2, t3)` on `key`:
    /// `t3` reads `key` from `t1` while `t2` writes `key`, is visible to
    /// `t3` per the level, and is ordered after `t1`.
    AxiomViolated {
        /// The isolation level checked.
        level: IsolationLevel,
        /// The transaction read from.
        t1: TxnId,
        /// The intervening writer.
        t2: TxnId,
        /// The reading transaction.
        t3: TxnId,
        /// The key involved.
        key: Key,
    },
}

impl fmt::Display for CommitOrderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitOrderError::NotAPermutation => {
                write!(
                    f,
                    "order is not a permutation of the committed transactions"
                )
            }
            CommitOrderError::ViolatesSessionOrder { earlier, later } => {
                write!(
                    f,
                    "order places {later} before its session predecessor {earlier}"
                )
            }
            CommitOrderError::ViolatesWriteRead { writer, reader } => {
                write!(f, "order places reader {reader} before its writer {writer}")
            }
            CommitOrderError::AxiomViolated {
                level,
                t1,
                t2,
                t3,
                key,
            } => write!(
                f,
                "{level} axiom fails: {t3} reads {key} from {t1}, but visible {t2} \
                 writes {key} and is ordered after {t1}"
            ),
        }
    }
}

impl std::error::Error for CommitOrderError {}

/// Validates that `order` is a commit order witnessing `history`'s
/// conformance to `level` (Read Consistency is *not* re-checked here).
///
/// # Errors
///
/// Returns the first discrepancy found; see [`CommitOrderError`].
pub fn validate_commit_order(
    history: &History,
    level: IsolationLevel,
    order: &[TxnId],
) -> Result<(), CommitOrderError> {
    let index = HistoryIndex::new(history);
    let m = index.num_committed();
    if order.len() != m {
        return Err(CommitOrderError::NotAPermutation);
    }
    let mut pos: Vec<u32> = vec![NONE; m];
    for (i, &tid) in order.iter().enumerate() {
        let d = index.dense_id(tid);
        if d == NONE || pos[d as usize] != NONE {
            return Err(CommitOrderError::NotAPermutation);
        }
        pos[d as usize] = i as u32;
    }

    // so ∪ wr ⊆ co.
    for s in 0..index.num_sessions() {
        let list = index.session_committed(crate::types::SessionId(s as u32));
        for w in list.windows(2) {
            if pos[w[0] as usize] > pos[w[1] as usize] {
                return Err(CommitOrderError::ViolatesSessionOrder {
                    earlier: index.txn_id(w[0]),
                    later: index.txn_id(w[1]),
                });
            }
        }
    }
    for t in 0..m as u32 {
        for r in index.ext_reads(t) {
            if pos[r.writer as usize] > pos[t as usize] {
                return Err(CommitOrderError::ViolatesWriteRead {
                    writer: index.txn_id(r.writer),
                    reader: index.txn_id(t),
                });
            }
        }
    }

    match level {
        IsolationLevel::ReadCommitted => validate_rc(&index, &pos),
        IsolationLevel::ReadAtomic => validate_visibility(&index, &pos, level, &ra_visible(&index)),
        IsolationLevel::Causal => validate_visibility(&index, &pos, level, &cc_visible(&index)),
    }
}

/// RC axiom, direct form: for reads `r` (from `t2`) po-before `r_x` (from
/// `t1`) in `t3`, with `t2 ≠ t1` writing `r_x`'s key, require
/// `pos(t2) < pos(t1)`.
fn validate_rc(index: &HistoryIndex, pos: &[u32]) -> Result<(), CommitOrderError> {
    for t3 in 0..index.num_committed() as u32 {
        let reads = index.ext_reads(t3);
        for (i, r) in reads.iter().enumerate() {
            let t2 = r.writer;
            for rx in &reads[i + 1..] {
                let t1 = rx.writer;
                if t1 != t2 && index.writes_key(t2, rx.key) && pos[t2 as usize] > pos[t1 as usize] {
                    return Err(CommitOrderError::AxiomViolated {
                        level: IsolationLevel::ReadCommitted,
                        t1: index.txn_id(t1),
                        t2: index.txn_id(t2),
                        t3: index.txn_id(t3),
                        key: rx.key,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Visibility sets for RA: one `so ∪ wr` step.
fn ra_visible(index: &HistoryIndex) -> Vec<Vec<DenseId>> {
    let m = index.num_committed();
    let mut vis = vec![Vec::new(); m];
    for s in 0..index.num_sessions() {
        let list = index.session_committed(crate::types::SessionId(s as u32));
        for (i, &t) in list.iter().enumerate() {
            // All session predecessors (so is transitive).
            vis[t as usize].extend_from_slice(&list[..i]);
        }
    }
    for t in 0..m as u32 {
        for r in index.ext_reads(t) {
            vis[t as usize].push(r.writer);
        }
        vis[t as usize].sort_unstable();
        vis[t as usize].dedup();
    }
    vis
}

/// Visibility sets for CC: full happens-before `(so ∪ wr)+`, by reverse BFS
/// over predecessors. Quadratic; test oracle only.
fn cc_visible(index: &HistoryIndex) -> Vec<Vec<DenseId>> {
    let m = index.num_committed();
    // Predecessor lists: session predecessor + distinct writers.
    let mut preds: Vec<Vec<DenseId>> = vec![Vec::new(); m];
    for s in 0..index.num_sessions() {
        let list = index.session_committed(crate::types::SessionId(s as u32));
        for w in list.windows(2) {
            preds[w[1] as usize].push(w[0]);
        }
    }
    for t in 0..m as u32 {
        for r in index.ext_reads(t) {
            preds[t as usize].push(r.writer);
        }
    }
    let mut vis = vec![Vec::new(); m];
    let mut seen = vec![false; m];
    for t in 0..m {
        let mut stack: Vec<DenseId> = preds[t].clone();
        let mut reach = Vec::new();
        for x in seen.iter_mut() {
            *x = false;
        }
        while let Some(v) = stack.pop() {
            if seen[v as usize] || v as usize == t {
                continue;
            }
            seen[v as usize] = true;
            reach.push(v);
            stack.extend_from_slice(&preds[v as usize]);
        }
        vis[t] = reach;
    }
    vis
}

/// Shared RA/CC axiom check over precomputed visibility sets: for each read
/// `(x, t1)` of `t3` and each visible `t2 ≠ t1` writing `x`, require
/// `pos(t2) < pos(t1)`.
fn validate_visibility(
    index: &HistoryIndex,
    pos: &[u32],
    level: IsolationLevel,
    vis: &[Vec<DenseId>],
) -> Result<(), CommitOrderError> {
    for t3 in 0..index.num_committed() as u32 {
        for &(x, t1) in index.read_pairs(t3) {
            for &t2 in &vis[t3 as usize] {
                if t2 != t1 && index.writes_key(t2, x) && pos[t2 as usize] > pos[t1 as usize] {
                    return Err(CommitOrderError::AxiomViolated {
                        level,
                        t1: index.txn_id(t1),
                        t2: index.txn_id(t2),
                        t3: index.txn_id(t3),
                        key: x,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{saturate_cc, CcStrategy};
    use crate::history::HistoryBuilder;
    use crate::rc::saturate_rc;

    fn fig4b() -> History {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let (x, y) = (0, 1);
        b.begin(s1);
        b.write(s1, x, 1); // t1
        b.commit(s1);
        b.begin(s1);
        b.write(s1, x, 2);
        b.write(s1, y, 2); // t2
        b.commit(s1);
        b.begin(s2);
        b.read(s2, x, 1);
        b.read(s2, y, 2); // t3
        b.commit(s2);
        b.finish().unwrap()
    }

    #[test]
    fn linearization_of_rc_saturation_validates() {
        let h = fig4b();
        let index = HistoryIndex::new(&h);
        let g = saturate_rc(&index);
        let order = commit_order_from_graph(&index, &g).expect("consistent");
        validate_commit_order(&h, IsolationLevel::ReadCommitted, &order)
            .expect("linearization must witness RC");
    }

    #[test]
    fn no_order_witnesses_ra_for_fig4b() {
        // Fig. 4b is RA-inconsistent; every permutation must fail.
        let h = fig4b();
        let ids: Vec<TxnId> = h.committed_txns().map(|(t, _)| t).collect();
        let mut perms = Vec::new();
        permute(
            &ids,
            &mut Vec::new(),
            &mut vec![false; ids.len()],
            &mut perms,
        );
        for p in perms {
            assert!(
                validate_commit_order(&h, IsolationLevel::ReadAtomic, &p).is_err(),
                "order {p:?} unexpectedly witnesses RA"
            );
        }
    }

    fn permute(
        ids: &[TxnId],
        cur: &mut Vec<TxnId>,
        used: &mut Vec<bool>,
        out: &mut Vec<Vec<TxnId>>,
    ) {
        if cur.len() == ids.len() {
            out.push(cur.clone());
            return;
        }
        for i in 0..ids.len() {
            if !used[i] {
                used[i] = true;
                cur.push(ids[i]);
                permute(ids, cur, used, out);
                cur.pop();
                used[i] = false;
            }
        }
    }

    #[test]
    fn permutation_check_catches_bad_orders() {
        let h = fig4b();
        let err = validate_commit_order(&h, IsolationLevel::ReadCommitted, &[]);
        assert_eq!(err, Err(CommitOrderError::NotAPermutation));

        let t0 = TxnId::new(0, 0);
        let err = validate_commit_order(&h, IsolationLevel::ReadCommitted, &[t0, t0, t0]);
        assert_eq!(err, Err(CommitOrderError::NotAPermutation));
    }

    #[test]
    fn session_order_violations_detected() {
        let h = fig4b();
        // Swap the two session-1 transactions.
        let order = vec![TxnId::new(0, 1), TxnId::new(0, 0), TxnId::new(1, 0)];
        assert!(matches!(
            validate_commit_order(&h, IsolationLevel::ReadCommitted, &order),
            Err(CommitOrderError::ViolatesSessionOrder { .. })
        ));
    }

    #[test]
    fn write_read_violations_detected() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        b.begin(s1);
        b.write(s1, 0, 1);
        b.commit(s1);
        b.begin(s2);
        b.read(s2, 0, 1);
        b.commit(s2);
        let h = b.finish().unwrap();
        let order = vec![TxnId::new(1, 0), TxnId::new(0, 0)];
        assert!(matches!(
            validate_commit_order(&h, IsolationLevel::ReadCommitted, &order),
            Err(CommitOrderError::ViolatesWriteRead { .. })
        ));
    }

    #[test]
    fn cc_linearization_validates_on_fig4d() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let s3 = b.session();
        let x = 0;
        b.begin(s1);
        b.write(s1, x, 1);
        b.commit(s1);
        b.begin(s2);
        b.read(s2, x, 1);
        b.write(s2, x, 2);
        b.commit(s2);
        b.begin(s1);
        b.read(s1, x, 2);
        b.commit(s1);
        b.begin(s3);
        b.read(s3, x, 1);
        b.write(s3, x, 3);
        b.commit(s3);
        b.begin(s3);
        b.read(s3, x, 3);
        b.commit(s3);
        let h = b.finish().unwrap();
        let index = HistoryIndex::new(&h);
        let g = saturate_cc(&index, CcStrategy::BinarySearch).expect("no causality cycle");
        let order = commit_order_from_graph(&index, &g).expect("consistent");
        validate_commit_order(&h, IsolationLevel::Causal, &order)
            .expect("linearization must witness CC");
    }
}
