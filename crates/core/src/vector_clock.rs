//! Vector clocks over sessions, used to represent the happens-before
//! relation `(so ∪ wr)+` in Algorithm 3 (`ComputeHB`).
//!
//! A clock holds one entry per session: entry `s` is the number of committed
//! transactions of session `s` known to happen before (or be) the clock's
//! owner. Because happens-before restricted to a session is prefix-closed,
//! this prefix-count representation is exact: transaction `t` of session `s`
//! at committed position `p` happens before the owner iff `p < clock[s]`.

use std::cmp::Ordering;
use std::fmt;

/// A vector clock: per-session counts of happens-before predecessors.
///
/// # Examples
///
/// ```
/// use awdit_core::VectorClock;
/// let mut a = VectorClock::new(3);
/// a.advance(0, 2);
/// let mut b = VectorClock::new(3);
/// b.advance(1, 1);
/// a.join(&b);
/// assert_eq!(a.get(0), 2);
/// assert_eq!(a.get(1), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct VectorClock {
    entries: Vec<u32>,
}

impl VectorClock {
    /// The zero clock over `k` sessions.
    pub fn new(k: usize) -> Self {
        VectorClock {
            entries: vec![0; k],
        }
    }

    /// Number of sessions tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the clock tracks no sessions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for session `s`.
    #[inline]
    pub fn get(&self, s: usize) -> u32 {
        self.entries[s]
    }

    /// Raises the entry for session `s` to at least `count`.
    #[inline]
    pub fn advance(&mut self, s: usize, count: u32) {
        if self.entries[s] < count {
            self.entries[s] = count;
        }
    }

    /// Widens the clock to `k` sessions (new entries start at zero).
    /// Shrinking is not supported; a larger existing clock is unchanged.
    #[inline]
    pub fn resize(&mut self, k: usize) {
        if self.entries.len() < k {
            self.entries.resize(k, 0);
        }
    }

    /// Point-wise maximum with `other` (the lattice join `⊔`).
    #[inline]
    pub fn join(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.entries.len(), other.entries.len());
        for (a, &b) in self.entries.iter_mut().zip(&other.entries) {
            if *a < b {
                *a = b;
            }
        }
    }

    /// Whether every entry of `self` is `≤` the corresponding entry of
    /// `other`.
    pub fn le(&self, other: &VectorClock) -> bool {
        self.entries
            .iter()
            .zip(&other.entries)
            .all(|(&a, &b)| a <= b)
    }

    /// Whether the transaction at committed position `pos` of session `s`
    /// happens before this clock's owner.
    #[inline]
    pub fn sees(&self, s: usize, pos: u32) -> bool {
        pos < self.entries[s]
    }

    /// Raw entries, one per session.
    #[inline]
    pub fn entries(&self) -> &[u32] {
        &self.entries
    }
}

impl PartialOrd for VectorClock {
    /// The lattice partial order: defined only when one clock dominates the
    /// other point-wise.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        let le = self.le(other);
        let ge = other.le(self);
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new(3);
        a.advance(0, 5);
        a.advance(2, 1);
        let mut b = VectorClock::new(3);
        b.advance(0, 3);
        b.advance(1, 7);
        a.join(&b);
        assert_eq!(a.entries(), &[5, 7, 1]);
    }

    #[test]
    fn advance_never_decreases() {
        let mut a = VectorClock::new(1);
        a.advance(0, 5);
        a.advance(0, 3);
        assert_eq!(a.get(0), 5);
    }

    #[test]
    fn partial_order() {
        let mut a = VectorClock::new(2);
        a.advance(0, 1);
        let mut b = VectorClock::new(2);
        b.advance(0, 2);
        b.advance(1, 1);
        assert_eq!(a.partial_cmp(&b), Some(Ordering::Less));
        assert_eq!(b.partial_cmp(&a), Some(Ordering::Greater));
        let mut c = VectorClock::new(2);
        c.advance(1, 9);
        assert_eq!(b.partial_cmp(&c), None);
        assert_eq!(a.partial_cmp(&a.clone()), Some(Ordering::Equal));
    }

    #[test]
    fn sees_is_strict_prefix_membership() {
        let mut a = VectorClock::new(2);
        a.advance(1, 3);
        assert!(a.sees(1, 0));
        assert!(a.sees(1, 2));
        assert!(!a.sees(1, 3));
        assert!(!a.sees(0, 0));
    }

    #[test]
    fn display() {
        let mut a = VectorClock::new(2);
        a.advance(0, 4);
        assert_eq!(a.to_string(), "⟨4, 0⟩");
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        fn clock(k: usize) -> impl Strategy<Value = VectorClock> {
            proptest::collection::vec(0u32..100, k).prop_map(|v| {
                let mut c = VectorClock::new(v.len());
                for (i, x) in v.into_iter().enumerate() {
                    c.advance(i, x);
                }
                c
            })
        }

        proptest! {
            #[test]
            fn join_commutes(a in clock(4), b in clock(4)) {
                let mut ab = a.clone();
                ab.join(&b);
                let mut ba = b.clone();
                ba.join(&a);
                prop_assert_eq!(ab, ba);
            }

            #[test]
            fn join_is_idempotent_and_upper_bound(a in clock(4), b in clock(4)) {
                let mut j = a.clone();
                j.join(&b);
                prop_assert!(a.le(&j));
                prop_assert!(b.le(&j));
                let mut jj = j.clone();
                jj.join(&j.clone());
                prop_assert_eq!(jj, j);
            }

            #[test]
            fn join_associates(a in clock(3), b in clock(3), c in clock(3)) {
                let mut l = a.clone();
                l.join(&b);
                l.join(&c);
                let mut bc = b.clone();
                bc.join(&c);
                let mut r = a.clone();
                r.join(&bc);
                prop_assert_eq!(l, r);
            }
        }
    }
}
