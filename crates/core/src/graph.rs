//! The partial commit relation `co′` as a graph, plus cycle machinery.
//!
//! Each checker initializes `co′ = so ∪ wr` and saturates it with
//! level-specific inferred edges (Definition 3.1). Consistency then reduces
//! to acyclicity (Lemma 3.2):
//!
//! * if `co′` is acyclic, any topological order is a witnessing commit
//!   order;
//! * otherwise, every non-trivial strongly connected component yields a
//!   cycle witnessing the violation (Section 3.4). Cycle extraction prefers
//!   cycles with as few inferred (non-`so ∪ wr`) edges as possible, which
//!   tends to surface the weakest — and therefore most serious — anomalies.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU32, Ordering};

use crate::index::HistoryIndex;
use crate::parallel;
use crate::types::{Key, SessionId};

/// Frontier size below which a forward–backward reachability sweep stays
/// on the calling thread (a fork–join over a tiny frontier costs more
/// than expanding it).
const FWBW_BFS_CUTOFF: usize = 1024;

/// Bound on forward–backward split rounds: adversarial graphs (a long
/// chain of 2-cycles) would otherwise degrade the decomposition to one
/// BFS pair per component. Past the budget the remaining regions fall
/// back to one masked Tarjan pass.
const MAX_FWBW_ROUNDS: usize = 128;

/// Label of a `co′` edge: how the ordering was established.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum EdgeKind {
    /// Session order: consecutive committed transactions of one session.
    SessionOrder,
    /// Write–read order on `key`: the target reads the source's write.
    WriteRead(Key),
    /// An ordering inferred by the isolation level's axiom, on `key`.
    Inferred(Key),
    /// A transitive ordering preserved through transactions retired by
    /// streaming watermark pruning (`awdit-stream`): the source was ordered
    /// before the target via one or more now-pruned transactions.
    Condensed,
}

impl EdgeKind {
    /// Whether the edge is part of `so ∪ wr` (as opposed to inferred or
    /// condensed).
    #[inline]
    pub fn is_base(self) -> bool {
        matches!(self, EdgeKind::SessionOrder | EdgeKind::WriteRead(_))
    }
}

/// A directed edge of the commit graph, in dense-transaction-id space.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Edge {
    /// Source transaction (dense id).
    pub from: u32,
    /// Target transaction (dense id).
    pub to: u32,
    /// Provenance of the ordering.
    pub kind: EdgeKind,
}

/// A cycle in the commit graph: a closed walk of edges
/// (`edges[i].to == edges[i + 1].from`, wrapping around).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cycle {
    /// The edges of the cycle, in order.
    pub edges: Vec<Edge>,
}

impl Cycle {
    /// Number of inferred (non-`so ∪ wr`) edges in the cycle.
    pub fn inferred_count(&self) -> usize {
        self.edges.iter().filter(|e| !e.kind.is_base()).count()
    }

    /// Transactions on the cycle, in order.
    pub fn nodes(&self) -> Vec<u32> {
        self.edges.iter().map(|e| e.from).collect()
    }

    /// Checks the closed-walk invariant (used by tests and witnesses).
    pub fn is_closed(&self) -> bool {
        !self.edges.is_empty()
            && self
                .edges
                .iter()
                .zip(self.edges.iter().cycle().skip(1))
                .all(|(a, b)| a.to == b.from)
    }
}

/// The partial commit relation `co′` over the committed transactions, in
/// dense-id space.
///
/// The graph has two representations. While **building** (saturation),
/// edges go into a per-node adjacency list. Once saturation is done, the
/// analysis phases ([`sccs`](Self::sccs), [`find_cycles`](Self::find_cycles),
/// [`topological_order`](Self::topological_order)) traverse edges many
/// times, so [`freeze`](Self::freeze) repacks them into CSR form — one
/// flat edge buffer plus an offsets table — turning every traversal into
/// linear scans over two arrays. All read accessors work on either
/// representation; `add_edge` panics after `freeze`.
#[derive(Clone, Debug)]
pub struct CommitGraph {
    n: usize,
    /// Building representation (cleared by `freeze`).
    adj: Vec<Vec<(u32, EdgeKind)>>,
    /// Frozen CSR representation (empty until `freeze`):
    /// `csr_edges[csr_offsets[v]..csr_offsets[v + 1]]` are `v`'s out-edges.
    csr_offsets: Vec<u32>,
    csr_edges: Vec<(u32, EdgeKind)>,
    frozen: bool,
    num_edges: usize,
    inferred_edges: usize,
}

impl CommitGraph {
    /// Creates a graph over `n` transactions with no edges.
    pub fn new(n: usize) -> Self {
        CommitGraph {
            n,
            adj: vec![Vec::new(); n],
            csr_offsets: Vec::new(),
            csr_edges: Vec::new(),
            frozen: false,
            num_edges: 0,
            inferred_edges: 0,
        }
    }

    /// Number of nodes (committed transactions).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges added so far (duplicates counted).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of inferred (non-`so ∪ wr`) edges added so far, tallied as
    /// saturation emits them (no post-hoc scan).
    #[inline]
    pub fn num_inferred_edges(&self) -> usize {
        self.inferred_edges
    }

    /// Adds the edge `from → to` with the given label.
    ///
    /// # Panics
    ///
    /// Panics if the graph has been [frozen](Self::freeze).
    #[inline]
    pub fn add_edge(&mut self, from: u32, to: u32, kind: EdgeKind) {
        assert!(!self.frozen, "cannot add edges to a frozen CommitGraph");
        self.adj[from as usize].push((to, kind));
        self.num_edges += 1;
        if !kind.is_base() {
            self.inferred_edges += 1;
        }
    }

    /// Repacks the adjacency lists into the flat CSR representation and
    /// clears the per-node vectors in place (keeping their capacity, so a
    /// later [`reset`](Self::reset) reuses the allocations). Idempotent;
    /// the graph becomes append-immutable until reset.
    pub fn freeze(&mut self) {
        if self.frozen {
            return;
        }
        self.csr_offsets.clear();
        self.csr_offsets.reserve(self.n + 1);
        self.csr_edges.clear();
        self.csr_edges.reserve(self.num_edges);
        self.csr_offsets.push(0u32);
        // `adj` may be longer than `n` after a shrinking reset; only the
        // first `n` rows are live.
        for succs in self.adj.iter_mut().take(self.n) {
            self.csr_edges.extend_from_slice(succs);
            self.csr_offsets.push(self.csr_edges.len() as u32);
            succs.clear();
        }
        self.frozen = true;
    }

    /// Clears the graph back to `n` nodes and no edges, keeping every
    /// buffer's capacity — the arena-reuse path of the
    /// [`Engine`](crate::Engine), where repeated checks of same-shape
    /// histories must not reallocate. Un-freezes the graph.
    ///
    /// When `n` shrinks, the tail nodes' adjacency vectors are kept (just
    /// cleared), so a mixed-size fleet alternating small and large
    /// histories still recycles the large history's allocations.
    pub fn reset(&mut self, n: usize) {
        for succs in &mut self.adj {
            succs.clear();
        }
        if self.adj.len() < n {
            self.adj.resize_with(n, Vec::new);
        }
        self.csr_offsets.clear();
        self.csr_edges.clear();
        self.frozen = false;
        self.num_edges = 0;
        self.inferred_edges = 0;
        self.n = n;
    }

    /// Heap footprint in bytes (capacities, not lengths), including the
    /// per-node adjacency vectors and the frozen CSR buffers — the
    /// quantity tracked by the engine's arena-growth accounting.
    pub fn heap_bytes(&self) -> usize {
        let edge = std::mem::size_of::<(u32, EdgeKind)>();
        let mut bytes = self.adj.capacity() * std::mem::size_of::<Vec<(u32, EdgeKind)>>();
        for succs in &self.adj {
            bytes += succs.capacity() * edge;
        }
        bytes
            + self.csr_offsets.capacity() * std::mem::size_of::<u32>()
            + self.csr_edges.capacity() * edge
    }

    /// Whether [`freeze`](Self::freeze) has run.
    #[inline]
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Successors of a node.
    #[inline]
    pub fn successors(&self, node: u32) -> &[(u32, EdgeKind)] {
        if self.frozen {
            let v = node as usize;
            &self.csr_edges[self.csr_offsets[v] as usize..self.csr_offsets[v + 1] as usize]
        } else {
            &self.adj[node as usize]
        }
    }

    /// Computes strongly connected components. Returns one `Vec` of nodes
    /// per component, in reverse topological order of the condensation, in
    /// the canonical form of [`sccs_with`](Self::sccs_with).
    pub fn sccs(&self) -> Vec<Vec<u32>> {
        self.sccs_with(1)
    }

    /// [`sccs`](Self::sccs) on up to `threads` worker threads (`0` = all
    /// cores): a forward–backward reachability decomposition
    /// (Fleischer–Hendrickson–Pilkington style) whose breadth-first sweeps
    /// fan out over the pool — the dominant case of one huge SCC in a
    /// violating history parallelizes where a depth-first Tarjan cannot.
    ///
    /// The SCC *partition* of a graph is unique, so determinism only needs
    /// a canonical presentation: nodes ascend within each component, and
    /// components come in the reverse topological order of the
    /// condensation that repeatedly emits the ready component with the
    /// smallest minimum node. The result is therefore bit-identical for
    /// every thread count — the sequential path (`threads <= 1` or a small
    /// graph) runs iterative Tarjan and canonicalizes the same way.
    pub fn sccs_with(&self, threads: usize) -> Vec<Vec<u32>> {
        self.sccs_pool(&parallel::Pool::new(threads), threads)
    }

    /// [`sccs_with`](Self::sccs_with) dispatching on a caller-owned
    /// [`Pool`](parallel::Pool) — the [`Engine`](crate::Engine)'s shared
    /// one — instead of an ephemeral pool.
    pub fn sccs_pool(&self, pool: &parallel::Pool, threads: usize) -> Vec<Vec<u32>> {
        let threads = parallel::effective_threads(threads);
        let comp_of = if threads <= 1 || self.n < parallel::SEQUENTIAL_CUTOFF {
            let mut comp_of = vec![u32::MAX; self.n];
            let mut next_comp = 0u32;
            self.tarjan_assign(&mut comp_of, &mut next_comp);
            comp_of
        } else {
            self.fwbw_comp_of(pool, threads)
        };
        self.canonical_sccs(&comp_of)
    }

    /// Iterative Tarjan restricted to the nodes still labeled `u32::MAX`
    /// in `comp_of`, assigning fresh labels from `next_comp`. Edges to
    /// already-labeled nodes are skipped — for nodes labeled before the
    /// call that is the sub-graph restriction, and for nodes the run
    /// itself finishes it coincides with Tarjan's visited-and-off-stack
    /// no-op (labels are only assigned at pop time, so on-stack nodes
    /// always pass the filter).
    fn tarjan_assign(&self, comp_of: &mut [u32], next_comp: &mut u32) {
        let n = self.n;
        let mut index = vec![u32::MAX; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;

        // Explicit DFS stack: (node, next-successor-position).
        let mut call_stack: Vec<(u32, usize)> = Vec::new();
        for start in 0..n as u32 {
            if index[start as usize] != u32::MAX || comp_of[start as usize] != u32::MAX {
                continue;
            }
            call_stack.push((start, 0));
            while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
                let vu = v as usize;
                if *pos == 0 {
                    index[vu] = next_index;
                    lowlink[vu] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[vu] = true;
                }
                let mut recursed = false;
                while *pos < self.successors(v).len() {
                    let (w, _) = self.successors(v)[*pos];
                    *pos += 1;
                    let wu = w as usize;
                    if comp_of[wu] != u32::MAX {
                        continue;
                    }
                    if index[wu] == u32::MAX {
                        call_stack.push((w, 0));
                        recursed = true;
                        break;
                    } else if on_stack[wu] {
                        lowlink[vu] = lowlink[vu].min(index[wu]);
                    }
                }
                if recursed {
                    continue;
                }
                // v is finished.
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    let pu = parent as usize;
                    lowlink[pu] = lowlink[pu].min(lowlink[vu]);
                }
                if lowlink[vu] == index[vu] {
                    let label = *next_comp;
                    *next_comp += 1;
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp_of[w as usize] = label;
                        if w == v {
                            break;
                        }
                    }
                }
            }
        }
    }

    /// The forward–backward decomposition: pick the region's minimum node
    /// as pivot, mark everything it reaches (forward BFS) and everything
    /// that reaches it (backward BFS over a one-off reverse CSR), emit the
    /// intersection as one SCC, and recurse on the three leftover parts —
    /// no SCC ever spans a part. Regions first shed their in/out-degree-0
    /// nodes (iterated queue peeling, each a singleton SCC), which
    /// dissolves acyclic regions without any reachability sweep. Only the
    /// partition matters (labels are canonicalized afterwards), so claim
    /// races inside the parallel BFS are harmless.
    fn fwbw_comp_of(&self, pool: &parallel::Pool, threads: usize) -> Vec<u32> {
        const RETIRED: u32 = u32::MAX;
        let n = self.n;
        let mut comp_of = vec![u32::MAX; n];
        if n == 0 {
            return comp_of;
        }
        // Reverse CSR (targets only) for the backward sweeps.
        let mut rev_offsets = vec![0u32; n + 1];
        for v in 0..n as u32 {
            for &(w, _) in self.successors(v) {
                rev_offsets[w as usize + 1] += 1;
            }
        }
        for i in 1..=n {
            rev_offsets[i] += rev_offsets[i - 1];
        }
        let mut rev_edges = vec![0u32; rev_offsets[n] as usize];
        let mut fill: Vec<u32> = rev_offsets[..n].to_vec();
        for v in 0..n as u32 {
            for &(w, _) in self.successors(v) {
                rev_edges[fill[w as usize] as usize] = v;
                fill[w as usize] += 1;
            }
        }

        let fwd_mark: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let bwd_mark: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let mut region_of = vec![0u32; n];
        let mut deg_in = vec![0u32; n];
        let mut deg_out = vec![0u32; n];
        let mut next_comp = 0u32;
        let mut next_rid = 1u32;
        let mut epoch = 0u32;
        let mut rounds = 0usize;
        let mut regions: Vec<(u32, Vec<u32>)> = vec![(0, (0..n as u32).collect())];

        while let Some((rid, mut nodes)) = regions.pop() {
            if rounds >= MAX_FWBW_ROUNDS {
                continue; // left unassigned for the masked-Tarjan fallback
            }
            // Trim: queue-peel nodes with no in- or out-edge inside the
            // region; cycle members never peel, so SCCs survive intact.
            let preds = |v: u32| {
                &rev_edges[rev_offsets[v as usize] as usize..rev_offsets[v as usize + 1] as usize]
            };
            for &v in &nodes {
                let vu = v as usize;
                deg_in[vu] = preds(v)
                    .iter()
                    .filter(|&&p| region_of[p as usize] == rid)
                    .count() as u32;
                deg_out[vu] = self
                    .successors(v)
                    .iter()
                    .filter(|&&(w, _)| region_of[w as usize] == rid)
                    .count() as u32;
            }
            let mut peel: Vec<u32> = nodes
                .iter()
                .copied()
                .filter(|&v| deg_in[v as usize] == 0 || deg_out[v as usize] == 0)
                .collect();
            while let Some(v) = peel.pop() {
                let vu = v as usize;
                if region_of[vu] != rid {
                    continue;
                }
                region_of[vu] = RETIRED;
                comp_of[vu] = next_comp;
                next_comp += 1;
                for &p in preds(v) {
                    let pu = p as usize;
                    if region_of[pu] == rid {
                        deg_out[pu] -= 1;
                        if deg_out[pu] == 0 {
                            peel.push(p);
                        }
                    }
                }
                for &(w, _) in self.successors(v) {
                    let wu = w as usize;
                    if region_of[wu] == rid {
                        deg_in[wu] -= 1;
                        if deg_in[wu] == 0 {
                            peel.push(w);
                        }
                    }
                }
            }
            nodes.retain(|&v| region_of[v as usize] == rid);
            if nodes.is_empty() {
                continue;
            }
            if nodes.len() < parallel::SEQUENTIAL_CUTOFF {
                continue; // small region: cheaper under the fallback Tarjan
            }

            // Forward/backward reachability from the region's minimum node.
            epoch += 1;
            let pivot = nodes[0];
            self.fwbw_bfs(
                pool,
                &rev_offsets,
                &rev_edges,
                false,
                &fwd_mark,
                epoch,
                pivot,
                rid,
                &region_of,
                threads,
            );
            self.fwbw_bfs(
                pool,
                &rev_offsets,
                &rev_edges,
                true,
                &bwd_mark,
                epoch,
                pivot,
                rid,
                &region_of,
                threads,
            );

            // Split: SCC = fwd ∩ bwd; the three leftovers recurse.
            let mut scc = Vec::new();
            let mut f_only = Vec::new();
            let mut b_only = Vec::new();
            let mut rest = Vec::new();
            for &v in &nodes {
                let vu = v as usize;
                let f = fwd_mark[vu].load(Ordering::Relaxed) == epoch;
                let b = bwd_mark[vu].load(Ordering::Relaxed) == epoch;
                match (f, b) {
                    (true, true) => scc.push(v),
                    (true, false) => f_only.push(v),
                    (false, true) => b_only.push(v),
                    (false, false) => rest.push(v),
                }
            }
            let label = next_comp;
            next_comp += 1;
            for &v in &scc {
                comp_of[v as usize] = label;
                region_of[v as usize] = RETIRED;
            }
            for part in [f_only, b_only, rest] {
                if part.is_empty() {
                    continue;
                }
                let part_rid = next_rid;
                next_rid += 1;
                for &v in &part {
                    region_of[v as usize] = part_rid;
                }
                regions.push((part_rid, part));
            }
            rounds += 1;
        }

        // Whatever the round budget or the size cutoff left behind: SCCs
        // never span regions, so one Tarjan over all unassigned nodes
        // produces exactly the per-region partitions.
        if comp_of.contains(&u32::MAX) {
            self.tarjan_assign(&mut comp_of, &mut next_comp);
        }
        comp_of
    }

    /// One frontier-parallel BFS of the forward–backward decomposition:
    /// stamps `mark` with `epoch` for every node of region `rid` reachable
    /// from `pivot` along forward edges (`backward == false`) or reverse
    /// edges. Nodes are claimed by compare-and-swap, so each joins exactly
    /// one frontier; which worker wins a race only reorders the frontier,
    /// never the final mark set.
    #[allow(clippy::too_many_arguments)] // one-caller helper of fwbw_comp_of
    fn fwbw_bfs(
        &self,
        pool: &parallel::Pool,
        rev_offsets: &[u32],
        rev_edges: &[u32],
        backward: bool,
        mark: &[AtomicU32],
        epoch: u32,
        pivot: u32,
        rid: u32,
        region_of: &[u32],
        threads: usize,
    ) {
        let claim = |w: u32, out: &mut Vec<u32>| {
            if region_of[w as usize] != rid {
                return;
            }
            let m = &mark[w as usize];
            let mut cur = m.load(Ordering::Relaxed);
            while cur != epoch {
                match m.compare_exchange_weak(cur, epoch, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => {
                        out.push(w);
                        return;
                    }
                    Err(now) => cur = now,
                }
            }
        };
        let expand = |v: u32, out: &mut Vec<u32>| {
            if backward {
                let vu = v as usize;
                for &w in &rev_edges[rev_offsets[vu] as usize..rev_offsets[vu + 1] as usize] {
                    claim(w, out);
                }
            } else {
                for &(w, _) in self.successors(v) {
                    claim(w, out);
                }
            }
        };
        mark[pivot as usize].store(epoch, Ordering::Relaxed);
        let mut frontier = vec![pivot];
        while !frontier.is_empty() {
            if threads <= 1 || frontier.len() < FWBW_BFS_CUTOFF {
                let mut next = Vec::new();
                for &v in &frontier {
                    expand(v, &mut next);
                }
                frontier = next;
            } else {
                let chunks = parallel::split_even(frontier.len(), threads * 4);
                let parts = parallel::map_shards(pool, threads, "cycle_sccs", &chunks, |_, r| {
                    let mut next = Vec::new();
                    for &v in &frontier[r.start as usize..r.end as usize] {
                        expand(v, &mut next);
                    }
                    next
                });
                frontier = parts.concat();
            }
        }
    }

    /// The canonical presentation of an SCC partition: nodes ascend within
    /// each component (the grouping scan visits nodes in order), and
    /// components come in the reverse of a deterministic topological order
    /// of the condensation (Kahn's algorithm emitting the ready component
    /// with the smallest minimum node first). Depends only on the
    /// partition, never on how it was computed.
    fn canonical_sccs(&self, comp_of: &[u32]) -> Vec<Vec<u32>> {
        let n = self.n;
        let num_comps = comp_of.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
        let mut nodes_of: Vec<Vec<u32>> = vec![Vec::new(); num_comps];
        for v in 0..n as u32 {
            nodes_of[comp_of[v as usize] as usize].push(v);
        }
        let mut indeg = vec![0u32; num_comps];
        for v in 0..n as u32 {
            let cv = comp_of[v as usize];
            for &(w, _) in self.successors(v) {
                let cw = comp_of[w as usize];
                if cw != cv {
                    indeg[cw as usize] += 1;
                }
            }
        }
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = (0..num_comps)
            .filter(|&c| indeg[c] == 0)
            .map(|c| Reverse((nodes_of[c][0], c as u32)))
            .collect();
        let mut order: Vec<u32> = Vec::with_capacity(num_comps);
        while let Some(Reverse((_, c))) = heap.pop() {
            order.push(c);
            for &v in &nodes_of[c as usize] {
                for &(w, _) in self.successors(v) {
                    let cw = comp_of[w as usize];
                    if cw != c {
                        indeg[cw as usize] -= 1;
                        if indeg[cw as usize] == 0 {
                            heap.push(Reverse((nodes_of[cw as usize][0], cw)));
                        }
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), num_comps, "condensation must be acyclic");
        let mut out: Vec<Vec<u32>> = Vec::with_capacity(num_comps);
        for &c in order.iter().rev() {
            out.push(std::mem::take(&mut nodes_of[c as usize]));
        }
        out
    }

    /// Returns `true` if the graph has no cycle (self-loops included).
    pub fn is_acyclic(&self) -> bool {
        self.find_cycles(1).is_empty()
    }

    /// A topological order of the nodes, or `None` if the graph is cyclic.
    pub fn topological_order(&self) -> Option<Vec<u32>> {
        let n = self.n;
        let mut indeg = vec![0u32; n];
        for v in 0..n as u32 {
            for &(w, _) in self.successors(v) {
                indeg[w as usize] += 1;
            }
        }
        let mut queue: VecDeque<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &(w, _) in self.successors(v) {
                indeg[w as usize] -= 1;
                if indeg[w as usize] == 0 {
                    queue.push_back(w);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Extracts up to `max` witness cycles, one per non-trivial SCC
    /// (Section 3.4). Within each SCC the cycle is chosen to pass through an
    /// inferred edge if one exists, closing it with a path that minimizes
    /// the number of further inferred edges (0–1 BFS with `so ∪ wr` edges at
    /// weight 0).
    pub fn find_cycles(&self, max: usize) -> Vec<Cycle> {
        self.find_cycles_with(max, 1)
    }

    /// [`find_cycles`](Self::find_cycles) on up to `threads` worker
    /// threads (`0` = all cores): the SCC decomposition runs through
    /// [`sccs_with`](Self::sccs_with), whose canonical output makes the
    /// extracted cycles identical for every thread count. An acyclic graph
    /// — the common consistent-history case — is dismissed by one linear
    /// Kahn pass before any SCC work.
    pub fn find_cycles_with(&self, max: usize, threads: usize) -> Vec<Cycle> {
        self.find_cycles_pool(&parallel::Pool::new(threads), max, threads)
    }

    /// [`find_cycles_with`](Self::find_cycles_with) dispatching on a
    /// caller-owned [`Pool`](parallel::Pool) — the
    /// [`Engine`](crate::Engine)'s shared one — instead of an ephemeral
    /// pool.
    pub fn find_cycles_pool(
        &self,
        pool: &parallel::Pool,
        max: usize,
        threads: usize,
    ) -> Vec<Cycle> {
        if max == 0 {
            return Vec::new();
        }
        if self.topological_order().is_some() {
            return Vec::new();
        }
        let n = self.n;
        let mut comp_of = vec![u32::MAX; n];
        let sccs = self.sccs_pool(pool, threads);
        let mut cycles = Vec::new();
        for (ci, comp) in sccs.iter().enumerate() {
            for &v in comp {
                comp_of[v as usize] = ci as u32;
            }
        }
        for (ci, comp) in sccs.iter().enumerate() {
            if cycles.len() >= max {
                break;
            }
            let trivial = comp.len() == 1 && {
                let v = comp[0];
                !self.successors(v).iter().any(|&(w, _)| w == v)
            };
            if trivial {
                continue;
            }
            // Collect candidate seed edges inside the component, preferring
            // inferred edges (cycles must normally contain one, and seeding
            // there lets the closing path minimize further inferred edges).
            const MAX_SEEDS: usize = 16;
            let mut seeds: Vec<Edge> = Vec::new();
            let mut fallback: Option<Edge> = None;
            'outer: for &v in comp {
                for &(w, kind) in self.successors(v) {
                    if comp_of[w as usize] == ci as u32 {
                        if !kind.is_base() {
                            seeds.push(Edge {
                                from: v,
                                to: w,
                                kind,
                            });
                            if seeds.len() >= MAX_SEEDS {
                                break 'outer;
                            }
                        } else if fallback.is_none() {
                            fallback = Some(Edge {
                                from: v,
                                to: w,
                                kind,
                            });
                        }
                    }
                }
            }
            if seeds.is_empty() {
                seeds.push(fallback.expect("non-trivial SCC must contain an edge"));
            }
            // Evaluate each seed; keep the cycle with the fewest inferred
            // edges (ties broken by length).
            let mut best: Option<Vec<Edge>> = None;
            let mut best_cost = (usize::MAX, usize::MAX);
            for seed in seeds {
                if seed.from == seed.to {
                    best = Some(vec![seed]);
                    break;
                }
                let path = self
                    .cheapest_path_within(seed.to, seed.from, ci as u32, &comp_of)
                    .expect("SCC nodes must be mutually reachable");
                let mut edges = path;
                edges.push(seed);
                let cost = (
                    edges.iter().filter(|e| !e.kind.is_base()).count(),
                    edges.len(),
                );
                if cost < best_cost {
                    best_cost = cost;
                    best = Some(edges);
                }
            }
            let mut edges = best.expect("at least one seed evaluated");
            // Rotate so the cycle starts at its smallest node: deterministic
            // output for tests and stable reports.
            let min_pos = edges
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.from)
                .map(|(i, _)| i)
                .unwrap_or(0);
            edges.rotate_left(min_pos);
            cycles.push(Cycle { edges });
        }
        cycles
    }

    /// 0–1 BFS from `src` to `dst` staying inside component `ci`; inferred
    /// edges cost 1, base edges cost 0. Returns the edge path.
    fn cheapest_path_within(
        &self,
        src: u32,
        dst: u32,
        ci: u32,
        comp_of: &[u32],
    ) -> Option<Vec<Edge>> {
        let n = self.n;
        let mut dist = vec![u32::MAX; n];
        let mut pred: Vec<Option<Edge>> = vec![None; n];
        let mut dq: VecDeque<u32> = VecDeque::new();
        dist[src as usize] = 0;
        dq.push_front(src);
        while let Some(v) = dq.pop_front() {
            if v == dst {
                break;
            }
            let dv = dist[v as usize];
            for &(w, kind) in self.successors(v) {
                if comp_of[w as usize] != ci {
                    continue;
                }
                let cost = if kind.is_base() { 0 } else { 1 };
                let nd = dv + cost;
                if nd < dist[w as usize] {
                    dist[w as usize] = nd;
                    pred[w as usize] = Some(Edge {
                        from: v,
                        to: w,
                        kind,
                    });
                    if cost == 0 {
                        dq.push_front(w);
                    } else {
                        dq.push_back(w);
                    }
                }
            }
        }
        if dist[dst as usize] == u32::MAX {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = dst;
        while cur != src {
            let e = pred[cur as usize]?;
            cur = e.from;
            edges.push(e);
        }
        edges.reverse();
        Some(edges)
    }
}

/// Builds the base commit relation `so ∪ wr` over the committed
/// transactions: session-order edges between consecutive committed
/// transactions of each session, plus one write–read edge per distinct
/// `(writer, reader)` pair.
pub fn base_commit_graph(index: &HistoryIndex) -> CommitGraph {
    let mut g = CommitGraph::new(0);
    base_commit_graph_into(index, &mut g);
    g
}

/// [`base_commit_graph`] into a caller-owned graph arena: the graph is
/// [`reset`](CommitGraph::reset) to the right node count (reusing its
/// buffers) and refilled with the `so ∪ wr` edges.
pub fn base_commit_graph_into(index: &HistoryIndex, g: &mut CommitGraph) {
    let m = index.num_committed();
    g.reset(m);
    for s in 0..index.num_sessions() {
        let list = index.session_committed(SessionId(s as u32));
        for w in list.windows(2) {
            g.add_edge(w[0], w[1], EdgeKind::SessionOrder);
        }
    }
    // Deduplicate wr edges per (writer, reader) with a stamp array.
    let mut stamp = vec![u32::MAX; m];
    for d in 0..m as u32 {
        for r in index.ext_reads(d) {
            if stamp[r.writer as usize] != d {
                stamp[r.writer as usize] = d;
                g.add_edge(r.writer, d, EdgeKind::WriteRead(r.key));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> EdgeKind {
        EdgeKind::Inferred(Key(i))
    }

    #[test]
    fn empty_graph_is_acyclic() {
        let g = CommitGraph::new(0);
        assert!(g.is_acyclic());
        assert_eq!(g.topological_order(), Some(vec![]));
    }

    #[test]
    fn chain_is_acyclic_with_topo_order() {
        let mut g = CommitGraph::new(4);
        g.add_edge(0, 1, EdgeKind::SessionOrder);
        g.add_edge(1, 2, EdgeKind::WriteRead(Key(0)));
        g.add_edge(2, 3, k(1));
        assert!(g.is_acyclic());
        assert_eq!(g.topological_order(), Some(vec![0, 1, 2, 3]));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn two_cycle_is_detected() {
        let mut g = CommitGraph::new(2);
        g.add_edge(0, 1, EdgeKind::SessionOrder);
        g.add_edge(1, 0, k(0));
        assert!(!g.is_acyclic());
        assert_eq!(g.topological_order(), None);
        let cycles = g.find_cycles(10);
        assert_eq!(cycles.len(), 1);
        assert!(cycles[0].is_closed());
        assert_eq!(cycles[0].edges.len(), 2);
        assert_eq!(cycles[0].inferred_count(), 1);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = CommitGraph::new(1);
        g.add_edge(0, 0, k(0));
        assert!(!g.is_acyclic());
        let cycles = g.find_cycles(10);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].edges.len(), 1);
        assert!(cycles[0].is_closed());
    }

    #[test]
    fn one_cycle_per_scc() {
        let mut g = CommitGraph::new(6);
        // SCC 1: 0 <-> 1; SCC 2: 2 -> 3 -> 4 -> 2; node 5 isolated.
        g.add_edge(0, 1, EdgeKind::SessionOrder);
        g.add_edge(1, 0, k(0));
        g.add_edge(2, 3, EdgeKind::SessionOrder);
        g.add_edge(3, 4, EdgeKind::WriteRead(Key(0)));
        g.add_edge(4, 2, k(1));
        g.add_edge(5, 0, EdgeKind::SessionOrder);
        let cycles = g.find_cycles(10);
        assert_eq!(cycles.len(), 2);
        for c in &cycles {
            assert!(c.is_closed());
        }
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = cycles.iter().map(|c| c.edges.len()).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![2, 3]);
    }

    #[test]
    fn cycle_extraction_prefers_few_inferred_edges() {
        let mut g = CommitGraph::new(4);
        // Two ways back from 1 to 0: direct inferred edge, or a base path
        // 1 -> 2 -> 3 -> 0. The seed edge is inferred (0 -> 1 is base,
        // 1 -> 0 inferred); closing path should use base edges only...
        g.add_edge(0, 1, EdgeKind::SessionOrder);
        g.add_edge(1, 0, k(9));
        g.add_edge(1, 2, k(1));
        g.add_edge(2, 3, k(2));
        g.add_edge(3, 0, k(3));
        let cycles = g.find_cycles(1);
        assert_eq!(cycles.len(), 1);
        // Best cycle: base edge 0->1 plus inferred 1->0 (1 inferred edge).
        assert_eq!(cycles[0].inferred_count(), 1);
        assert_eq!(cycles[0].edges.len(), 2);
    }

    #[test]
    fn max_limits_cycle_count() {
        let mut g = CommitGraph::new(4);
        g.add_edge(0, 1, k(0));
        g.add_edge(1, 0, k(0));
        g.add_edge(2, 3, k(0));
        g.add_edge(3, 2, k(0));
        assert_eq!(g.find_cycles(1).len(), 1);
        assert_eq!(g.find_cycles(0).len(), 0);
        assert_eq!(g.find_cycles(5).len(), 2);
    }

    #[test]
    fn sccs_cover_all_nodes() {
        let mut g = CommitGraph::new(5);
        g.add_edge(0, 1, k(0));
        g.add_edge(1, 2, k(0));
        g.add_edge(2, 0, k(0));
        g.add_edge(3, 4, k(0));
        let sccs = g.sccs();
        let mut all: Vec<u32> = sccs.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn reset_recycles_across_shrinking_and_growing() {
        let mut g = CommitGraph::new(3);
        g.add_edge(0, 1, EdgeKind::SessionOrder);
        g.add_edge(1, 2, k(0));
        g.freeze();
        let grown = g.heap_bytes();

        // Shrink: the tail adjacency buffers are kept, only cleared.
        g.reset(1);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
        assert!(g.successors(0).is_empty());
        g.freeze();
        assert!(g.is_acyclic());
        assert!(
            g.heap_bytes() >= grown - 64,
            "shrinking reset must not free the large history's buffers"
        );

        // Grow back: same shape as the first build — no arena growth.
        g.reset(3);
        g.add_edge(0, 1, EdgeKind::SessionOrder);
        g.add_edge(1, 2, k(0));
        g.freeze();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.successors(1), &[(2, k(0))]);
        assert!(g.heap_bytes() <= grown, "regrow must reuse, not grow");
    }

    #[test]
    fn large_path_graph_does_not_overflow_stack() {
        // Iterative Tarjan must handle deep graphs.
        let n = 200_000;
        let mut g = CommitGraph::new(n);
        for i in 0..(n as u32 - 1) {
            g.add_edge(i, i + 1, EdgeKind::SessionOrder);
        }
        assert!(g.is_acyclic());
        assert_eq!(g.sccs().len(), n);
    }
}
