//! Causal Consistency (Algorithm 3): saturation of the minimal commit
//! relation for the CC axiom in `O(n·k)` time.
//!
//! The CC axiom (Definition 2.8, Figure 3c): if `t3` reads `x` from `t1`,
//! and `t2 ≠ t1` writes `x` with `t2 →(so ∪ wr)+→ t3` (happens-before),
//! then `t2` must commit before `t1`. Only the *session-latest*
//! happens-before writer of `x` per session needs a direct edge — earlier
//! ones are ordered transitively through it (minimality).
//!
//! Happens-before is represented by per-transaction [`VectorClock`]s
//! (`ComputeHB`): entry `s` of `t`'s clock counts the committed
//! transactions of session `s` that happen before `t` (inclusive of `t`
//! itself in its own session), which is exact because happens-before
//! restricted to a session is prefix-closed.
//!
//! Two interchangeable strategies locate the latest visible writer in each
//! session's `Writes_s'[x]` array:
//!
//! * [`CcStrategy::PointerScan`] — Algorithm 3 as written: monotone
//!   pointers per `(session, key)`, re-scanned once per outer session, with
//!   the full clock table materialized up front. `O(n·k)` time,
//!   `O(m·k)` clock memory.
//! * [`CcStrategy::BinarySearch`] — what the released AWDIT tool does
//!   (Section 5): clocks are computed on the fly in one topological pass
//!   and freed once their last reader is processed; writer lookups binary
//!   search the write lists. `O(n·(k + log n))` time, live-clock memory
//!   only.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use crate::graph::{base_commit_graph, base_commit_graph_into, CommitGraph, Cycle, EdgeKind};
use crate::incremental::{EdgeSink, FnvMap};
use crate::index::{HistoryIndex, NONE};
use crate::parallel;
use crate::types::SessionId;
use crate::vector_clock::VectorClock;

/// Strategy for the CC checker's visible-writer lookups. See the module
/// docs for the trade-offs.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum CcStrategy {
    /// Algorithm 3 verbatim: precomputed clock table + monotone pointer
    /// scans.
    PointerScan,
    /// The released tool's variant: on-the-fly clocks + binary search.
    #[default]
    BinarySearch,
}

impl std::fmt::Display for CcStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CcStrategy::PointerScan => "pointer-scan",
            CcStrategy::BinarySearch => "binary-search",
        })
    }
}

impl std::str::FromStr for CcStrategy {
    type Err = String;

    /// Parses the CLI spelling of a strategy: `pointer-scan` (or `ps`) and
    /// `binary-search` (or `bs`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "pointer-scan" | "pointerscan" | "pointer" | "ps" => Ok(CcStrategy::PointerScan),
            "binary-search" | "binarysearch" | "binary" | "bs" => Ok(CcStrategy::BinarySearch),
            _ => Err(format!(
                "unknown CC strategy `{s}` (expected pointer-scan or binary-search)"
            )),
        }
    }
}

/// Flat, recyclable storage for the CC happens-before clocks: one
/// `k`-entry row per slot in a single buffer, plus the per-session
/// frontier clocks and the per-writer scratch counters both strategy
/// implementations stamp during a pass.
///
/// Replacing the former `Vec<VectorClock>` table (one heap allocation per
/// transaction) with flat rows does two things: a saturation pass touches
/// one contiguous buffer instead of `m` scattered vectors, and the whole
/// table is an **arena** — [`begin`](Self::begin) re-arms it without
/// freeing, so the [`Engine`](crate::Engine) recycles the clock storage
/// across checks exactly like its index and graph arenas (the
/// [`EngineStats::arena_growths`](crate::EngineStats) accounting covers
/// it).
///
/// [`CcStrategy::PointerScan`] materializes all `m` rows;
/// [`CcStrategy::BinarySearch`] allocates rows through the internal free
/// list as clocks become live and releases them after their last reader,
/// so its live-clock memory bound carries over — the arena's high-water
/// mark is the peak live-clock count, not `m`.
#[derive(Clone, Debug, Default)]
pub struct ClockTable {
    k: usize,
    /// Slot rows: `slot * k .. (slot + 1) * k`.
    rows: Vec<u32>,
    /// Released slot ids, reused before growing `rows`.
    free: Vec<u32>,
    /// Per-transaction slot id ([`NONE`] when absent/released).
    slot_of: Vec<u32>,
    /// Session frontier clocks: `s * k .. (s + 1) * k`.
    session: Vec<u32>,
    /// The row being assembled for the current transaction.
    cur: Vec<u32>,
    /// Per-writer stamp (liveness counting pass).
    stamp_a: Vec<u32>,
    /// Per-writer stamp (join pass).
    stamp_b: Vec<u32>,
    /// Per-writer remaining-reader counts (liveness mode).
    readers_left: Vec<u32>,
}

impl ClockTable {
    /// An empty table, ready for [`begin`](Self::begin).
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-arms the table for a history with `k` sessions and `m` committed
    /// transactions, keeping every buffer's capacity.
    pub fn begin(&mut self, k: usize, m: usize) {
        self.k = k;
        self.rows.clear();
        self.free.clear();
        self.slot_of.clear();
        self.slot_of.resize(m, NONE);
        self.session.clear();
        self.session.resize(k * k, 0);
        self.cur.clear();
        self.cur.resize(k, 0);
        self.stamp_a.clear();
        self.stamp_a.resize(m, u32::MAX);
        self.stamp_b.clear();
        self.stamp_b.resize(m, u32::MAX);
        self.readers_left.clear();
        self.readers_left.resize(m, 0);
    }

    /// Allocates a slot (free list first) whose row contents are
    /// unspecified until written.
    fn alloc(&mut self) -> u32 {
        if let Some(slot) = self.free.pop() {
            return slot;
        }
        let slot = (self.rows.len() / self.k.max(1)) as u32;
        self.rows.resize(self.rows.len() + self.k, 0);
        slot
    }

    /// Stores the current row as transaction `d`'s clock.
    fn store(&mut self, d: u32) {
        let slot = self.alloc();
        self.slot_of[d as usize] = slot;
        let r = slot as usize * self.k;
        self.rows[r..r + self.k].copy_from_slice(&self.cur);
    }

    /// Releases transaction `d`'s row back to the free list.
    fn release(&mut self, d: u32) {
        let slot = std::mem::replace(&mut self.slot_of[d as usize], NONE);
        if slot != NONE {
            self.free.push(slot);
        }
    }

    /// The stored clock row of transaction `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d`'s clock was never stored or was already released.
    #[inline]
    pub fn row(&self, d: u32) -> &[u32] {
        let slot = self.slot_of[d as usize];
        assert!(slot != NONE, "clock of t{d} is not live");
        let r = slot as usize * self.k;
        &self.rows[r..r + self.k]
    }

    /// Heap footprint in bytes (capacities, not lengths) — the quantity
    /// tracked by the engine's arena-growth accounting.
    pub fn heap_bytes(&self) -> usize {
        (self.rows.capacity()
            + self.free.capacity()
            + self.slot_of.capacity()
            + self.session.capacity()
            + self.cur.capacity()
            + self.stamp_a.capacity()
            + self.stamp_b.capacity()
            + self.readers_left.capacity())
            * std::mem::size_of::<u32>()
    }

    /// Joins the writers' clocks of `d`'s external reads into the current
    /// row (seeded from `d`'s session frontier) and advances `d`'s own
    /// entry, then publishes the row as the new session frontier.
    /// Deduplication of repeated writers uses `stamp_b`.
    fn compute_row(&mut self, index: &HistoryIndex, d: u32) {
        let s = index.session_of(d) as usize;
        let k = self.k;
        // `cur` and `session` never alias: copy via split borrows.
        let (session, cur) = (&self.session[s * k..(s + 1) * k], &mut self.cur);
        cur.copy_from_slice(session);
        for r in index.ext_reads(d) {
            let w = r.writer as usize;
            if self.stamp_b[w] != d {
                self.stamp_b[w] = d;
                let slot = self.slot_of[w];
                debug_assert!(slot != NONE, "writer processed before reader");
                let row = &self.rows[slot as usize * k..(slot as usize + 1) * k];
                for (c, &v) in self.cur.iter_mut().zip(row) {
                    if *c < v {
                        *c = v;
                    }
                }
            }
        }
        let pos = index.committed_pos(d) + 1;
        if self.cur[s] < pos {
            self.cur[s] = pos;
        }
        self.session[s * k..(s + 1) * k].copy_from_slice(&self.cur);
    }
}

/// `ComputeHB` into a recycled [`ClockTable`]: the full clock table, one
/// row per committed transaction, computed along a topological order of
/// `so ∪ wr`. Entry `s` of row `t` is the number of committed transactions
/// of session `s` that happen before `t` — counting `t` itself for its own
/// session, i.e. the *inclusive* clock.
pub fn compute_hb_into(index: &HistoryIndex, topo: &[u32], table: &mut ClockTable) {
    let obs = awdit_obs::current();
    let _span = obs.span("cc_clock_pass");
    table.begin(index.num_sessions(), index.num_committed());
    for &t in topo {
        table.compute_row(index, t);
        table.store(t);
    }
}

/// Work handed out per cursor grab inside a wavefront level — large
/// enough to amortize the atomic, small enough to balance skewed rows.
const WAVEFRONT_GRAIN: usize = 8;

/// One wavefront row, written into `out`: seed from the session
/// predecessor's sealed row (zeros for a session head), max-join each
/// external-read writer's sealed row, then advance the own-session entry
/// to the inclusive position. These are exactly the values
/// [`ClockTable::compute_row`] produces — the session frontier a
/// sequential pass seeds from *is* the predecessor's stored row, and the
/// max-join is idempotent so its repeated-writer dedup is unnecessary.
fn wavefront_row(index: &HistoryIndex, k: usize, rows: &[AtomicU32], t: u32, out: &mut [u32]) {
    let s = index.session_of(t) as usize;
    let pos = index.committed_pos(t);
    if pos > 0 {
        let pred = index.session_committed(SessionId(s as u32))[pos as usize - 1] as usize;
        for (o, v) in out.iter_mut().zip(&rows[pred * k..pred * k + k]) {
            *o = v.load(Ordering::Relaxed);
        }
    } else {
        out.fill(0);
    }
    for r in index.ext_reads(t) {
        let w = r.writer as usize;
        for (o, v) in out.iter_mut().zip(&rows[w * k..w * k + k]) {
            let v = v.load(Ordering::Relaxed);
            if *o < v {
                *o = v;
            }
        }
    }
    let inclusive = pos + 1;
    if out[s] < inclusive {
        out[s] = inclusive;
    }
}

/// [`compute_hb_into`] on up to `threads` workers (`0` = all cores): a
/// level-synchronous wavefront over the happens-before DAG, so the clock
/// table fills on every core instead of serializing ahead of the sharded
/// inference.
///
/// Each clock row is a pure join of already-sealed rows (the session
/// predecessor's, plus each external-read writer's) followed by advancing
/// the transaction's own session entry. Levels are longest-path depths in
/// `so ∪ wr`: a transaction at level `l` reads only rows at levels `< l`,
/// and levels strictly increase along a session, so a level holds at most
/// one row per session and all of its writes are disjoint. The caller
/// sweeps the levels in order, dispatching each wide level to the pool
/// (an atomic cursor deals `WAVEFRONT_GRAIN`-row chunks) and running
/// narrow levels inline — the scoped dispatch's drain barrier seals a
/// level before the next one starts, replacing the old fixed-width thread
/// barrier. Every written value is a pure function of sealed rows, so the
/// resulting table is bit-identical to the sequential pass for every
/// thread count and schedule (the rows land in identity slots rather than
/// the sequential allocation order — [`ClockTable::row`] resolves both).
///
/// Falls back to the sequential [`compute_hb_into`] when `threads <= 1`,
/// the history is below [`parallel::SEQUENTIAL_CUTOFF`], or there is only
/// one session (level width is capped by the session count).
pub fn compute_hb_wavefront_into(
    index: &HistoryIndex,
    topo: &[u32],
    threads: usize,
    table: &mut ClockTable,
) {
    compute_hb_wavefront_pool(&parallel::Pool::new(threads), index, topo, threads, table);
}

/// [`compute_hb_wavefront_into`] dispatching on a caller-owned [`Pool`]
/// (the [`Engine`](crate::Engine)'s shared one) instead of an ephemeral
/// one.
///
/// [`Pool`]: parallel::Pool
pub fn compute_hb_wavefront_pool(
    pool: &parallel::Pool,
    index: &HistoryIndex,
    topo: &[u32],
    threads: usize,
    table: &mut ClockTable,
) {
    let threads = parallel::effective_threads(threads).min(pool.width());
    let m = index.num_committed();
    let k = index.num_sessions();
    if threads <= 1 || m < parallel::SEQUENTIAL_CUTOFF || k < 2 {
        compute_hb_into(index, topo, table);
        return;
    }
    let obs = awdit_obs::current();
    let _span = obs.span("cc_clock_pass");
    table.begin(k, m);
    // Full-table identity layout: slot `t` holds `t`'s row.
    table.rows.resize(m * k, 0);
    for (t, slot) in table.slot_of.iter_mut().enumerate() {
        *slot = t as u32;
    }

    // Level assignment: one cheap sequential sweep along the topological
    // order (level = 1 + max over happens-before predecessors).
    let mut level = vec![0u32; m];
    let mut num_levels = 0usize;
    for &t in topo {
        let s = index.session_of(t) as usize;
        let pos = index.committed_pos(t);
        let mut lv = 0u32;
        if pos > 0 {
            let pred = index.session_committed(SessionId(s as u32))[pos as usize - 1];
            lv = level[pred as usize] + 1;
        }
        for r in index.ext_reads(t) {
            lv = lv.max(level[r.writer as usize] + 1);
        }
        level[t as usize] = lv;
        num_levels = num_levels.max(lv as usize + 1);
    }

    // Stable counting sort of the topological order into level buckets —
    // within a level, transactions keep their topological order.
    let mut starts = vec![0u32; num_levels + 1];
    for &t in topo {
        starts[level[t as usize] as usize + 1] += 1;
    }
    for i in 1..starts.len() {
        starts[i] += starts[i - 1];
    }
    let mut by_level = vec![0u32; topo.len()];
    let mut cursor = starts.clone();
    for &t in topo {
        let l = level[t as usize] as usize;
        by_level[cursor[l] as usize] = t;
        cursor[l] += 1;
    }

    // The wavefront fills an atomic image of the row buffer: writes at the
    // current level hit disjoint rows, reads touch only rows sealed at
    // lower levels, and the scoped dispatch's drain barrier (the pool
    // lock) publishes a level before the next one starts — relaxed
    // atomics (plain loads/stores on every real ISA) add no ordering cost.
    let scratch: Vec<AtomicU32> = (0..m * k).map(|_| AtomicU32::new(0)).collect();
    let workers = threads.min(k);
    let timed = obs.enabled();
    let pool_start = timed.then(std::time::Instant::now);
    let busy_total = AtomicU64::new(0);
    let mut seq_out = vec![0u32; k];
    for l in 0..num_levels {
        let lo = starts[l] as usize;
        let end = starts[l + 1] as usize;
        let width = end - lo;
        if width < WAVEFRONT_GRAIN * 2 {
            // Narrow level: a pool wake costs more than the rows do. Run
            // inline on the caller; the next dispatch's publish still
            // orders these stores before any worker reads them.
            let t0 = timed.then(std::time::Instant::now);
            for &t in &by_level[lo..end] {
                wavefront_row(index, k, &scratch, t, &mut seq_out);
                let r = t as usize * k;
                for (dst, &v) in scratch[r..r + k].iter().zip(seq_out.iter()) {
                    dst.store(v, Ordering::Relaxed);
                }
            }
            if let Some(t0) = t0 {
                busy_total.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
            continue;
        }
        let grab = AtomicUsize::new(lo);
        let parts = workers.min(width.div_ceil(WAVEFRONT_GRAIN));
        pool.scope(parts, |_| {
            let mut out = vec![0u32; k];
            let t0 = timed.then(std::time::Instant::now);
            loop {
                let i = grab.fetch_add(WAVEFRONT_GRAIN, Ordering::Relaxed);
                if i >= end {
                    break;
                }
                for &t in &by_level[i..end.min(i + WAVEFRONT_GRAIN)] {
                    wavefront_row(index, k, &scratch, t, &mut out);
                    let r = t as usize * k;
                    for (dst, &v) in scratch[r..r + k].iter().zip(out.iter()) {
                        dst.store(v, Ordering::Relaxed);
                    }
                }
            }
            if let Some(t0) = t0 {
                busy_total.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        });
    }
    if let (Some(start), Some(metrics)) = (pool_start, obs.metrics()) {
        let capacity_ns = (start.elapsed().as_nanos() as u64).saturating_mul(workers as u64);
        parallel::record_pool_metrics(
            metrics,
            "cc_clock_pass",
            busy_total.load(Ordering::Relaxed),
            capacity_ns,
        );
        pool.publish_metrics(metrics);
    }
    // Publish the sealed image into the table's row arena.
    for (dst, src) in table.rows.iter_mut().zip(&scratch) {
        *dst = src.load(Ordering::Relaxed);
    }
}

/// Saturates the minimal commit relation for Causal Consistency.
///
/// # Errors
///
/// If `so ∪ wr` itself is cyclic, happens-before is not well defined; the
/// offending cycles (one per strongly connected component) are returned
/// instead.
pub fn saturate_cc(index: &HistoryIndex, strategy: CcStrategy) -> Result<CommitGraph, Vec<Cycle>> {
    saturate_cc_with(index, strategy, 1)
}

/// [`saturate_cc`] on up to `threads` worker threads (`0` = all cores).
///
/// Happens-before clocks fill on every worker via the level-synchronous
/// [`compute_hb_wavefront_into`] pass; the inference over them is
/// read-only per transaction, so it shards —
/// contiguous chunks of the topological order for
/// [`CcStrategy::BinarySearch`], contiguous session groups for
/// [`CcStrategy::PointerScan`] — with thread-local edge sinks concatenated
/// in chunk order, reproducing the sequential emission bit-for-bit at
/// every thread count.
pub fn saturate_cc_with(
    index: &HistoryIndex,
    strategy: CcStrategy,
    threads: usize,
) -> Result<CommitGraph, Vec<Cycle>> {
    let mut g = CommitGraph::new(0);
    saturate_cc_into(index, strategy, threads, &mut g).map(|()| g)
}

/// [`saturate_cc_with`] into a caller-owned graph arena (reset and
/// refilled; see [`CommitGraph::reset`]) — the [`Engine`](crate::Engine)'s
/// allocation-recycling path.
///
/// # Errors
///
/// As [`saturate_cc`]: if `so ∪ wr` is cyclic the offending cycles are
/// returned and the graph is left holding only the base edges.
pub fn saturate_cc_into(
    index: &HistoryIndex,
    strategy: CcStrategy,
    threads: usize,
    g: &mut CommitGraph,
) -> Result<(), Vec<Cycle>> {
    let mut clocks = ClockTable::new();
    saturate_cc_scratch(index, strategy, threads, g, &mut clocks)
}

/// [`saturate_cc_into`] with a caller-owned [`ClockTable`] as well — the
/// fully-recycled form the [`Engine`](crate::Engine) runs: graph *and*
/// clock arenas are re-armed in place, so a same-shape check allocates
/// nothing.
///
/// # Errors
///
/// As [`saturate_cc`].
pub fn saturate_cc_scratch(
    index: &HistoryIndex,
    strategy: CcStrategy,
    threads: usize,
    g: &mut CommitGraph,
    clocks: &mut ClockTable,
) -> Result<(), Vec<Cycle>> {
    saturate_cc_pool(
        &parallel::Pool::new(threads),
        index,
        strategy,
        threads,
        g,
        clocks,
    )
}

/// [`saturate_cc_scratch`] dispatching on a caller-owned
/// [`Pool`](parallel::Pool) — the form the [`Engine`](crate::Engine)
/// runs, so every CC stage (clock wavefront, inference shards, cycle
/// extraction on failure) reuses the engine's parked workers.
///
/// # Errors
///
/// As [`saturate_cc`].
pub fn saturate_cc_pool(
    pool: &parallel::Pool,
    index: &HistoryIndex,
    strategy: CcStrategy,
    threads: usize,
    g: &mut CommitGraph,
    clocks: &mut ClockTable,
) -> Result<(), Vec<Cycle>> {
    let obs = awdit_obs::current();
    {
        let _span = obs.span("cc_base_graph");
        base_commit_graph_into(index, g);
    }
    let topo_span = obs.span("cc_topo_order");
    let topo = match g.topological_order() {
        Some(t) => t,
        None => return Err(g.find_cycles_pool(pool, usize::MAX, threads)),
    };
    drop(topo_span);
    let threads = parallel::effective_threads(threads);
    if threads <= 1 || index.num_committed() < parallel::SEQUENTIAL_CUTOFF {
        match strategy {
            CcStrategy::PointerScan => pointer_scan(index, g, &topo, clocks),
            CcStrategy::BinarySearch => binary_search(index, g, &topo, clocks),
        }
        return Ok(());
    }
    match strategy {
        CcStrategy::PointerScan => pointer_scan_par(pool, index, g, &topo, threads, clocks),
        CcStrategy::BinarySearch => binary_search_par(pool, index, g, &topo, threads, clocks),
    }
    Ok(())
}

/// `ComputeHB`: the full clock table as one [`VectorClock`] per committed
/// transaction, computed along a topological order of `so ∪ wr`.
///
/// Entry `s` of `clock[t]` is the number of committed transactions of
/// session `s` that happen before `t` — counting `t` itself for its own
/// session, i.e. the *inclusive* clock. This is the boxed-clock
/// convenience form; the saturators themselves run on the flat
/// [`ClockTable`] via [`compute_hb_into`].
pub fn compute_hb(index: &HistoryIndex, g: &CommitGraph, topo: &[u32]) -> Vec<VectorClock> {
    let _ = g; // the base graph fixes the topological order's domain
    let k = index.num_sessions();
    let mut table = ClockTable::new();
    compute_hb_into(index, topo, &mut table);
    let mut clocks: Vec<VectorClock> = vec![VectorClock::new(0); index.num_committed()];
    for &t in topo {
        let mut c = VectorClock::new(k);
        for (s, &v) in table.row(t).iter().enumerate() {
            c.advance(s, v);
        }
        clocks[t as usize] = c;
    }
    clocks
}

/// Algorithm 3's per-session loop with monotone `lastWrite` pointers:
/// processes all of session `s`'s committed transactions, emitting into
/// `g`. The pointer table is private to the session (the monotonicity that
/// makes the scans amortize holds only while `t3` advances within one
/// session), so distinct sessions can run on distinct workers.
fn pointer_scan_session<G: EdgeSink>(index: &HistoryIndex, clocks: &ClockTable, s: u32, g: &mut G) {
    // Pointers into Writes_s'[x], keyed by (s', key).
    let mut ptr: FnvMap<(u32, crate::types::Key), usize> = FnvMap::default();
    for &t3 in index.session_committed(SessionId(s)) {
        let clock = clocks.row(t3);
        for &(x, t1) in index.read_pairs(t3) {
            // Only sessions that write x can contribute a last writer.
            for (s_prime, writes) in index.key_writes(x) {
                // Strict happens-before: own session excludes t3 itself
                // (its inclusive entry is pos+1).
                let bound = if s_prime == s {
                    clock[s_prime as usize].saturating_sub(1)
                } else {
                    clock[s_prime as usize]
                };
                let p = ptr.entry((s_prime, x)).or_insert(0);
                while *p < writes.len() && index.committed_pos(writes[*p]) < bound {
                    *p += 1;
                }
                if *p > 0 {
                    let t2 = writes[*p - 1];
                    if t2 != t1 {
                        g.add_edge(t2, t1, EdgeKind::Inferred(x));
                    }
                }
            }
        }
    }
}

/// Algorithm 3's main loop with monotone `lastWrite` pointers.
fn pointer_scan(index: &HistoryIndex, g: &mut CommitGraph, topo: &[u32], clocks: &mut ClockTable) {
    compute_hb_into(index, topo, clocks);
    for s in 0..index.num_sessions() as u32 {
        pointer_scan_session(index, &*clocks, s, g);
    }
}

/// Sharded [`pointer_scan`]: contiguous session groups (weighted by their
/// transaction counts) across workers, merged in group order.
fn pointer_scan_par(
    pool: &parallel::Pool,
    index: &HistoryIndex,
    g: &mut CommitGraph,
    topo: &[u32],
    threads: usize,
    clocks: &mut ClockTable,
) {
    compute_hb_wavefront_pool(pool, index, topo, threads, clocks);
    let clocks = &*clocks;
    let groups = parallel::session_groups(index, threads * 2);
    let sinks = parallel::map_shards(pool, threads, "cc_pointer_scan", &groups, |_, sessions| {
        let mut sink = parallel::EdgeBuf::new();
        for s in sessions.clone() {
            pointer_scan_session(index, clocks, s as u32, &mut sink);
        }
        sink
    });
    parallel::merge_sinks(g, sinks);
}

/// Sharded `BinarySearch` strategy: the clock table is materialized by the
/// wavefront [`compute_hb_wavefront_into`] pass, then contiguous chunks of the
/// topological order run [`infer_cc_edges`] on workers, merged in chunk
/// order (identical emission to the sequential on-the-fly variant, which
/// also processes transactions in topological order).
fn binary_search_par(
    pool: &parallel::Pool,
    index: &HistoryIndex,
    g: &mut CommitGraph,
    topo: &[u32],
    threads: usize,
    clocks: &mut ClockTable,
) {
    compute_hb_wavefront_pool(pool, index, topo, threads, clocks);
    let clocks = &*clocks;
    let shards = parallel::split_even(topo.len(), threads * 4);
    let sinks = parallel::map_shards(pool, threads, "cc_binary_search", &shards, |_, range| {
        let mut sink = parallel::EdgeBuf::new();
        for &t3 in &topo[range.start as usize..range.end as usize] {
            crate::incremental::infer_cc_edges(index, t3, clocks.row(t3), &mut sink);
        }
        sink
    });
    parallel::merge_sinks(g, sinks);
}

/// The released tool's variant: clocks on the fly along the topological
/// order, released back to the table's free list after their last reader
/// (live-clock memory only); binary search for visible writers.
fn binary_search(index: &HistoryIndex, g: &mut CommitGraph, topo: &[u32], clocks: &mut ClockTable) {
    let m = index.num_committed();
    clocks.begin(index.num_sessions(), m);

    // Number of distinct reader transactions per writer, so clocks can be
    // released eagerly.
    for t in 0..m as u32 {
        for r in index.ext_reads(t) {
            if clocks.stamp_a[r.writer as usize] != t {
                clocks.stamp_a[r.writer as usize] = t;
                clocks.readers_left[r.writer as usize] += 1;
            }
        }
    }

    for &t3 in topo {
        clocks.compute_row(index, t3);
        for r in index.ext_reads(t3) {
            let w = r.writer as usize;
            // Dedup repeated reads of one writer by stamping `stamp_a` with
            // `!t3`: the counting pass above stamped with plain reader ids
            // (`< m`), so complements (`> u32::MAX - m`) cannot collide with
            // them for any m < 2^31.
            if clocks.stamp_a[w] != !t3 {
                clocks.stamp_a[w] = !t3;
                clocks.readers_left[w] -= 1;
                if clocks.readers_left[w] == 0 {
                    clocks.release(r.writer);
                }
            }
        }

        // Inference for t3, immediately while its clock is at hand — the
        // shared per-transaction body also driven by the streaming checker.
        crate::incremental::infer_cc_edges(index, t3, &clocks.cur, g);

        if clocks.readers_left[t3 as usize] > 0 {
            clocks.store(t3);
        }
    }
}

/// Convenience wrapper: does the history's `so ∪ wr` relation contain a
/// cycle? (Required to be acyclic by every isolation level.)
pub fn causality_cycles(index: &HistoryIndex) -> Vec<Cycle> {
    let mut g = base_commit_graph(index);
    g.freeze();
    if g.topological_order().is_some() {
        Vec::new()
    } else {
        g.find_cycles(usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{History, HistoryBuilder};
    use crate::ra::{check_repeatable_reads, saturate_ra};

    fn cc_consistent(h: &History, strategy: CcStrategy) -> bool {
        let index = HistoryIndex::new(h);
        match saturate_cc(&index, strategy) {
            Ok(g) => g.is_acyclic(),
            Err(_) => false,
        }
    }

    fn both_strategies_agree(h: &History) -> bool {
        let a = cc_consistent(h, CcStrategy::PointerScan);
        let b = cc_consistent(h, CcStrategy::BinarySearch);
        assert_eq!(a, b, "strategies disagree");
        a
    }

    /// Figure 1b: the motivating CC-inconsistent history.
    #[test]
    fn fig1b_cc_inconsistent() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let s3 = b.session();
        let s4 = b.session();
        let (x, y, z) = (0, 1, 2);
        // s1: t1 = W(x,1); t2 = W(x,2); t3 = W(y,1) R(z,2)
        b.begin(s1);
        b.write(s1, x, 1);
        b.commit(s1);
        b.begin(s1);
        b.write(s1, x, 2);
        b.commit(s1);
        b.begin(s1);
        b.write(s1, y, 1);
        b.read(s1, z, 2);
        b.commit(s1);
        // s2: t4 = W(x,3); t5 = W(z,1)
        b.begin(s2);
        b.write(s2, x, 3);
        b.commit(s2);
        b.begin(s2);
        b.write(s2, z, 1);
        b.commit(s2);
        // s3: t6 = W(x,4) R(z,1) W(z,2)
        b.begin(s3);
        b.write(s3, x, 4);
        b.read(s3, z, 1);
        b.write(s3, z, 2);
        b.commit(s3);
        // s4: t7 = R(x,3) R(y,1)
        b.begin(s4);
        b.read(s4, x, 3);
        b.read(s4, y, 1);
        b.commit(s4);
        let h = b.finish().unwrap();
        assert!(!both_strategies_agree(&h), "Fig. 1b must violate CC");
    }

    /// Figure 4c violates CC: t4 observes t2 (via y written by t3 which
    /// read x=2) but reads the older x=1.
    #[test]
    fn fig4c_cc_inconsistent() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let s3 = b.session();
        let (x, y) = (0, 1);
        b.begin(s1);
        b.write(s1, x, 1); // t1
        b.commit(s1);
        b.begin(s1);
        b.write(s1, x, 2); // t2
        b.commit(s1);
        b.begin(s2);
        b.read(s2, x, 2);
        b.write(s2, y, 3); // t3
        b.commit(s2);
        b.begin(s3);
        b.read(s3, y, 3);
        b.read(s3, x, 1); // t4
        b.commit(s3);
        let h = b.finish().unwrap();
        assert!(!both_strategies_agree(&h));
        // ... while satisfying RA (Example 2.7).
        let index = HistoryIndex::new(&h);
        assert!(check_repeatable_reads(&index).is_empty());
        assert!(saturate_ra(&index).is_acyclic());
    }

    /// Figure 4d satisfies CC (despite being non-serializable).
    #[test]
    fn fig4d_cc_consistent() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let s3 = b.session();
        let x = 0;
        // s1: t1 = W(x,1); t3 = R(x,2)
        // s2: t2 = R(x,1) W(x,2)
        // s3: t4 = R(x,1) W(x,3); t5 = R(x,3)
        b.begin(s1);
        b.write(s1, x, 1); // t1
        b.commit(s1);
        b.begin(s2);
        b.read(s2, x, 1);
        b.write(s2, x, 2); // t2
        b.commit(s2);
        b.begin(s1);
        b.read(s1, x, 2); // t3
        b.commit(s1);
        b.begin(s3);
        b.read(s3, x, 1);
        b.write(s3, x, 3); // t4
        b.commit(s3);
        b.begin(s3);
        b.read(s3, x, 3); // t5
        b.commit(s3);
        let h = b.finish().unwrap();
        assert!(both_strategies_agree(&h));
    }

    #[test]
    fn causality_cycle_is_reported() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        // t1 reads t2's write; t2 reads t1's write: wr cycle.
        b.begin(s1);
        b.write(s1, 0, 1);
        b.read(s1, 1, 2);
        b.commit(s1);
        b.begin(s2);
        b.write(s2, 1, 2);
        b.read(s2, 0, 1);
        b.commit(s2);
        let h = b.finish().unwrap();
        let index = HistoryIndex::new(&h);
        let cycles = causality_cycles(&index);
        assert_eq!(cycles.len(), 1);
        assert!(saturate_cc(&index, CcStrategy::PointerScan).is_err());
        assert!(saturate_cc(&index, CcStrategy::BinarySearch).is_err());
    }

    #[test]
    fn hb_clocks_are_monotone_along_sessions() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        b.begin(s1);
        b.write(s1, 0, 1);
        b.commit(s1);
        b.begin(s2);
        b.read(s2, 0, 1);
        b.commit(s2);
        b.begin(s2);
        b.write(s2, 1, 1);
        b.commit(s2);
        let h = b.finish().unwrap();
        let index = HistoryIndex::new(&h);
        let g = base_commit_graph(&index);
        let topo = g.topological_order().unwrap();
        let clocks = compute_hb(&index, &g, &topo);
        let t_reader = index.dense_id(crate::types::TxnId::new(1, 0));
        let t_next = index.dense_id(crate::types::TxnId::new(1, 1));
        // The reader saw s1's first txn; its session successor inherits it.
        assert_eq!(clocks[t_reader as usize].get(0), 1);
        assert_eq!(clocks[t_next as usize].get(0), 1);
        assert!(clocks[t_reader as usize].le(&clocks[t_next as usize]));
    }

    /// The clock table is an arena: a second same-shape saturation (with
    /// either strategy) reuses every buffer, growing nothing.
    #[test]
    fn clock_table_recycles_across_saturations() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        for k in 0..32u64 {
            b.begin(s1);
            b.write(s1, k, k + 1);
            b.commit(s1);
            b.begin(s2);
            b.read(s2, k, k + 1);
            b.commit(s2);
        }
        let h = b.finish().unwrap();
        let index = HistoryIndex::new(&h);
        for strategy in [CcStrategy::PointerScan, CcStrategy::BinarySearch] {
            let mut table = ClockTable::new();
            let mut g = CommitGraph::new(0);
            saturate_cc_scratch(&index, strategy, 1, &mut g, &mut table).unwrap();
            let edges = g.num_edges();
            let bytes = table.heap_bytes();
            assert!(bytes > 0, "{strategy}: table must hold clock storage");
            for _ in 0..3 {
                g.reset(0);
                saturate_cc_scratch(&index, strategy, 1, &mut g, &mut table).unwrap();
                assert_eq!(g.num_edges(), edges, "{strategy}");
                assert_eq!(
                    table.heap_bytes(),
                    bytes,
                    "{strategy}: same-shape saturation must not grow the clock arena"
                );
            }
        }
    }

    /// The binary-search strategy's live-clock bound carries over to the
    /// arena: a long chain of single-reader transactions keeps the row
    /// high-water mark small instead of materializing one row per
    /// transaction.
    #[test]
    fn binary_search_arena_stays_live_bounded() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        // s2's txn i reads s1's txn i: each writer clock is released as
        // soon as its single reader is processed.
        for k in 0..256u64 {
            b.begin(s1);
            b.write(s1, k, k + 1);
            b.commit(s1);
            b.begin(s2);
            b.read(s2, k, k + 1);
            b.commit(s2);
        }
        let h = b.finish().unwrap();
        let index = HistoryIndex::new(&h);
        let m = index.num_committed();
        let k = index.num_sessions();

        let mut bs = ClockTable::new();
        let mut g = CommitGraph::new(0);
        saturate_cc_scratch(&index, CcStrategy::BinarySearch, 1, &mut g, &mut bs).unwrap();
        let mut ps = ClockTable::new();
        let mut g2 = CommitGraph::new(0);
        saturate_cc_scratch(&index, CcStrategy::PointerScan, 1, &mut g2, &mut ps).unwrap();

        // Pointer-scan materializes all m rows; binary-search far fewer.
        assert_eq!(ps.rows.len(), m * k);
        assert!(
            bs.rows.len() * 4 < ps.rows.len(),
            "live-bounded rows ({}) should be a fraction of the full table ({})",
            bs.rows.len(),
            ps.rows.len()
        );
    }

    /// Transitive causality through a chain of sessions is caught: a reader
    /// two wr-hops downstream of t_new must not read the value t_new
    /// overwrote (t_old is pinned co-before t_new by t_old -wr-> t_new).
    #[test]
    fn transitive_causality_violation() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let s3 = b.session();
        let s4 = b.session();
        let (x, a, c) = (0, 1, 2);
        b.begin(s1);
        b.write(s1, x, 1); // t_old: x=1
        b.commit(s1);
        b.begin(s2);
        b.read(s2, x, 1); // t_new observes t_old, so t_old -co-> t_new
        b.write(s2, x, 2);
        b.write(s2, a, 1);
        b.commit(s2);
        b.begin(s3);
        b.read(s3, a, 1); // observes t_new
        b.write(s3, c, 1);
        b.commit(s3);
        b.begin(s4);
        b.read(s4, c, 1); // hb-chain: t_new -> s3 -> here
        b.read(s4, x, 1); // stale read of x: CC infers t_new -co-> t_old
        b.commit(s4);
        let h = b.finish().unwrap();
        assert!(!both_strategies_agree(&h));
        // RA can't see the two-hop chain: it accepts this history.
        let index = HistoryIndex::new(&h);
        assert!(check_repeatable_reads(&index).is_empty());
        assert!(saturate_ra(&index).is_acyclic());
    }

    /// If the overwritten value's writer is merely concurrent with t_new
    /// (no wr edge pinning it earlier), the commit order may reorder them
    /// and the stale read is CC-consistent.
    #[test]
    fn concurrent_writers_may_be_reordered() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let s3 = b.session();
        let (x, a) = (0, 1);
        b.begin(s1);
        b.write(s1, x, 1); // t_old, concurrent with t_new
        b.commit(s1);
        b.begin(s2);
        b.write(s2, x, 2); // t_new
        b.write(s2, a, 1);
        b.commit(s2);
        b.begin(s3);
        b.read(s3, a, 1); // observes t_new
        b.read(s3, x, 1); // reads t_old: co = t_new < t_old < ... witnesses
        b.commit(s3);
        let h = b.finish().unwrap();
        assert!(both_strategies_agree(&h));
    }

    /// One-hop visibility is fine under CC when the read is the latest
    /// causally visible write.
    #[test]
    fn latest_visible_writer_is_accepted() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        b.begin(s1);
        b.write(s1, 0, 1);
        b.commit(s1);
        b.begin(s2);
        b.read(s2, 0, 1);
        b.write(s2, 0, 2);
        b.commit(s2);
        b.begin(s1);
        b.read(s1, 0, 2);
        b.commit(s1);
        let h = b.finish().unwrap();
        assert!(both_strategies_agree(&h));
    }

    #[test]
    fn empty_history_is_cc_consistent() {
        let h = HistoryBuilder::new().finish().unwrap();
        assert!(both_strategies_agree(&h));
    }
}
