//! Causal Consistency (Algorithm 3): saturation of the minimal commit
//! relation for the CC axiom in `O(n·k)` time.
//!
//! The CC axiom (Definition 2.8, Figure 3c): if `t3` reads `x` from `t1`,
//! and `t2 ≠ t1` writes `x` with `t2 →(so ∪ wr)+→ t3` (happens-before),
//! then `t2` must commit before `t1`. Only the *session-latest*
//! happens-before writer of `x` per session needs a direct edge — earlier
//! ones are ordered transitively through it (minimality).
//!
//! Happens-before is represented by per-transaction [`VectorClock`]s
//! (`ComputeHB`): entry `s` of `t`'s clock counts the committed
//! transactions of session `s` that happen before `t` (inclusive of `t`
//! itself in its own session), which is exact because happens-before
//! restricted to a session is prefix-closed.
//!
//! Two interchangeable strategies locate the latest visible writer in each
//! session's `Writes_s'[x]` array:
//!
//! * [`CcStrategy::PointerScan`] — Algorithm 3 as written: monotone
//!   pointers per `(session, key)`, re-scanned once per outer session, with
//!   the full clock table materialized up front. `O(n·k)` time,
//!   `O(m·k)` clock memory.
//! * [`CcStrategy::BinarySearch`] — what the released AWDIT tool does
//!   (Section 5): clocks are computed on the fly in one topological pass
//!   and freed once their last reader is processed; writer lookups binary
//!   search the write lists. `O(n·(k + log n))` time, live-clock memory
//!   only.

use crate::graph::{base_commit_graph, base_commit_graph_into, CommitGraph, Cycle, EdgeKind};
use crate::incremental::{EdgeSink, FnvMap};
use crate::index::HistoryIndex;
use crate::parallel;
use crate::types::SessionId;
use crate::vector_clock::VectorClock;

/// Strategy for the CC checker's visible-writer lookups. See the module
/// docs for the trade-offs.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum CcStrategy {
    /// Algorithm 3 verbatim: precomputed clock table + monotone pointer
    /// scans.
    PointerScan,
    /// The released tool's variant: on-the-fly clocks + binary search.
    #[default]
    BinarySearch,
}

impl std::fmt::Display for CcStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CcStrategy::PointerScan => "pointer-scan",
            CcStrategy::BinarySearch => "binary-search",
        })
    }
}

impl std::str::FromStr for CcStrategy {
    type Err = String;

    /// Parses the CLI spelling of a strategy: `pointer-scan` (or `ps`) and
    /// `binary-search` (or `bs`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "pointer-scan" | "pointerscan" | "pointer" | "ps" => Ok(CcStrategy::PointerScan),
            "binary-search" | "binarysearch" | "binary" | "bs" => Ok(CcStrategy::BinarySearch),
            _ => Err(format!(
                "unknown CC strategy `{s}` (expected pointer-scan or binary-search)"
            )),
        }
    }
}

/// Saturates the minimal commit relation for Causal Consistency.
///
/// # Errors
///
/// If `so ∪ wr` itself is cyclic, happens-before is not well defined; the
/// offending cycles (one per strongly connected component) are returned
/// instead.
pub fn saturate_cc(index: &HistoryIndex, strategy: CcStrategy) -> Result<CommitGraph, Vec<Cycle>> {
    saturate_cc_with(index, strategy, 1)
}

/// [`saturate_cc`] on up to `threads` worker threads (`0` = all cores).
///
/// Happens-before clocks are computed in one sequential topological pass;
/// the inference over them is read-only per transaction, so it shards —
/// contiguous chunks of the topological order for
/// [`CcStrategy::BinarySearch`], contiguous session groups for
/// [`CcStrategy::PointerScan`] — with thread-local edge sinks concatenated
/// in chunk order, reproducing the sequential emission bit-for-bit at
/// every thread count.
pub fn saturate_cc_with(
    index: &HistoryIndex,
    strategy: CcStrategy,
    threads: usize,
) -> Result<CommitGraph, Vec<Cycle>> {
    let mut g = CommitGraph::new(0);
    saturate_cc_into(index, strategy, threads, &mut g).map(|()| g)
}

/// [`saturate_cc_with`] into a caller-owned graph arena (reset and
/// refilled; see [`CommitGraph::reset`]) — the [`Engine`](crate::Engine)'s
/// allocation-recycling path.
///
/// # Errors
///
/// As [`saturate_cc`]: if `so ∪ wr` is cyclic the offending cycles are
/// returned and the graph is left holding only the base edges.
pub fn saturate_cc_into(
    index: &HistoryIndex,
    strategy: CcStrategy,
    threads: usize,
    g: &mut CommitGraph,
) -> Result<(), Vec<Cycle>> {
    base_commit_graph_into(index, g);
    let topo = match g.topological_order() {
        Some(t) => t,
        None => return Err(g.find_cycles(usize::MAX)),
    };
    let threads = parallel::effective_threads(threads);
    if threads <= 1 || index.num_committed() < parallel::SEQUENTIAL_CUTOFF {
        match strategy {
            CcStrategy::PointerScan => pointer_scan(index, g, &topo),
            CcStrategy::BinarySearch => binary_search(index, g, &topo),
        }
        return Ok(());
    }
    match strategy {
        CcStrategy::PointerScan => pointer_scan_par(index, g, &topo, threads),
        CcStrategy::BinarySearch => binary_search_par(index, g, &topo, threads),
    }
    Ok(())
}

/// `ComputeHB`: the full clock table, one vector clock per committed
/// transaction, computed along a topological order of `so ∪ wr`.
///
/// Entry `s` of `clock[t]` is the number of committed transactions of
/// session `s` that happen before `t` — counting `t` itself for its own
/// session, i.e. the *inclusive* clock.
pub fn compute_hb(index: &HistoryIndex, g: &CommitGraph, topo: &[u32]) -> Vec<VectorClock> {
    let k = index.num_sessions();
    let m = index.num_committed();
    let mut clocks: Vec<VectorClock> = vec![VectorClock::new(0); m];
    let mut session_clock: Vec<VectorClock> = vec![VectorClock::new(k); k];

    // Writers joined per reader: collect wr predecessors from the base
    // graph's *successor* lists by a reverse pass? Cheaper: readers pull
    // from `ext_reads`, deduplicating writers on the fly.
    let mut writer_stamp: Vec<u32> = vec![u32::MAX; m];
    for &t in topo {
        let s = index.session_of(t) as usize;
        let mut c = session_clock[s].clone();
        for r in index.ext_reads(t) {
            if writer_stamp[r.writer as usize] != t {
                writer_stamp[r.writer as usize] = t;
                c.join(&clocks[r.writer as usize]);
            }
        }
        c.advance(s, index.committed_pos(t) + 1);
        session_clock[s] = c.clone();
        clocks[t as usize] = c;
    }
    let _ = g; // the base graph fixes the topological order's domain
    clocks
}

/// Algorithm 3's per-session loop with monotone `lastWrite` pointers:
/// processes all of session `s`'s committed transactions, emitting into
/// `g`. The pointer table is private to the session (the monotonicity that
/// makes the scans amortize holds only while `t3` advances within one
/// session), so distinct sessions can run on distinct workers.
fn pointer_scan_session<G: EdgeSink>(
    index: &HistoryIndex,
    clocks: &[VectorClock],
    s: u32,
    g: &mut G,
) {
    // Pointers into Writes_s'[x], keyed by (s', key).
    let mut ptr: FnvMap<(u32, crate::types::Key), usize> = FnvMap::default();
    for &t3 in index.session_committed(SessionId(s)) {
        let clock = &clocks[t3 as usize];
        for &(x, t1) in index.read_pairs(t3) {
            // Only sessions that write x can contribute a last writer.
            for (s_prime, writes) in index.key_writes(x) {
                // Strict happens-before: own session excludes t3 itself
                // (its inclusive entry is pos+1).
                let bound = if s_prime == s {
                    clock.get(s_prime as usize).saturating_sub(1)
                } else {
                    clock.get(s_prime as usize)
                };
                let p = ptr.entry((s_prime, x)).or_insert(0);
                while *p < writes.len() && index.committed_pos(writes[*p]) < bound {
                    *p += 1;
                }
                if *p > 0 {
                    let t2 = writes[*p - 1];
                    if t2 != t1 {
                        g.add_edge(t2, t1, EdgeKind::Inferred(x));
                    }
                }
            }
        }
    }
}

/// Algorithm 3's main loop with monotone `lastWrite` pointers.
fn pointer_scan(index: &HistoryIndex, g: &mut CommitGraph, topo: &[u32]) {
    let clocks = compute_hb(index, g, topo);
    for s in 0..index.num_sessions() as u32 {
        pointer_scan_session(index, &clocks, s, g);
    }
}

/// Sharded [`pointer_scan`]: contiguous session groups (weighted by their
/// transaction counts) across workers, merged in group order.
fn pointer_scan_par(index: &HistoryIndex, g: &mut CommitGraph, topo: &[u32], threads: usize) {
    let clocks = compute_hb(index, g, topo);
    let groups = parallel::session_groups(index, threads * 2);
    let sinks = parallel::map_shards(threads, &groups, |_, sessions| {
        let mut sink = parallel::EdgeBuf::new();
        for s in sessions.clone() {
            pointer_scan_session(index, &clocks, s as u32, &mut sink);
        }
        sink
    });
    parallel::merge_sinks(g, sinks);
}

/// Sharded `BinarySearch` strategy: the clock table is materialized by the
/// sequential [`compute_hb`] pass, then contiguous chunks of the
/// topological order run [`infer_cc_edges`] on workers, merged in chunk
/// order (identical emission to the sequential on-the-fly variant, which
/// also processes transactions in topological order).
fn binary_search_par(index: &HistoryIndex, g: &mut CommitGraph, topo: &[u32], threads: usize) {
    let clocks = compute_hb(index, g, topo);
    let shards = parallel::split_even(topo.len(), threads * 4);
    let sinks = parallel::map_shards(threads, &shards, |_, range| {
        let mut sink = parallel::EdgeBuf::new();
        for &t3 in &topo[range.start as usize..range.end as usize] {
            crate::incremental::infer_cc_edges(index, t3, &clocks[t3 as usize], &mut sink);
        }
        sink
    });
    parallel::merge_sinks(g, sinks);
}

/// The released tool's variant: clocks on the fly along the topological
/// order, freed after their last reader; binary search for visible writers.
fn binary_search(index: &HistoryIndex, g: &mut CommitGraph, topo: &[u32]) {
    let k = index.num_sessions();
    let m = index.num_committed();

    // Number of distinct reader transactions per writer, so clocks can be
    // freed eagerly.
    let mut readers_left: Vec<u32> = vec![0; m];
    let mut writer_stamp: Vec<u32> = vec![u32::MAX; m];
    for t in 0..m as u32 {
        for r in index.ext_reads(t) {
            if writer_stamp[r.writer as usize] != t {
                writer_stamp[r.writer as usize] = t;
                readers_left[r.writer as usize] += 1;
            }
        }
    }

    let mut clocks: Vec<Option<VectorClock>> = vec![None; m];
    let mut session_clock: Vec<VectorClock> = vec![VectorClock::new(k); k];
    let mut writer_stamp2: Vec<u32> = vec![u32::MAX; m];

    for &t3 in topo {
        let s = index.session_of(t3) as usize;
        let mut c = std::mem::replace(&mut session_clock[s], VectorClock::new(0));
        for r in index.ext_reads(t3) {
            let w = r.writer as usize;
            if writer_stamp2[w] != t3 {
                writer_stamp2[w] = t3;
                c.join(clocks[w].as_ref().expect("writer processed before reader"));
                readers_left[w] -= 1;
                if readers_left[w] == 0 {
                    clocks[w] = None;
                }
            }
        }
        c.advance(s, index.committed_pos(t3) + 1);

        // Inference for t3, immediately while its clock is at hand — the
        // shared per-transaction body also driven by the streaming checker.
        crate::incremental::infer_cc_edges(index, t3, &c, g);

        if readers_left[t3 as usize] > 0 {
            clocks[t3 as usize] = Some(c.clone());
        }
        session_clock[s] = c;
    }
}

/// Convenience wrapper: does the history's `so ∪ wr` relation contain a
/// cycle? (Required to be acyclic by every isolation level.)
pub fn causality_cycles(index: &HistoryIndex) -> Vec<Cycle> {
    let mut g = base_commit_graph(index);
    g.freeze();
    if g.topological_order().is_some() {
        Vec::new()
    } else {
        g.find_cycles(usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{History, HistoryBuilder};
    use crate::ra::{check_repeatable_reads, saturate_ra};

    fn cc_consistent(h: &History, strategy: CcStrategy) -> bool {
        let index = HistoryIndex::new(h);
        match saturate_cc(&index, strategy) {
            Ok(g) => g.is_acyclic(),
            Err(_) => false,
        }
    }

    fn both_strategies_agree(h: &History) -> bool {
        let a = cc_consistent(h, CcStrategy::PointerScan);
        let b = cc_consistent(h, CcStrategy::BinarySearch);
        assert_eq!(a, b, "strategies disagree");
        a
    }

    /// Figure 1b: the motivating CC-inconsistent history.
    #[test]
    fn fig1b_cc_inconsistent() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let s3 = b.session();
        let s4 = b.session();
        let (x, y, z) = (0, 1, 2);
        // s1: t1 = W(x,1); t2 = W(x,2); t3 = W(y,1) R(z,2)
        b.begin(s1);
        b.write(s1, x, 1);
        b.commit(s1);
        b.begin(s1);
        b.write(s1, x, 2);
        b.commit(s1);
        b.begin(s1);
        b.write(s1, y, 1);
        b.read(s1, z, 2);
        b.commit(s1);
        // s2: t4 = W(x,3); t5 = W(z,1)
        b.begin(s2);
        b.write(s2, x, 3);
        b.commit(s2);
        b.begin(s2);
        b.write(s2, z, 1);
        b.commit(s2);
        // s3: t6 = W(x,4) R(z,1) W(z,2)
        b.begin(s3);
        b.write(s3, x, 4);
        b.read(s3, z, 1);
        b.write(s3, z, 2);
        b.commit(s3);
        // s4: t7 = R(x,3) R(y,1)
        b.begin(s4);
        b.read(s4, x, 3);
        b.read(s4, y, 1);
        b.commit(s4);
        let h = b.finish().unwrap();
        assert!(!both_strategies_agree(&h), "Fig. 1b must violate CC");
    }

    /// Figure 4c violates CC: t4 observes t2 (via y written by t3 which
    /// read x=2) but reads the older x=1.
    #[test]
    fn fig4c_cc_inconsistent() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let s3 = b.session();
        let (x, y) = (0, 1);
        b.begin(s1);
        b.write(s1, x, 1); // t1
        b.commit(s1);
        b.begin(s1);
        b.write(s1, x, 2); // t2
        b.commit(s1);
        b.begin(s2);
        b.read(s2, x, 2);
        b.write(s2, y, 3); // t3
        b.commit(s2);
        b.begin(s3);
        b.read(s3, y, 3);
        b.read(s3, x, 1); // t4
        b.commit(s3);
        let h = b.finish().unwrap();
        assert!(!both_strategies_agree(&h));
        // ... while satisfying RA (Example 2.7).
        let index = HistoryIndex::new(&h);
        assert!(check_repeatable_reads(&index).is_empty());
        assert!(saturate_ra(&index).is_acyclic());
    }

    /// Figure 4d satisfies CC (despite being non-serializable).
    #[test]
    fn fig4d_cc_consistent() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let s3 = b.session();
        let x = 0;
        // s1: t1 = W(x,1); t3 = R(x,2)
        // s2: t2 = R(x,1) W(x,2)
        // s3: t4 = R(x,1) W(x,3); t5 = R(x,3)
        b.begin(s1);
        b.write(s1, x, 1); // t1
        b.commit(s1);
        b.begin(s2);
        b.read(s2, x, 1);
        b.write(s2, x, 2); // t2
        b.commit(s2);
        b.begin(s1);
        b.read(s1, x, 2); // t3
        b.commit(s1);
        b.begin(s3);
        b.read(s3, x, 1);
        b.write(s3, x, 3); // t4
        b.commit(s3);
        b.begin(s3);
        b.read(s3, x, 3); // t5
        b.commit(s3);
        let h = b.finish().unwrap();
        assert!(both_strategies_agree(&h));
    }

    #[test]
    fn causality_cycle_is_reported() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        // t1 reads t2's write; t2 reads t1's write: wr cycle.
        b.begin(s1);
        b.write(s1, 0, 1);
        b.read(s1, 1, 2);
        b.commit(s1);
        b.begin(s2);
        b.write(s2, 1, 2);
        b.read(s2, 0, 1);
        b.commit(s2);
        let h = b.finish().unwrap();
        let index = HistoryIndex::new(&h);
        let cycles = causality_cycles(&index);
        assert_eq!(cycles.len(), 1);
        assert!(saturate_cc(&index, CcStrategy::PointerScan).is_err());
        assert!(saturate_cc(&index, CcStrategy::BinarySearch).is_err());
    }

    #[test]
    fn hb_clocks_are_monotone_along_sessions() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        b.begin(s1);
        b.write(s1, 0, 1);
        b.commit(s1);
        b.begin(s2);
        b.read(s2, 0, 1);
        b.commit(s2);
        b.begin(s2);
        b.write(s2, 1, 1);
        b.commit(s2);
        let h = b.finish().unwrap();
        let index = HistoryIndex::new(&h);
        let g = base_commit_graph(&index);
        let topo = g.topological_order().unwrap();
        let clocks = compute_hb(&index, &g, &topo);
        let t_reader = index.dense_id(crate::types::TxnId::new(1, 0));
        let t_next = index.dense_id(crate::types::TxnId::new(1, 1));
        // The reader saw s1's first txn; its session successor inherits it.
        assert_eq!(clocks[t_reader as usize].get(0), 1);
        assert_eq!(clocks[t_next as usize].get(0), 1);
        assert!(clocks[t_reader as usize].le(&clocks[t_next as usize]));
    }

    /// Transitive causality through a chain of sessions is caught: a reader
    /// two wr-hops downstream of t_new must not read the value t_new
    /// overwrote (t_old is pinned co-before t_new by t_old -wr-> t_new).
    #[test]
    fn transitive_causality_violation() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let s3 = b.session();
        let s4 = b.session();
        let (x, a, c) = (0, 1, 2);
        b.begin(s1);
        b.write(s1, x, 1); // t_old: x=1
        b.commit(s1);
        b.begin(s2);
        b.read(s2, x, 1); // t_new observes t_old, so t_old -co-> t_new
        b.write(s2, x, 2);
        b.write(s2, a, 1);
        b.commit(s2);
        b.begin(s3);
        b.read(s3, a, 1); // observes t_new
        b.write(s3, c, 1);
        b.commit(s3);
        b.begin(s4);
        b.read(s4, c, 1); // hb-chain: t_new -> s3 -> here
        b.read(s4, x, 1); // stale read of x: CC infers t_new -co-> t_old
        b.commit(s4);
        let h = b.finish().unwrap();
        assert!(!both_strategies_agree(&h));
        // RA can't see the two-hop chain: it accepts this history.
        let index = HistoryIndex::new(&h);
        assert!(check_repeatable_reads(&index).is_empty());
        assert!(saturate_ra(&index).is_acyclic());
    }

    /// If the overwritten value's writer is merely concurrent with t_new
    /// (no wr edge pinning it earlier), the commit order may reorder them
    /// and the stale read is CC-consistent.
    #[test]
    fn concurrent_writers_may_be_reordered() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let s3 = b.session();
        let (x, a) = (0, 1);
        b.begin(s1);
        b.write(s1, x, 1); // t_old, concurrent with t_new
        b.commit(s1);
        b.begin(s2);
        b.write(s2, x, 2); // t_new
        b.write(s2, a, 1);
        b.commit(s2);
        b.begin(s3);
        b.read(s3, a, 1); // observes t_new
        b.read(s3, x, 1); // reads t_old: co = t_new < t_old < ... witnesses
        b.commit(s3);
        let h = b.finish().unwrap();
        assert!(both_strategies_agree(&h));
    }

    /// One-hop visibility is fine under CC when the read is the latest
    /// causally visible write.
    #[test]
    fn latest_visible_writer_is_accepted() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        b.begin(s1);
        b.write(s1, 0, 1);
        b.commit(s1);
        b.begin(s2);
        b.read(s2, 0, 1);
        b.write(s2, 0, 2);
        b.commit(s2);
        b.begin(s1);
        b.read(s1, 0, 2);
        b.commit(s1);
        let h = b.finish().unwrap();
        assert!(both_strategies_agree(&h));
    }

    #[test]
    fn empty_history_is_cc_consistent() {
        let h = HistoryBuilder::new().finish().unwrap();
        assert!(both_strategies_agree(&h));
    }
}
