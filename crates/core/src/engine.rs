//! The reusable checker engine: one configured handle, many checks.
//!
//! The free functions ([`check`](crate::check),
//! [`check_with`](crate::check_with), …) are convenient but stateless —
//! every call re-allocates the history index, the commit graph, and all
//! scratch buffers from cold. Embedded testers check *fleets* of
//! histories (directed test generation, CI sweeps, long-running
//! monitoring services), where that setup cost is pure overhead. An
//! [`Engine`] is the amortized form:
//!
//! * **One config.** [`EngineConfig`] unifies the batch
//!   ([`CheckOptions`]) and streaming
//!   (`awdit_stream::StreamConfig`) knobs — isolation level,
//!   [`CcStrategy`], worker threads, witness budget, commit-order
//!   production, pruning — so batch checks, batched fleets, and online
//!   monitors built from the same engine agree on their tuning.
//! * **Recycled arenas.** The handle owns a [`HistoryIndex`] and a
//!   [`CommitGraph`] arena; `engine.check(&history)` rebuilds them in
//!   place ([`HistoryIndex::rebuild`], [`CommitGraph::reset`]), so a
//!   second check of a same-shape history performs **zero arena growth**
//!   — observable via [`EngineStats::arena_growths`].
//! * **Batching.** [`Engine::check_many`] runs independent histories
//!   through one fork–join pool (one history per worker at a time,
//!   work-stealing across them, per-worker scratch arenas), returning
//!   outcomes in input order, bit-identical to per-history
//!   [`check_with`](crate::check_with) at every thread count.
//! * **Pluggable edges.** [`HistorySource`] abstracts where histories
//!   come from (files, directories, NDJSON streams in `awdit-formats`;
//!   simulator fleets in `awdit-simdb`); `awdit_stream::EngineExt::watch`
//!   builds an online checker from the same engine config.
//!
//! ```
//! use awdit_core::{Engine, HistoryBuilder, IsolationLevel};
//!
//! # fn main() -> Result<(), awdit_core::BuildError> {
//! let mut engine = Engine::builder()
//!     .level(IsolationLevel::Causal)
//!     .threads(1)
//!     .build();
//! let mut b = HistoryBuilder::new();
//! let s = b.session();
//! b.begin(s);
//! b.write(s, 1, 10);
//! b.commit(s);
//! let history = b.finish()?;
//! assert!(engine.check(&history).is_consistent());
//! // A second check recycles every arena the first one grew.
//! assert!(engine.check(&history).is_consistent());
//! assert_eq!(engine.stats().arena_growths, 1);
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use crate::cc::{saturate_cc_pool, CcStrategy, ClockTable};
use crate::checker::{CheckOptions, CheckStats, Outcome};
use crate::graph::CommitGraph;
use crate::history::{replay_history, BuildError, History, HistoryBuilder, HistorySink};
use crate::index::HistoryIndex;
use crate::isolation::IsolationLevel;
use crate::linearize::commit_order_from_graph;
use crate::parallel;
use crate::ra::{check_ra_single_session, check_repeatable_reads, saturate_ra_into};
use crate::rc::saturate_rc_into;
use crate::read_consistency::check_read_consistency;
use crate::types::{SessionId, TxnId};
use crate::witness::{ReadConsistencyViolation, Violation, WitnessCycle};
use awdit_obs::Obs;

/// The unified tuning knobs shared by every engine entry point — batch
/// checks, batched fleets ([`Engine::check_many`]), and online monitors
/// (`awdit_stream::EngineExt::watch`). The batch-only subset round-trips
/// to [`CheckOptions`] via [`check_options`](Self::check_options) /
/// [`from_options`](Self::from_options).
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct EngineConfig {
    /// The isolation level checked by [`Engine::check`] and
    /// [`Engine::check_many`] (explicit-level entry points ignore it).
    pub level: IsolationLevel,
    /// Which CC implementation variant to use (ignored for RC/RA).
    pub cc_strategy: CcStrategy,
    /// Produce a witnessing commit order on consistent histories
    /// (an extra `O(n)` topological sort).
    pub want_commit_order: bool,
    /// Maximum number of commit-order/causality cycles extracted per
    /// check (and, for online monitors, reported per stream).
    pub max_cycles: usize,
    /// Worker threads (`1` = sequential, `0` = all cores). Shared by the
    /// sharded saturators, the [`check_many`](Engine::check_many)
    /// fork–join pool, and (via [`HistorySource::set_threads`]) sharded
    /// source parsing; outcomes are bit-identical for every value.
    pub threads: usize,
    /// Overlap ingest with checking in
    /// [`check_source`](Engine::check_source)'s streaming path: history
    /// `N + 1` parses on the calling thread while history `N` is checked
    /// on one worker, double-buffering the ingest arenas. Outcomes are
    /// bit-identical either way; off trades the overlap win for strictly
    /// single-threaded execution.
    pub overlap: bool,
    /// Online monitors only: whether watermark pruning runs (off = exact
    /// batch agreement, memory grows with the stream).
    pub prune: bool,
    /// Online monitors only: processed transactions between pruning
    /// sweeps.
    pub prune_interval: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            level: IsolationLevel::Causal,
            cc_strategy: CcStrategy::default(),
            want_commit_order: false,
            max_cycles: 16,
            threads: 1,
            overlap: true,
            prune: true,
            prune_interval: 256,
        }
    }
}

impl EngineConfig {
    /// The batch-check subset, for APIs still speaking [`CheckOptions`].
    pub fn check_options(&self) -> CheckOptions {
        CheckOptions {
            cc_strategy: self.cc_strategy,
            want_commit_order: self.want_commit_order,
            max_cycles: self.max_cycles,
            threads: self.threads,
        }
    }

    /// Lifts [`CheckOptions`] into a full config (streaming knobs take
    /// their defaults) — how the legacy free functions build their
    /// per-call engine.
    pub fn from_options(opts: &CheckOptions) -> Self {
        EngineConfig {
            cc_strategy: opts.cc_strategy,
            want_commit_order: opts.want_commit_order,
            max_cycles: opts.max_cycles,
            threads: opts.threads,
            ..EngineConfig::default()
        }
    }
}

impl From<CheckOptions> for EngineConfig {
    fn from(opts: CheckOptions) -> Self {
        EngineConfig::from_options(&opts)
    }
}

/// Builds an [`Engine`] fluently.
///
/// ```
/// use awdit_core::{CcStrategy, EngineBuilder, IsolationLevel};
///
/// let engine = EngineBuilder::new()
///     .level(IsolationLevel::ReadAtomic)
///     .cc_strategy(CcStrategy::PointerScan)
///     .threads(0) // all cores
///     .build();
/// assert_eq!(engine.config().level, IsolationLevel::ReadAtomic);
/// ```
#[derive(Clone, Debug, Default)]
pub struct EngineBuilder {
    cfg: EngineConfig,
    obs: Obs,
}

impl EngineBuilder {
    /// A builder starting from the default [`EngineConfig`].
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// A builder starting from an explicit config.
    pub fn from_config(cfg: EngineConfig) -> Self {
        EngineBuilder {
            cfg,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle: phase spans, engine metrics, and
    /// arena-growth events flow into it from every check this engine
    /// runs. Defaults to [`Obs::disabled`] (a single branch per phase).
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the isolation level checked by the default entry points.
    pub fn level(mut self, level: IsolationLevel) -> Self {
        self.cfg.level = level;
        self
    }

    /// Sets the CC lookup strategy (ignored for RC/RA).
    pub fn cc_strategy(mut self, strategy: CcStrategy) -> Self {
        self.cfg.cc_strategy = strategy;
        self
    }

    /// Whether consistent checks also produce a witnessing commit order.
    pub fn want_commit_order(mut self, want: bool) -> Self {
        self.cfg.want_commit_order = want;
        self
    }

    /// Caps the number of witness cycles extracted per check.
    pub fn max_cycles(mut self, max: usize) -> Self {
        self.cfg.max_cycles = max;
        self
    }

    /// Sets the worker-thread count (`1` = sequential, `0` = all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Toggles read/check overlap in
    /// [`check_source`](Engine::check_source)'s streaming path.
    pub fn overlap(mut self, overlap: bool) -> Self {
        self.cfg.overlap = overlap;
        self
    }

    /// Online monitors only: toggles watermark pruning.
    pub fn prune(mut self, prune: bool) -> Self {
        self.cfg.prune = prune;
        self
    }

    /// Online monitors only: processed transactions between pruning
    /// sweeps.
    pub fn prune_interval(mut self, interval: u64) -> Self {
        self.cfg.prune_interval = interval;
        self
    }

    /// Finishes into an [`Engine`].
    pub fn build(self) -> Engine {
        let mut engine = Engine::with_config(self.cfg);
        engine.obs = self.obs;
        engine
    }
}

/// Counters describing how an [`Engine`] handle has been used — in
/// particular whether its scratch arenas are actually being recycled.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct EngineStats {
    /// Histories checked through this handle (batch entry points count
    /// every history).
    pub histories: u64,
    /// Per-level checks run (a [`check_all_levels`](Engine::check_all_levels)
    /// call counts three).
    pub checks: u64,
    /// Checks on this handle's own arenas whose footprint **grew**
    /// (reallocated) — covering the index, the commit graph, the CC clock
    /// table, and the streaming-ingest builder/history arenas. The first
    /// check always grows from empty; a subsequent check of a same-shape
    /// history must not — the regression guard for the
    /// allocation-recycling path. Checks run on
    /// [`check_many`](Engine::check_many) worker arenas are not tracked.
    pub arena_growths: u64,
    /// Current heap footprint of the handle's arenas (index + graph +
    /// clock table + ingest), in bytes (capacities, not lengths).
    pub arena_bytes: usize,
    /// The resolved worker-thread count this engine runs with. A config
    /// of `0` ("all cores") is resolved against the machine's available
    /// parallelism when the engine is built, so this is always concrete
    /// (≥ 1) — what `/healthz` and capacity dashboards report.
    pub threads: usize,
}

/// The per-check scratch arenas: a [`HistoryIndex`], a [`CommitGraph`],
/// and the CC happens-before [`ClockTable`], all rebuilt in place check
/// after check.
#[derive(Debug)]
struct Scratch {
    index: HistoryIndex,
    graph: CommitGraph,
    clocks: ClockTable,
}

impl Scratch {
    fn new() -> Self {
        Scratch {
            index: HistoryIndex::empty(),
            graph: CommitGraph::new(0),
            clocks: ClockTable::new(),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.index.heap_bytes() + self.graph.heap_bytes() + self.clocks.heap_bytes()
    }
}

/// A reusable, configured checker handle. See the [module docs](self).
///
/// Besides the per-check scratch arenas, the engine owns a recycled
/// **ingest arena** (a columnar [`HistoryBuilder`] plus the [`History`]
/// it finishes into): the engine itself is a [`HistorySink`], so
/// streaming producers — the format readers in `awdit-formats`, the
/// simulator, any event source — push events straight into it and
/// [`finish_ingest`](Engine::finish_ingest) checks the result without
/// materializing a nested intermediate representation anywhere.
/// [`check_source`](Engine::check_source) drives that loop for a whole
/// [`HistorySource`].
#[derive(Debug)]
pub struct Engine {
    cfg: EngineConfig,
    scratch: Scratch,
    /// Streaming ingest sink, recycled across histories.
    ingest: HistoryBuilder,
    /// The history arena `ingest` finishes into, recycled likewise.
    ingested: History,
    /// Set when a producer bulk-loaded a resolved history straight into
    /// `ingested` via [`HistorySink::load_resolved`]:
    /// [`seal_ingest`](Self::seal_ingest) must then skip the (empty)
    /// builder.
    direct_loaded: bool,
    /// Second double-buffer pair for the overlapped
    /// [`check_source`](Self::check_source) path, idle otherwise.
    spare_ingest: HistoryBuilder,
    /// See `spare_ingest`.
    spare: History,
    /// `ingested`'s heap footprint, cached at seal time — the arena is
    /// temporarily `mem::take`n while a check borrows it, so accounting
    /// must not read `ingested.heap_bytes()` directly.
    ingested_bytes: usize,
    stats: EngineStats,
    /// Observability handle; disabled by default.
    obs: Obs,
    /// The persistent worker pool every parallel stage dispatches on —
    /// created once at build (or shared in via
    /// [`with_config_pool`](Self::with_config_pool)), workers parked
    /// between forks. Width 1 owns no threads at all.
    pool: Arc<parallel::Pool>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with the default [`EngineConfig`].
    pub fn new() -> Self {
        Engine::with_config(EngineConfig::default())
    }

    /// An engine with an explicit config.
    ///
    /// A `threads` knob of `0` ("use all cores") is resolved here, once,
    /// against [`parallel::available_threads`] — every later fork–join
    /// sees the concrete count, and [`stats`](Self::stats) reports it.
    pub fn with_config(cfg: EngineConfig) -> Self {
        let pool = Arc::new(parallel::Pool::new(cfg.threads));
        Engine::with_config_pool(cfg, pool)
    }

    /// [`with_config`](Self::with_config) dispatching on a caller-owned
    /// [`Pool`](parallel::Pool) — how `awdit serve` shares one pool
    /// between its batch engine and every stream checker. The engine's
    /// per-dispatch budget is still `cfg.threads`; the pool's width caps
    /// it.
    pub fn with_config_pool(mut cfg: EngineConfig, pool: Arc<parallel::Pool>) -> Self {
        cfg.threads = parallel::effective_threads(cfg.threads);
        Engine {
            cfg,
            scratch: Scratch::new(),
            ingest: HistoryBuilder::new(),
            ingested: History::default(),
            direct_loaded: false,
            spare_ingest: HistoryBuilder::new(),
            spare: History::default(),
            ingested_bytes: 0,
            stats: EngineStats::default(),
            obs: Obs::disabled(),
            pool,
        }
    }

    /// The engine's worker pool (shareable; see
    /// [`with_config_pool`](Self::with_config_pool)).
    pub fn pool(&self) -> &Arc<parallel::Pool> {
        &self.pool
    }

    /// Starts a fluent [`EngineBuilder`].
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Usage counters, including the arena-growth accounting and the
    /// resolved thread count.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            threads: self.cfg.threads,
            ..self.stats
        }
    }

    /// The engine's observability handle ([`Obs::disabled`] unless one
    /// was attached).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Attaches an observability handle after construction (see
    /// [`EngineBuilder::obs`]). Metric counters record only activity from
    /// this point on; attach before the first check if they should
    /// reconcile with [`stats`](Self::stats) exactly.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Checks one history against the configured level, recycling the
    /// handle's scratch arenas.
    pub fn check(&mut self, history: &History) -> Outcome {
        self.check_level(history, self.cfg.level)
    }

    /// [`check`](Self::check) at an explicit isolation level.
    pub fn check_level(&mut self, history: &History, level: IsolationLevel) -> Outcome {
        let obs = self.obs.clone();
        let _ctx = awdit_obs::set_current(&obs);
        let pool = Arc::clone(&self.pool);
        let out = check_with_scratch(&pool, &self.cfg, &mut self.scratch, history, level);
        self.account(1, 1);
        out
    }

    /// Checks one history against all three levels, weakest first,
    /// building the index — and checking Read Consistency — once.
    pub fn check_all_levels(&mut self, history: &History) -> [Outcome; 3] {
        let obs = self.obs.clone();
        let _ctx = awdit_obs::set_current(&obs);
        let _check = obs.span("check");
        let read_consistency = {
            let _s = obs.span("read_consistency");
            check_read_consistency(history)
        };
        let Scratch {
            index,
            graph,
            clocks,
        } = &mut self.scratch;
        {
            let _s = obs.span("index_rebuild");
            index.rebuild(history);
        }
        let cfg = self.cfg;
        let pool = Arc::clone(&self.pool);
        let out = IsolationLevel::ALL.map(|level| {
            check_prepared_into(&pool, &cfg, index, &read_consistency, level, graph, clocks)
        });
        self.account(1, 3);
        out
    }

    /// Checks many independent histories against the configured level
    /// through one fork–join pool.
    ///
    /// Histories are handed out to workers dynamically (work-stealing),
    /// one whole history per worker at a time; each worker owns its own
    /// scratch arenas, recycled across every history it steals. Outcomes
    /// come back **in input order** and are bit-identical to running
    /// [`check_with`](crate::check_with) on each history separately — at
    /// every thread count, including the sequential `threads <= 1` path
    /// (which reuses the handle's own arenas).
    pub fn check_many<'a, I>(&mut self, histories: I) -> Vec<Outcome>
    where
        I: IntoIterator<Item = &'a History>,
    {
        self.check_many_level(histories, self.cfg.level)
    }

    /// [`check_many`](Self::check_many) at an explicit isolation level.
    pub fn check_many_level<'a, I>(&mut self, histories: I, level: IsolationLevel) -> Vec<Outcome>
    where
        I: IntoIterator<Item = &'a History>,
    {
        let items: Vec<&History> = histories.into_iter().collect();
        let threads = parallel::effective_threads(self.cfg.threads);
        if threads <= 1 || items.len() <= 1 {
            return items
                .into_iter()
                .map(|h| self.check_level(h, level))
                .collect();
        }
        // One fork–join per history: saturation inside a history runs
        // sequentially (outcomes are thread-count-invariant, so this is
        // bit-identical to the handle's own sequential loop), while the
        // pool work-steals across histories.
        let cfg = EngineConfig {
            threads: 1,
            ..self.cfg
        };
        // Install this engine's obs as the thread-current context: the
        // pool captures it and re-installs it inside each worker, so the
        // per-history spans below land on the right handle.
        let obs = self.obs.clone();
        let _ctx = awdit_obs::set_current(&obs);
        let _batch = obs.span("check_many");
        let pool = Arc::clone(&self.pool);
        let outcomes = parallel::map_shards_with(
            &pool,
            threads,
            "check_many",
            &items,
            Scratch::new,
            |scratch, _, h| check_with_scratch(&pool, &cfg, scratch, h, level),
        );
        self.stats.histories += outcomes.len() as u64;
        self.stats.checks += outcomes.len() as u64;
        if let Some(metrics) = obs.metrics() {
            metrics
                .counter("awdit_engine_histories_total")
                .add(outcomes.len() as u64);
            metrics
                .counter("awdit_engine_checks_total")
                .add(outcomes.len() as u64);
        }
        outcomes
    }

    /// Drains a [`HistorySource`] and checks every history it yields,
    /// pairing each outcome with the source-provided name, in source
    /// order.
    ///
    /// With `threads <= 1` this is the **streaming fast path**: each
    /// history's events are pushed straight into the engine's recycled
    /// ingest arenas via [`HistorySource::next_into`] and checked by
    /// [`finish_ingest`](Self::finish_ingest) — no intermediate
    /// materialization, peak memory bounded by the largest single
    /// history's columnar form. With [`EngineConfig::overlap`] on
    /// (default), ingest and checking run concurrently: history `N + 1`
    /// parses on the calling thread while history `N` is checked on one
    /// scoped worker, handing double-buffered arenas back and forth
    /// through a bounded slot — same outcomes, same recycling, ~2×
    /// throughput when parse and check cost are balanced. With more
    /// threads, histories are collected first and run through the
    /// [`check_many`](Self::check_many) pool (and the source is told via
    /// [`HistorySource::set_threads`] so file sources parse sharded).
    ///
    /// # Errors
    ///
    /// Fails fast on the first source error (unreadable file, parse
    /// error, generator failure). On the streaming paths, histories
    /// yielded *before* the error have already been checked (and are
    /// reflected in [`stats`](Self::stats)) but their outcomes are
    /// discarded; the parallel path checks nothing.
    pub fn check_source<S: HistorySource + ?Sized>(
        &mut self,
        source: &mut S,
    ) -> Result<Vec<(String, Outcome)>, SourceError> {
        // Parsers and sharded sources report ingest metrics through the
        // thread-current handle.
        let obs = self.obs.clone();
        let _ctx = awdit_obs::set_current(&obs);
        let threads = parallel::effective_threads(self.cfg.threads);
        source.set_threads(threads);
        if threads > 1 {
            // Sources with a parallel drain (the file sources) parse
            // their inputs through the pool; everything else collects
            // sequentially (each history still parsing sharded via the
            // `set_threads` hint above).
            let sourced = match source.collect_parallel(threads) {
                Some(result) => result?,
                None => collect_source(source)?,
            };
            let outcomes = self.check_many(sourced.iter().map(|s| &s.history));
            return Ok(sourced.into_iter().map(|s| s.name).zip(outcomes).collect());
        }
        if self.cfg.overlap {
            return self.check_source_overlapped(source);
        }
        let mut out = Vec::new();
        loop {
            let next = {
                let _s = self.obs.span("ingest");
                source.next_into(&mut self.ingest)
            };
            match next {
                None => return Ok(out),
                Some(Err(e)) => {
                    // The sink may hold a partial history: discard it.
                    self.ingest.reset();
                    self.direct_loaded = false;
                    return Err(e);
                }
                Some(Ok(name)) => match self.finish_ingest() {
                    Ok(outcome) => out.push((name, outcome)),
                    Err(e) => {
                        return Err(SourceError {
                            origin: name,
                            message: e.to_string(),
                        })
                    }
                },
            }
        }
    }

    /// The overlapped streaming path of [`check_source`](Self::check_source):
    /// the calling thread parses, one scoped worker checks, and the two
    /// double-buffered `(builder, arena)` pairs shuttle between them
    /// through capacity-one [`parallel::HandoffSlot`]s — bounded memory,
    /// no queueing, source order preserved.
    fn check_source_overlapped<S: HistorySource + ?Sized>(
        &mut self,
        source: &mut S,
    ) -> Result<Vec<(String, Outcome)>, SourceError> {
        use std::time::Instant;

        let obs = self.obs.clone();
        let _ctx = awdit_obs::set_current(&obs);
        let started = Instant::now();
        let mut parse_busy = std::time::Duration::ZERO;

        let mut free: Vec<ArenaSink> = vec![
            ArenaSink {
                builder: std::mem::take(&mut self.ingest),
                arena: std::mem::take(&mut self.ingested),
                direct: false,
            },
            ArenaSink {
                builder: std::mem::take(&mut self.spare_ingest),
                arena: std::mem::take(&mut self.spare),
                direct: false,
            },
        ];

        let cfg = self.cfg;
        let pool = Arc::clone(&self.pool);
        let scratch = &mut self.scratch;
        let work: parallel::HandoffSlot<(String, ArenaSink)> = parallel::HandoffSlot::new();
        let done: parallel::HandoffSlot<ArenaSink> = parallel::HandoffSlot::new();

        let (out, check_busy, mut failure) = std::thread::scope(|scope| {
            let worker_obs = obs.clone();
            let (work, done) = (&work, &done);
            let checker = scope.spawn(move || {
                let _ctx = awdit_obs::set_current(&worker_obs);
                let mut out = Vec::new();
                let mut busy = std::time::Duration::ZERO;
                while let Some((name, sink)) = work.recv() {
                    let t = Instant::now();
                    let outcome = check_with_scratch(&pool, &cfg, scratch, &sink.arena, cfg.level);
                    busy += t.elapsed();
                    out.push((name, outcome));
                    if done.send(sink).is_err() {
                        break;
                    }
                }
                (out, busy)
            });

            let mut in_flight = 0usize;
            let mut failure: Option<SourceError> = None;
            loop {
                let mut unit = match free.pop() {
                    Some(unit) => unit,
                    None => match done.recv() {
                        Some(unit) => {
                            in_flight -= 1;
                            unit
                        }
                        None => break,
                    },
                };
                let t = Instant::now();
                let next = {
                    let _s = obs.span("ingest");
                    source.next_into(&mut unit)
                };
                match next {
                    None => {
                        parse_busy += t.elapsed();
                        free.push(unit);
                        break;
                    }
                    Some(Err(e)) => {
                        parse_busy += t.elapsed();
                        unit.discard();
                        free.push(unit);
                        failure = Some(e);
                        break;
                    }
                    Some(Ok(name)) => {
                        let sealed = {
                            let _s = obs.span("ingest_seal");
                            unit.seal()
                        };
                        parse_busy += t.elapsed();
                        match sealed {
                            Ok(()) => {
                                if let Err((_, unit)) = work.send((name, unit)) {
                                    free.push(unit);
                                    break;
                                }
                                in_flight += 1;
                            }
                            Err(e) => {
                                free.push(unit);
                                failure = Some(SourceError {
                                    origin: name,
                                    message: e.to_string(),
                                });
                                break;
                            }
                        }
                    }
                }
            }
            work.close();
            while in_flight > 0 {
                match done.recv() {
                    Some(unit) => {
                        free.push(unit);
                        in_flight -= 1;
                    }
                    None => break,
                }
            }
            let (out, check_busy) = checker.join().expect("overlap checker panicked");
            (out, check_busy, failure)
        });

        // Hand the double-buffer pairs back to their engine slots (order
        // is immaterial: both are interchangeable recycled arenas).
        debug_assert_eq!(free.len(), 2, "an overlap arena pair went missing");
        if let Some(unit) = free.pop() {
            self.ingest = unit.builder;
            self.ingested = unit.arena;
        }
        if let Some(unit) = free.pop() {
            self.spare_ingest = unit.builder;
            self.spare = unit.arena;
        }
        self.ingested_bytes = self.ingested.heap_bytes();
        let checked = out.len() as u64;
        if checked > 0 {
            self.account(checked, checked);
        }
        if let Some(metrics) = obs.metrics() {
            let wall = started.elapsed().as_secs_f64();
            if wall > 0.0 {
                // 1.0 = both threads busy the whole time (perfect overlap).
                let util = (parse_busy.as_secs_f64() + check_busy.as_secs_f64()) / (2.0 * wall);
                metrics.gauge("awdit_overlap_utilization").set(util);
            }
        }
        match failure.take() {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Finishes the history streamed in through the engine's
    /// [`HistorySink`] methods and checks it at the configured level,
    /// recycling the ingest *and* check arenas. The finished history
    /// stays available via [`ingested`](Self::ingested) until the next
    /// ingest begins.
    ///
    /// ```
    /// use awdit_core::{Engine, HistorySink};
    ///
    /// # fn main() -> Result<(), awdit_core::BuildError> {
    /// let mut engine = Engine::new();
    /// let s = engine.session();
    /// engine.begin(s);
    /// engine.write(s, 1, 10);
    /// engine.commit(s);
    /// assert!(engine.finish_ingest()?.is_consistent());
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] for malformed event sequences; the
    /// ingest arenas are reset either way.
    pub fn finish_ingest(&mut self) -> Result<Outcome, BuildError> {
        self.finish_ingest_level(self.cfg.level)
    }

    /// [`finish_ingest`](Self::finish_ingest) at an explicit isolation
    /// level.
    ///
    /// # Errors
    ///
    /// As [`finish_ingest`](Self::finish_ingest).
    pub fn finish_ingest_level(&mut self, level: IsolationLevel) -> Result<Outcome, BuildError> {
        self.seal_ingest()?;
        let h = std::mem::take(&mut self.ingested);
        let out = self.check_level(&h, level);
        self.ingested = h;
        Ok(out)
    }

    /// [`finish_ingest`](Self::finish_ingest) against all three levels,
    /// building the index once.
    ///
    /// # Errors
    ///
    /// As [`finish_ingest`](Self::finish_ingest).
    pub fn finish_ingest_all_levels(&mut self) -> Result<[Outcome; 3], BuildError> {
        self.seal_ingest()?;
        let h = std::mem::take(&mut self.ingested);
        let out = self.check_all_levels(&h);
        self.ingested = h;
        Ok(out)
    }

    /// Finishes the streamed-in events into the recycled history arena.
    fn seal_ingest(&mut self) -> Result<(), BuildError> {
        let _s = self.obs.span("ingest_seal");
        if std::mem::take(&mut self.direct_loaded) && self.ingest.num_sessions() == 0 {
            // A producer bulk-loaded a resolved history straight into the
            // arena (see `HistorySink::load_resolved`): nothing to build.
            self.ingested_bytes = self.ingested.heap_bytes();
            return Ok(());
        }
        let mut h = std::mem::take(&mut self.ingested);
        let result = self.ingest.finish_into(&mut h);
        self.ingested = h;
        self.ingested_bytes = self.ingested.heap_bytes();
        result
    }

    /// The most recently ingested history (empty until the first
    /// [`finish_ingest`](Self::finish_ingest); valid until the next one).
    pub fn ingested(&self) -> &History {
        &self.ingested
    }

    /// Streams `history` into the engine's ingest arenas and checks it at
    /// the configured level — [`check`](Self::check) without borrowing
    /// the caller's history during the check, and the strongest recycling
    /// form for callers that already hold a `History`.
    pub fn check_replayed(&mut self, history: &History) -> Outcome {
        // Discard any partially-pushed events a caller left in the sink,
        // so the replay checks exactly `history`.
        self.ingest.reset();
        replay_history(history, &mut self.ingest);
        self.finish_ingest()
            .expect("replaying a finished history cannot fail")
    }

    fn account(&mut self, histories: u64, checks: u64) {
        self.stats.histories += histories;
        self.stats.checks += checks;
        let bytes = self.scratch.heap_bytes()
            + self.ingest.heap_bytes()
            + self.ingested_bytes
            + self.spare_ingest.heap_bytes()
            + self.spare.heap_bytes();
        let grew = bytes > self.stats.arena_bytes;
        if grew {
            self.stats.arena_growths += 1;
            self.obs.instant("arena_growth");
        }
        self.stats.arena_bytes = bytes;
        if let Some(metrics) = self.obs.metrics() {
            metrics
                .counter("awdit_engine_histories_total")
                .add(histories);
            metrics.counter("awdit_engine_checks_total").add(checks);
            if grew {
                metrics.counter("awdit_engine_arena_growths_total").inc();
            }
            metrics.gauge("awdit_engine_arena_bytes").set(bytes as f64);
        }
    }
}

/// The engine is itself a [`HistorySink`]: producers push history events
/// straight into its recycled ingest arenas, then
/// [`finish_ingest`](Engine::finish_ingest) checks the result — the
/// zero-materialization ingest path of
/// [`check_source`](Engine::check_source).
impl HistorySink for Engine {
    fn session(&mut self) -> SessionId {
        self.ingest.session()
    }
    fn num_sessions(&self) -> usize {
        self.ingest.num_sessions()
    }
    fn begin(&mut self, session: SessionId) {
        self.ingest.begin(session);
    }
    fn write(&mut self, session: SessionId, key: u64, value: u64) {
        self.ingest.write(session, key, value);
    }
    fn read(&mut self, session: SessionId, key: u64, value: u64) {
        self.ingest.read(session, key, value);
    }
    fn commit(&mut self, session: SessionId) {
        self.ingest.commit(session);
    }
    fn abort(&mut self, session: SessionId) {
        self.ingest.abort(session);
    }
    fn load_resolved(&mut self) -> Option<&mut History> {
        // Binary loaders deposit a fully resolved history straight into
        // the recycled arena, skipping the builder's event replay and
        // read-resolution pass entirely.
        self.ingest.reset();
        self.direct_loaded = true;
        Some(&mut self.ingested)
    }
}

/// One half of the overlapped ingest double-buffer: a recycled
/// [`HistoryBuilder`] for streamed events plus the [`History`] arena it
/// seals into (or that a binary loader fills directly via
/// [`HistorySink::load_resolved`]).
#[derive(Debug)]
struct ArenaSink {
    builder: HistoryBuilder,
    arena: History,
    direct: bool,
}

impl ArenaSink {
    /// Finishes the streamed events into the arena (a no-op after a
    /// direct bulk load).
    fn seal(&mut self) -> Result<(), BuildError> {
        if std::mem::take(&mut self.direct) && self.builder.num_sessions() == 0 {
            return Ok(());
        }
        let mut h = std::mem::take(&mut self.arena);
        let result = self.builder.finish_into(&mut h);
        self.arena = h;
        result
    }

    /// Drops a partial ingest after a source error.
    fn discard(&mut self) {
        self.builder.reset();
        self.direct = false;
    }
}

impl HistorySink for ArenaSink {
    fn session(&mut self) -> SessionId {
        self.builder.session()
    }
    fn num_sessions(&self) -> usize {
        self.builder.num_sessions()
    }
    fn begin(&mut self, session: SessionId) {
        self.builder.begin(session);
    }
    fn write(&mut self, session: SessionId, key: u64, value: u64) {
        self.builder.write(session, key, value);
    }
    fn read(&mut self, session: SessionId, key: u64, value: u64) {
        self.builder.read(session, key, value);
    }
    fn commit(&mut self, session: SessionId) {
        self.builder.commit(session);
    }
    fn abort(&mut self, session: SessionId) {
        self.builder.abort(session);
    }
    fn load_resolved(&mut self) -> Option<&mut History> {
        self.builder.reset();
        self.direct = true;
        Some(&mut self.arena)
    }
}

/// One full check — Read Consistency, index rebuild, per-level
/// saturation — against an explicit scratch-arena set, with phase spans
/// flowing to the **thread-current** obs handle: the shared body of
/// [`Engine::check_level`], the [`check_many`](Engine::check_many)
/// workers, and the overlapped [`check_source`](Engine::check_source)
/// checker thread.
fn check_with_scratch(
    pool: &parallel::Pool,
    cfg: &EngineConfig,
    scratch: &mut Scratch,
    history: &History,
    level: IsolationLevel,
) -> Outcome {
    let obs = awdit_obs::current();
    let _check = obs.span("check");
    let read_consistency = {
        let _s = obs.span("read_consistency");
        check_read_consistency(history)
    };
    let Scratch {
        index,
        graph,
        clocks,
    } = scratch;
    {
        let _s = obs.span("index_rebuild");
        index.rebuild(history);
    }
    check_prepared_into(pool, cfg, index, &read_consistency, level, graph, clocks)
}

/// The per-level check over a pre-built index and pre-computed Read
/// Consistency violations, saturating into the caller's graph arena —
/// the single code path behind every engine entry point *and* the legacy
/// free functions.
#[allow(clippy::too_many_arguments)] // the one shared body behind every entry point
fn check_prepared_into(
    pool: &parallel::Pool,
    cfg: &EngineConfig,
    index: &HistoryIndex,
    read_consistency: &[ReadConsistencyViolation],
    level: IsolationLevel,
    graph: &mut CommitGraph,
    clocks: &mut ClockTable,
) -> Outcome {
    // Runs on engine threads *and* pool workers, so the handle comes from
    // the thread-current context rather than a parameter.
    let obs = awdit_obs::current();
    let mut violations: Vec<Violation> = read_consistency
        .iter()
        .map(|v| Violation::ReadConsistency(*v))
        .collect();

    let mut stats = CheckStats {
        committed_txns: index.num_committed(),
        ..CheckStats::default()
    };
    let mut commit_order = None;

    match level {
        IsolationLevel::ReadCommitted => {
            {
                let _s = obs.span("saturate_rc");
                saturate_rc_into(pool, index, cfg.threads, graph);
            }
            finish_graph(
                pool,
                index,
                graph,
                level,
                cfg,
                &mut violations,
                &mut commit_order,
                &mut stats,
            );
        }
        IsolationLevel::ReadAtomic => {
            if index.num_sessions() <= 1 {
                // Theorem 1.6: linear-time single-session special case.
                let vs = check_ra_single_session(index);
                let ok = vs.is_empty();
                violations.extend(vs);
                if ok && cfg.want_commit_order {
                    // With one session the commit order is the session order.
                    commit_order = Some(index.txn_ids().to_vec());
                }
            } else {
                let rr = check_repeatable_reads(index);
                if rr.is_empty() {
                    {
                        let _s = obs.span("saturate_ra");
                        saturate_ra_into(pool, index, cfg.threads, graph);
                    }
                    finish_graph(
                        pool,
                        index,
                        graph,
                        level,
                        cfg,
                        &mut violations,
                        &mut commit_order,
                        &mut stats,
                    );
                } else {
                    violations.extend(rr);
                }
            }
        }
        IsolationLevel::Causal => {
            let sat = {
                let _s = obs.span("saturate_cc");
                saturate_cc_pool(pool, index, cfg.cc_strategy, cfg.threads, graph, clocks)
            };
            match sat {
                Ok(()) => finish_graph(
                    pool,
                    index,
                    graph,
                    level,
                    cfg,
                    &mut violations,
                    &mut commit_order,
                    &mut stats,
                ),
                Err(cycles) => {
                    for c in cycles.iter().take(cfg.max_cycles) {
                        violations.push(Violation::CausalityCycle(WitnessCycle::from_cycle(
                            c, index,
                        )));
                    }
                }
            }
        }
    }

    Outcome::from_parts(level, violations, commit_order, stats)
}

#[allow(clippy::too_many_arguments)] // one-caller helper of check_prepared_into
fn finish_graph(
    pool: &parallel::Pool,
    index: &HistoryIndex,
    g: &mut CommitGraph,
    level: IsolationLevel,
    cfg: &EngineConfig,
    violations: &mut Vec<Violation>,
    commit_order: &mut Option<Vec<TxnId>>,
    stats: &mut CheckStats,
) {
    let obs = awdit_obs::current();
    {
        // The analysis phases traverse edges repeatedly: repack into CSR.
        let _s = obs.span("graph_freeze");
        g.freeze();
    }
    stats.graph_edges = g.num_edges();
    // Tallied by `CommitGraph::add_edge` as saturation emitted them — no
    // `O(m·deg)` post-hoc scan.
    stats.inferred_edges = g.num_inferred_edges();
    let cycles = {
        let _s = obs.span("cycle_extraction");
        g.find_cycles_pool(pool, cfg.max_cycles, cfg.threads)
    };
    if cycles.is_empty() {
        if cfg.want_commit_order {
            let _s = obs.span("commit_order");
            *commit_order = commit_order_from_graph(index, g);
        }
    } else {
        for c in &cycles {
            violations.push(Violation::CommitOrderCycle {
                level,
                cycle: WitnessCycle::from_cycle(c, index),
            });
        }
    }
}

/// A history paired with a human-meaningful origin (file path, stream
/// name, generator seed), as yielded by a [`HistorySource`].
#[derive(Clone, Debug)]
pub struct SourcedHistory {
    /// Where the history came from — file reports key on this.
    pub name: String,
    /// The history itself.
    pub history: History,
}

/// A failure while producing histories: an unreadable file, a parse
/// error, a generator fault. Carries the origin so batch reports can
/// point at the offending input.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SourceError {
    /// The input that failed (file path, stream name, seed).
    pub origin: String,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.origin, self.message)
    }
}

impl std::error::Error for SourceError {}

/// Anything that yields named histories for batch checking: files, whole
/// directories, NDJSON event streams (`awdit-formats`), simulator fleets
/// (`awdit-simdb`), or any in-memory iterator (via the blanket impl).
pub trait HistorySource {
    /// The next history, `None` when exhausted, `Err` on a bad input.
    fn next_history(&mut self) -> Option<Result<SourcedHistory, SourceError>>;

    /// Streams the next history's events into `sink` instead of
    /// materializing a [`History`], returning the history's name —
    /// the allocation-free edge of [`Engine::check_source`].
    ///
    /// The default implementation materializes via
    /// [`next_history`](Self::next_history) and replays; streaming
    /// sources (the file readers in `awdit-formats`, the simulator
    /// fleet) override it to push events as they are produced. On `Err`,
    /// the sink may hold a partial event sequence — the caller must
    /// discard it (e.g. [`HistoryBuilder::reset`]).
    ///
    /// [`HistoryBuilder::reset`]: crate::HistoryBuilder::reset
    fn next_into(&mut self, sink: &mut dyn HistorySink) -> Option<Result<String, SourceError>> {
        match self.next_history()? {
            Ok(s) => {
                replay_history(&s.history, sink);
                Some(Ok(s.name))
            }
            Err(e) => Some(Err(e)),
        }
    }

    /// Hints how many parser threads the source may use per history
    /// (`Engine::check_source` passes its resolved thread count). Sources
    /// that can parse sharded (the file sources in `awdit-formats`)
    /// honor it; the default ignores it.
    fn set_threads(&mut self, _threads: usize) {}

    /// Drains every remaining history at once, parsing inputs **in
    /// parallel** where the source supports it. `None` (the default)
    /// means the source has no parallel drain — callers fall back to the
    /// sequential [`collect_source`].
    ///
    /// Implementations must match the sequential drain exactly: histories
    /// in input order, bit-identical contents at every thread count, and
    /// on failure the error the sequential drain would have hit *first*
    /// (even if a later input also failed, or failed sooner in wall
    /// time). The file sources in `awdit-formats` implement this by
    /// splitting the thread budget between file-level work-stealing and
    /// intra-file sharded parsing, so a fleet of a few huge files and a
    /// pile of small ones both saturate the pool.
    fn collect_parallel(
        &mut self,
        _threads: usize,
    ) -> Option<Result<Vec<SourcedHistory>, SourceError>> {
        None
    }
}

/// Every iterator of `Result<SourcedHistory, SourceError>` is a source —
/// the zero-cost adapter for in-memory fleets.
impl<I> HistorySource for I
where
    I: Iterator<Item = Result<SourcedHistory, SourceError>>,
{
    fn next_history(&mut self) -> Option<Result<SourcedHistory, SourceError>> {
        self.next()
    }
}

/// Drains a source into a vector, failing fast on the first error.
///
/// # Errors
///
/// Propagates the first [`SourceError`] the source yields.
pub fn collect_source<S: HistorySource + ?Sized>(
    source: &mut S,
) -> Result<Vec<SourcedHistory>, SourceError> {
    let mut out = Vec::new();
    while let Some(item) = source.next_history() {
        out.push(item?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Verdict;
    use crate::history::HistoryBuilder;

    fn two_session_history(keys: u64) -> History {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        for k in 0..keys {
            b.begin(s0);
            b.write(s0, k, k + 1);
            b.commit(s0);
            b.begin(s1);
            b.read(s1, k, k + 1);
            b.commit(s1);
        }
        b.finish().unwrap()
    }

    #[test]
    fn builder_sets_every_knob() {
        let e = Engine::builder()
            .level(IsolationLevel::ReadCommitted)
            .cc_strategy(CcStrategy::PointerScan)
            .want_commit_order(true)
            .max_cycles(3)
            .threads(2)
            .prune(false)
            .prune_interval(17)
            .build();
        let cfg = e.config();
        assert_eq!(cfg.level, IsolationLevel::ReadCommitted);
        assert_eq!(cfg.cc_strategy, CcStrategy::PointerScan);
        assert!(cfg.want_commit_order);
        assert_eq!(cfg.max_cycles, 3);
        assert_eq!(cfg.threads, 2);
        assert!(!cfg.prune);
        assert_eq!(cfg.prune_interval, 17);
    }

    #[test]
    fn config_round_trips_check_options() {
        let opts = CheckOptions {
            cc_strategy: CcStrategy::PointerScan,
            want_commit_order: true,
            max_cycles: 5,
            threads: 4,
        };
        let cfg = EngineConfig::from_options(&opts);
        let back = cfg.check_options();
        assert_eq!(back.cc_strategy, opts.cc_strategy);
        assert_eq!(back.want_commit_order, opts.want_commit_order);
        assert_eq!(back.max_cycles, opts.max_cycles);
        assert_eq!(back.threads, opts.threads);
    }

    #[test]
    fn repeated_checks_recycle_arenas() {
        let h = two_session_history(32);
        let mut e = Engine::new();
        assert!(e.check(&h).is_consistent());
        let after_first = e.stats();
        assert_eq!(after_first.arena_growths, 1);
        assert!(after_first.arena_bytes > 0);
        for _ in 0..4 {
            assert!(e.check(&h).is_consistent());
        }
        let after = e.stats();
        assert_eq!(after.arena_growths, 1, "same-shape checks must not grow");
        assert_eq!(after.arena_bytes, after_first.arena_bytes);
        assert_eq!(after.histories, 5);
        assert_eq!(after.checks, 5);
    }

    #[test]
    fn engine_matches_free_functions() {
        let h = two_session_history(8);
        let mut e = Engine::new();
        for level in IsolationLevel::ALL {
            let a = e.check_level(&h, level);
            let b = crate::checker::check(&h, level);
            assert_eq!(a.verdict(), b.verdict());
            assert_eq!(a.violations(), b.violations());
            assert_eq!(a.stats(), b.stats());
        }
    }

    #[test]
    fn check_many_preserves_input_order() {
        let hs: Vec<History> = (1..5).map(two_session_history).collect();
        let mut e = Engine::builder().threads(4).build();
        let outs = e.check_many(hs.iter());
        assert_eq!(outs.len(), hs.len());
        for (h, o) in hs.iter().zip(&outs) {
            assert_eq!(o.verdict(), Verdict::Consistent);
            // Each input history has 2k committed txns: order is preserved.
            assert_eq!(o.stats().committed_txns, h.num_txns());
        }
        assert_eq!(e.stats().histories, 4);
    }

    #[test]
    fn check_all_levels_counts_three_checks() {
        let h = two_session_history(4);
        let mut e = Engine::new();
        let [rc, ra, cc] = e.check_all_levels(&h);
        assert!(rc.is_consistent() && ra.is_consistent() && cc.is_consistent());
        assert_eq!(e.stats().checks, 3);
        assert_eq!(e.stats().histories, 1);
    }

    #[test]
    fn interleaved_ingest_and_direct_checks_share_stable_accounting() {
        // The ingest arena is `mem::take`n while its check runs; the
        // cached-bytes accounting must keep arena_growths flat when the
        // two entry points alternate on same-shape histories.
        let h = two_session_history(16);
        let mut e = Engine::new();
        replay_history(&h, &mut e);
        e.finish_ingest().unwrap();
        e.check(&h);
        let growths = e.stats().arena_growths;
        for _ in 0..3 {
            replay_history(&h, &mut e);
            e.finish_ingest().unwrap();
            e.check(&h);
        }
        assert_eq!(
            e.stats().arena_growths,
            growths,
            "alternating finish_ingest/check on same shapes must not grow"
        );
    }

    #[test]
    fn iterator_sources_and_collect() {
        let hs: Vec<History> = (1..4).map(two_session_history).collect();
        let mut src = hs.iter().enumerate().map(|(i, h)| {
            Ok(SourcedHistory {
                name: format!("h{i}"),
                history: h.clone(),
            })
        });
        let mut e = Engine::new();
        let named = e.check_source(&mut src).unwrap();
        assert_eq!(named.len(), 3);
        assert_eq!(named[0].0, "h0");
        assert!(named.iter().all(|(_, o)| o.is_consistent()));
    }

    #[test]
    fn source_errors_fail_fast() {
        let mut src = std::iter::once(Err(SourceError {
            origin: "bad.awdit".to_string(),
            message: "nope".to_string(),
        }));
        let mut e = Engine::new();
        let err = e.check_source(&mut src).unwrap_err();
        assert_eq!(err.origin, "bad.awdit");
        assert_eq!(e.stats().histories, 0);
    }
}
