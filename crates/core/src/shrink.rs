//! Violation shrinking: reduce an inconsistent history to a small
//! sub-history that still violates the isolation level.
//!
//! Witness cycles (Section 3.4) point at the offending transactions, but a
//! bug report is most useful when the *whole history* is tiny. This module
//! applies greedy delta debugging: repeatedly drop transactions (and the
//! reads that observed their writes) while the violation persists. The
//! result is *1-minimal* — removing any single remaining transaction makes
//! the violation disappear — though not necessarily globally minimal.

use std::collections::HashSet;

use crate::checker::check;
use crate::history::{History, HistoryBuilder};
use crate::isolation::IsolationLevel;
use crate::op::{Op, ReadSource};
use crate::types::TxnId;

/// Rebuilds `history` without the transactions in `removed`, dropping any
/// read whose writer is removed (so no new thin-air reads appear).
fn without(history: &History, removed: &HashSet<TxnId>) -> History {
    let mut b = HistoryBuilder::new();
    let sessions: Vec<_> = (0..history.num_sessions()).map(|_| b.session()).collect();
    for (tid, txn) in history.txns() {
        if removed.contains(&tid) {
            continue;
        }
        let s = sessions[tid.session as usize];
        b.begin(s);
        for op in txn.ops() {
            match *op {
                Op::Write { key, value } => b.write(s, history.key_name(key), value.0),
                Op::Read { key, value, source } => {
                    let drop_read = matches!(
                        source,
                        ReadSource::External { txn, .. } if removed.contains(&txn)
                    );
                    if !drop_read {
                        b.read(s, history.key_name(key), value.0);
                    }
                }
            }
        }
        if txn.is_committed() {
            b.commit(s);
        } else {
            b.abort(s);
        }
    }
    b.finish()
        .expect("sub-histories of valid histories are valid")
}

/// Shrinks `history` to a 1-minimal sub-history still violating `level`.
///
/// Returns `None` if the history already satisfies the level. The cost is
/// `O(t)` re-checks in the worst case for `t` transactions (each check at
/// the checker's usual complexity), so prefer shrinking moderate histories
/// or pre-slicing around a witness.
///
/// # Examples
///
/// ```
/// use awdit_core::{shrink_history, HistoryBuilder, IsolationLevel};
///
/// # fn main() -> Result<(), awdit_core::BuildError> {
/// let mut b = HistoryBuilder::new();
/// let s0 = b.session();
/// let s1 = b.session();
/// // Noise transaction.
/// b.begin(s0);
/// b.write(s0, 9, 99);
/// b.commit(s0);
/// // Fractured read of (x, y): violates Read Atomic.
/// b.begin(s0);
/// b.write(s0, 0, 1);
/// b.commit(s0);
/// b.begin(s0);
/// b.write(s0, 0, 2);
/// b.write(s0, 1, 2);
/// b.commit(s0);
/// b.begin(s1);
/// b.read(s1, 0, 1);
/// b.read(s1, 1, 2);
/// b.commit(s1);
/// let h = b.finish()?;
/// let small = shrink_history(&h, IsolationLevel::ReadAtomic).expect("violating");
/// assert!(small.num_txns() < h.num_txns());
/// # Ok(())
/// # }
/// ```
pub fn shrink_history(history: &History, level: IsolationLevel) -> Option<History> {
    if check(history, level).is_consistent() {
        return None;
    }
    let mut current = history.clone();
    // Round-based greedy: batch removals first (halving passes), then
    // single-transaction passes until a fixpoint.
    loop {
        let txns: Vec<TxnId> = current.txns().map(|(t, _)| t).collect();
        let mut improved = false;

        // Try dropping chunks, largest first.
        let mut chunk = txns.len() / 2;
        while chunk >= 1 {
            let txns_now: Vec<TxnId> = current.txns().map(|(t, _)| t).collect();
            let mut i = 0;
            while i < txns_now.len() {
                let removed: HashSet<TxnId> = txns_now[i..(i + chunk).min(txns_now.len())]
                    .iter()
                    .copied()
                    .collect();
                if removed.len() == txns_now.len() {
                    i += chunk;
                    continue;
                }
                let candidate = without(&current, &removed);
                if !check(&candidate, level).is_consistent() {
                    current = candidate;
                    improved = true;
                    break; // indices shifted; restart this chunk size
                }
                i += chunk;
            }
            if improved {
                break;
            }
            chunk /= 2;
        }
        if !improved {
            break;
        }
    }
    Some(current)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fractured_with_noise(noise: usize) -> History {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        for i in 0..noise as u64 {
            b.begin(s0);
            b.write(s0, 100 + i, 1000 + i);
            b.commit(s0);
        }
        b.begin(s0);
        b.write(s0, 0, 1);
        b.commit(s0);
        b.begin(s0);
        b.write(s0, 0, 2);
        b.write(s0, 1, 2);
        b.commit(s0);
        b.begin(s1);
        b.read(s1, 0, 1);
        b.read(s1, 1, 2);
        b.commit(s1);
        b.finish().unwrap()
    }

    #[test]
    fn shrinks_to_core_violation() {
        let h = fractured_with_noise(20);
        let small = shrink_history(&h, IsolationLevel::ReadAtomic).unwrap();
        assert!(!check(&small, IsolationLevel::ReadAtomic).is_consistent());
        // The RA violation needs t1 (W x=1), t2 (W x=2, y=2), t3 (reader).
        assert!(small.num_txns() <= 3, "got {} txns", small.num_txns());
    }

    #[test]
    fn shrunk_history_is_one_minimal() {
        let h = fractured_with_noise(8);
        let small = shrink_history(&h, IsolationLevel::ReadAtomic).unwrap();
        let txns: Vec<TxnId> = small.txns().map(|(t, _)| t).collect();
        for t in txns {
            let removed: HashSet<TxnId> = [t].into_iter().collect();
            let candidate = without(&small, &removed);
            assert!(
                check(&candidate, IsolationLevel::ReadAtomic).is_consistent(),
                "removing {t} should fix the violation"
            );
        }
    }

    #[test]
    fn consistent_history_returns_none() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        b.begin(s);
        b.write(s, 0, 1);
        b.commit(s);
        let h = b.finish().unwrap();
        assert!(shrink_history(&h, IsolationLevel::Causal).is_none());
    }

    #[test]
    fn dropping_writer_drops_dependent_reads() {
        let h = fractured_with_noise(0);
        // Remove the second writer: the reader's read of y must go too,
        // leaving a consistent history.
        let removed: HashSet<TxnId> = [TxnId::new(0, 1)].into_iter().collect();
        let reduced = without(&h, &removed);
        assert_eq!(reduced.num_txns(), h.num_txns() - 1);
        assert!(check(&reduced, IsolationLevel::ReadAtomic).is_consistent());
    }
}
