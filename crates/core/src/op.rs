//! Operations: the reads and writes that make up transactions.

use std::fmt;

use crate::types::{Key, TxnId, Value};

/// How a read operation was resolved against the unique-value write map.
///
/// Under the unique-value assumption, a read `R(x, v)` observes the unique
/// write `W(x, v)` — if one exists. The resolution records where that write
/// lives relative to the reading transaction.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ReadSource {
    /// The value was written by a different transaction; this is a `wr` edge
    /// at the operation level. `op` is the writing operation's position in
    /// the writer's program order.
    External {
        /// The writing transaction.
        txn: TxnId,
        /// Position of the write within the writing transaction.
        op: u32,
    },
    /// The value was written by the reading transaction itself (an *internal*
    /// read). If the write is `po`-after the read this is a *future read*.
    Internal {
        /// Position of the write within the same transaction.
        op: u32,
    },
    /// No write anywhere in the history produced this value (a *thin-air*
    /// read, axiom (a) of Read Consistency).
    ThinAir,
}

impl ReadSource {
    /// Returns the writing transaction for an external resolution.
    #[inline]
    pub fn external_txn(self) -> Option<TxnId> {
        match self {
            ReadSource::External { txn, .. } => Some(txn),
            _ => None,
        }
    }
}

/// A single database operation, with reads already resolved to their writers.
///
/// # Examples
///
/// ```
/// use awdit_core::{Op, Key, Value};
/// let w = Op::Write { key: Key(0), value: Value(1) };
/// assert!(w.is_write());
/// assert_eq!(w.key(), Key(0));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// A write `W(key, value)`.
    Write {
        /// The key written.
        key: Key,
        /// The (unique per key) value written.
        value: Value,
    },
    /// A read `R(key, value)`, resolved to its source write.
    Read {
        /// The key read.
        key: Key,
        /// The value observed.
        value: Value,
        /// Where the observed value was written.
        source: ReadSource,
    },
}

impl Op {
    /// The key this operation acts on.
    #[inline]
    pub fn key(&self) -> Key {
        match *self {
            Op::Write { key, .. } | Op::Read { key, .. } => key,
        }
    }

    /// The value written or observed.
    #[inline]
    pub fn value(&self) -> Value {
        match *self {
            Op::Write { value, .. } | Op::Read { value, .. } => value,
        }
    }

    /// Returns `true` for write operations.
    #[inline]
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Write { .. })
    }

    /// Returns `true` for read operations.
    #[inline]
    pub fn is_read(&self) -> bool {
        matches!(self, Op::Read { .. })
    }

    /// For reads, the resolved source of the observed value.
    #[inline]
    pub fn read_source(&self) -> Option<ReadSource> {
        match *self {
            Op::Read { source, .. } => Some(source),
            Op::Write { .. } => None,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::Write { key, value } => write!(f, "W({key}, {value})"),
            Op::Read { key, value, .. } => write!(f, "R({key}, {value})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let w = Op::Write {
            key: Key(1),
            value: Value(10),
        };
        let r = Op::Read {
            key: Key(2),
            value: Value(20),
            source: ReadSource::ThinAir,
        };
        assert!(w.is_write() && !w.is_read());
        assert!(r.is_read() && !r.is_write());
        assert_eq!(w.key(), Key(1));
        assert_eq!(r.value(), Value(20));
        assert_eq!(w.read_source(), None);
        assert_eq!(r.read_source(), Some(ReadSource::ThinAir));
    }

    #[test]
    fn external_txn_extraction() {
        let src = ReadSource::External {
            txn: TxnId::new(0, 1),
            op: 2,
        };
        assert_eq!(src.external_txn(), Some(TxnId::new(0, 1)));
        assert_eq!(ReadSource::Internal { op: 0 }.external_txn(), None);
        assert_eq!(ReadSource::ThinAir.external_txn(), None);
    }

    #[test]
    fn display() {
        let w = Op::Write {
            key: Key(0),
            value: Value(5),
        };
        assert_eq!(w.to_string(), "W(k0, 5)");
    }
}
