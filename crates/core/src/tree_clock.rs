//! Tree clocks (Mathur, Pavlogiannis, Tunç & Viswanathan, ASPLOS 2022).
//!
//! The paper notes that Plume "utilizes efficient data structures including
//! Vector Clocks and Tree Clocks" — this module provides the latter. A tree
//! clock represents the same knowledge as a vector clock (a per-session
//! time), but additionally remembers *through whom* each entry was learned,
//! as a tree rooted at the owning session. Joins can then skip subtrees
//! that are already known, making the amortized join cost proportional to
//! the number of entries that actually change instead of `Θ(k)` — the
//! "vt-work optimality" of the ASPLOS paper.
//!
//! Pruning is justified by the *attachment clock* (`aclk`) each node
//! carries: the parent's local time when the child was attached. If the
//! receiver has seen session `p` at a local time strictly greater than a
//! child's `aclk`, it already knows everything that child taught `p` —
//! children are kept newest-first, so the walk stops at the first strictly
//! older child. (With equal times the child must still be examined: a
//! session keeps learning *within* one local tick, so `aclk == known` is
//! ambiguous.)
//!
//! This implementation favours clarity over constant factors (child lists
//! are `Vec`s rather than intrusive linked lists) but preserves the
//! pruning logic. Equivalence with [`VectorClock`] semantics under
//! arbitrary increment/join schedules is enforced by differential tests.

use std::fmt;

use crate::vector_clock::VectorClock;

const NO_NODE: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node {
    session: u32,
    /// The session's local time as known here.
    clk: u32,
    /// Parent's local time when this node was attached.
    aclk: u32,
    parent: u32,
    /// Children, oldest first (walks iterate from the back = newest).
    children: Vec<u32>,
}

/// A tree clock over `k` sessions, owned by one session.
///
/// # Examples
///
/// ```
/// use awdit_core::tree_clock::TreeClock;
///
/// let mut a = TreeClock::new(3, 0);
/// a.increment();
/// let mut b = TreeClock::new(3, 1);
/// b.increment();
/// b.join(&a);
/// assert_eq!(b.get(0), 1);
/// assert_eq!(b.get(1), 1);
/// assert_eq!(b.get(2), 0);
/// ```
#[derive(Clone, Debug)]
pub struct TreeClock {
    nodes: Vec<Node>,
    /// session -> node index, or `NO_NODE`.
    pos: Vec<u32>,
    root: u32,
    num_sessions: usize,
}

impl TreeClock {
    /// A fresh clock for `owner` over `k` sessions, with all entries zero.
    ///
    /// # Panics
    ///
    /// Panics if `owner >= k`.
    pub fn new(k: usize, owner: u32) -> Self {
        assert!((owner as usize) < k, "owner session out of range");
        let mut pos = vec![NO_NODE; k];
        pos[owner as usize] = 0;
        TreeClock {
            nodes: vec![Node {
                session: owner,
                clk: 0,
                aclk: 0,
                parent: NO_NODE,
                children: Vec::new(),
            }],
            pos,
            root: 0,
            num_sessions: k,
        }
    }

    /// The owning session (the tree's root).
    pub fn owner(&self) -> u32 {
        self.nodes[self.root as usize].session
    }

    /// Number of sessions tracked.
    pub fn len(&self) -> usize {
        self.num_sessions
    }

    /// Returns `true` if the clock tracks no sessions.
    pub fn is_empty(&self) -> bool {
        self.num_sessions == 0
    }

    /// The entry for session `s`.
    pub fn get(&self, s: u32) -> u32 {
        match self.pos[s as usize] {
            NO_NODE => 0,
            i => self.nodes[i as usize].clk,
        }
    }

    /// Advances the owner's own entry by one.
    pub fn increment(&mut self) {
        let r = self.root as usize;
        self.nodes[r].clk += 1;
    }

    /// Sets the owner's own entry to at least `t`.
    pub fn advance_own(&mut self, t: u32) {
        let r = self.root as usize;
        if self.nodes[r].clk < t {
            self.nodes[r].clk = t;
        }
    }

    /// Flattens to a plain [`VectorClock`] (for tests and interop).
    pub fn to_vector_clock(&self) -> VectorClock {
        let mut vc = VectorClock::new(self.num_sessions);
        for (s, &p) in self.pos.iter().enumerate() {
            if p != NO_NODE {
                vc.advance(s, self.nodes[p as usize].clk);
            }
        }
        vc
    }

    /// Joins `other` into `self` (point-wise maximum), exploiting the tree
    /// structure to skip already-known subtrees.
    ///
    /// # Panics
    ///
    /// Panics if the clocks track different numbers of sessions or if
    /// `other` is the same clock's owner as `self`.
    pub fn join(&mut self, other: &TreeClock) {
        assert_eq!(self.num_sessions, other.num_sessions);
        debug_assert_ne!(self.owner(), other.owner(), "joining a clock with itself");

        // Collect the updated fragment by a pruned walk of other's tree:
        // (session, clk, parent_session or MAX for the fragment top).
        let mut fragment: Vec<(u32, u32, u32)> = Vec::new();
        // Stack of (node in other, fragment parent session or MAX).
        let mut stack: Vec<(u32, u32)> = vec![(other.root, u32::MAX)];
        while let Some((oi, parent_sess)) = stack.pop() {
            let n = &other.nodes[oi as usize];
            let known = self.get(n.session);
            let updated = n.clk > known || self.pos[n.session as usize] == NO_NODE;
            if updated {
                fragment.push((n.session, n.clk, parent_sess));
            }
            // Children newest-first; stop at the first strictly-older
            // attachment (see module docs for why `>=` keeps equality).
            for &c in n.children.iter().rev() {
                let child = &other.nodes[c as usize];
                if child.aclk >= known {
                    // Fragment parentage follows updated nodes only; a
                    // child under a non-updated node hangs off the top.
                    let fp = if updated { n.session } else { u32::MAX };
                    stack.push((c, fp));
                } else {
                    break;
                }
            }
        }
        if fragment.is_empty() {
            return;
        }
        // Splice: detach updated sessions' old nodes, then attach the
        // fragment preserving its structure (tops under our root).
        for &(sess, _, _) in &fragment {
            self.detach(sess);
        }
        for &(sess, clk, parent_sess) in &fragment {
            let parent = if parent_sess == u32::MAX || self.pos[parent_sess as usize] == NO_NODE {
                self.root
            } else {
                self.pos[parent_sess as usize]
            };
            let aclk = self.nodes[parent as usize].clk;
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                session: sess,
                clk,
                aclk,
                parent,
                children: Vec::new(),
            });
            self.pos[sess as usize] = idx;
            self.nodes[parent as usize].children.push(idx);
        }
        self.compact();
    }

    /// Detaches session `s`'s node (if present), re-homing its children
    /// under this clock's root — their knowledge stays valid; the
    /// provenance link is coarsened to "learned directly", stamped with the
    /// root's current time.
    fn detach(&mut self, s: u32) {
        let i = self.pos[s as usize];
        if i == NO_NODE {
            return;
        }
        debug_assert_ne!(i, self.root, "own session is never in a fragment");
        let node = self.nodes[i as usize].clone();
        if node.parent != NO_NODE {
            let siblings = &mut self.nodes[node.parent as usize].children;
            if let Some(p) = siblings.iter().position(|&c| c == i) {
                siblings.remove(p);
            }
        }
        let root = self.root;
        let root_clk = self.nodes[root as usize].clk;
        for c in node.children {
            self.nodes[c as usize].parent = root;
            self.nodes[c as usize].aclk = root_clk;
            self.nodes[root as usize].children.push(c);
        }
        self.pos[s as usize] = NO_NODE;
        self.nodes[i as usize].children = Vec::new();
        self.nodes[i as usize].parent = NO_NODE;
    }

    /// Garbage-collects unreachable nodes once they outnumber live ones.
    fn compact(&mut self) {
        let live = self.pos.iter().filter(|&&p| p != NO_NODE).count();
        if self.nodes.len() < live * 2 + 8 {
            return;
        }
        let mut new_nodes: Vec<Node> = Vec::with_capacity(live);
        let mut remap = vec![NO_NODE; self.nodes.len()];
        let mut queue = vec![self.root];
        while let Some(i) = queue.pop() {
            let n = &self.nodes[i as usize];
            if self.pos[n.session as usize] != i {
                continue;
            }
            let ni = new_nodes.len() as u32;
            remap[i as usize] = ni;
            new_nodes.push(n.clone());
            queue.extend(n.children.iter().copied());
        }
        for n in &mut new_nodes {
            if n.parent != NO_NODE {
                n.parent = remap[n.parent as usize];
            }
            n.children = n
                .children
                .iter()
                .map(|&c| remap[c as usize])
                .filter(|&c| c != NO_NODE)
                .collect();
        }
        for p in self.pos.iter_mut() {
            if *p != NO_NODE {
                *p = remap[*p as usize];
            }
        }
        self.root = remap[self.root as usize];
        self.nodes = new_nodes;
    }

    #[cfg(test)]
    fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl fmt::Display for TreeClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_vector_clock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_clock_is_zero() {
        let tc = TreeClock::new(4, 2);
        for s in 0..4 {
            assert_eq!(tc.get(s), 0);
        }
        assert_eq!(tc.owner(), 2);
        assert_eq!(tc.len(), 4);
    }

    #[test]
    fn increment_and_get() {
        let mut tc = TreeClock::new(2, 0);
        tc.increment();
        tc.increment();
        assert_eq!(tc.get(0), 2);
        assert_eq!(tc.get(1), 0);
        tc.advance_own(5);
        assert_eq!(tc.get(0), 5);
        tc.advance_own(3);
        assert_eq!(tc.get(0), 5);
    }

    #[test]
    fn join_transfers_knowledge_transitively() {
        let mut a = TreeClock::new(3, 0);
        a.increment(); // a: [1,0,0]
        let mut b = TreeClock::new(3, 1);
        b.increment();
        b.join(&a); // b: [1,1,0]
        let mut c = TreeClock::new(3, 2);
        c.increment();
        c.join(&b); // c learns of a *through* b
        assert_eq!(c.get(0), 1);
        assert_eq!(c.get(1), 1);
        assert_eq!(c.get(2), 1);
    }

    #[test]
    fn join_without_increments_still_propagates() {
        // The case that breaks naive pruning: the sender learns new
        // information without bumping its own clock, then sends again.
        let mut a = TreeClock::new(3, 0);
        a.increment();
        let mut b = TreeClock::new(3, 1);
        b.join(&a); // b: [1,0,0] — b's own clock still 0
        let mut c = TreeClock::new(3, 2);
        c.join(&b); // c: [1,0,0]
        let mut a2 = TreeClock::new(3, 0);
        a2.advance_own(7);
        b.join(&a2); // b: [7,0,0], b's own clock STILL 0
        c.join(&b); // naive pruning would skip: c already knows b@0
        assert_eq!(c.get(0), 7, "update learned within one tick was lost");
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = TreeClock::new(3, 0);
        a.advance_own(5);
        let mut b = TreeClock::new(3, 1);
        b.advance_own(3);
        b.join(&a);
        a.join(&b);
        assert_eq!(a.get(0), 5);
        assert_eq!(a.get(1), 3);
        assert_eq!(a.get(2), 0);
    }

    /// The differential oracle: arbitrary interleavings of increments and
    /// joins must match plain vector clocks exactly.
    #[test]
    fn matches_vector_clock_on_random_schedules() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..120 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let k = rng.gen_range(2..6);
            let mut tcs: Vec<TreeClock> = (0..k).map(|s| TreeClock::new(k, s as u32)).collect();
            let mut vcs: Vec<VectorClock> = (0..k).map(|_| VectorClock::new(k)).collect();
            for step in 0..80 {
                let i = rng.gen_range(0..k);
                if rng.gen_bool(0.4) {
                    tcs[i].increment();
                    let cur = vcs[i].get(i) + 1;
                    vcs[i].advance(i, cur);
                } else {
                    let j = rng.gen_range(0..k);
                    if i != j {
                        let other_tc = tcs[j].clone();
                        tcs[i].join(&other_tc);
                        let other_vc = vcs[j].clone();
                        vcs[i].join(&other_vc);
                    }
                }
                for (n, (tc, vc)) in tcs.iter().zip(&vcs).enumerate() {
                    assert_eq!(
                        tc.to_vector_clock(),
                        vc.clone(),
                        "seed {seed} step {step} clock {n}: divergence"
                    );
                }
            }
        }
    }

    /// Long chains of joins stay compact (the GC keeps node count bounded).
    #[test]
    fn node_count_stays_bounded() {
        let k = 8;
        let mut tcs: Vec<TreeClock> = (0..k).map(|s| TreeClock::new(k, s as u32)).collect();
        for round in 0..300 {
            let i = round % k;
            let j = (round + 1) % k;
            tcs[i].increment();
            let other = tcs[i].clone();
            tcs[j].join(&other);
            assert!(
                tcs[j].node_count() <= 4 * k + 16,
                "round {round}: {} nodes",
                tcs[j].node_count()
            );
        }
    }

    #[test]
    fn display_matches_vector_clock() {
        let mut a = TreeClock::new(2, 0);
        a.increment();
        assert_eq!(a.to_string(), a.to_vector_clock().to_string());
    }
}
