//! Summary statistics over histories, used by reports and benchmarks.

use std::fmt;

use crate::history::History;
use crate::op::{Op, ReadSource};

/// Aggregate statistics of one history.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct HistoryStats {
    /// Number of sessions, `k`.
    pub sessions: usize,
    /// Total transactions, committed + aborted.
    pub txns: usize,
    /// Committed transactions.
    pub committed: usize,
    /// Aborted transactions.
    pub aborted: usize,
    /// Total operations, `n` (the history's size).
    pub ops: usize,
    /// Read operations.
    pub reads: usize,
    /// Write operations.
    pub writes: usize,
    /// Distinct keys, `ℓ`.
    pub keys: usize,
    /// Size of the largest transaction.
    pub max_txn_size: usize,
    /// Reads resolved to the reader's own transaction.
    pub internal_reads: usize,
    /// Reads whose value was never written.
    pub thin_air_reads: usize,
}

impl HistoryStats {
    /// Computes the statistics for `history` in one pass.
    pub fn of(history: &History) -> Self {
        let mut s = HistoryStats {
            sessions: history.num_sessions(),
            keys: history.num_keys(),
            ..HistoryStats::default()
        };
        for (_, txn) in history.txns() {
            s.txns += 1;
            if txn.is_committed() {
                s.committed += 1;
            } else {
                s.aborted += 1;
            }
            s.ops += txn.len();
            s.max_txn_size = s.max_txn_size.max(txn.len());
            for op in txn.ops() {
                match op {
                    Op::Write { .. } => s.writes += 1,
                    Op::Read { source, .. } => {
                        s.reads += 1;
                        match source {
                            ReadSource::Internal { .. } => s.internal_reads += 1,
                            ReadSource::ThinAir => s.thin_air_reads += 1,
                            ReadSource::External { .. } => {}
                        }
                    }
                }
            }
        }
        s
    }

    /// Mean operations per transaction (0 for empty histories).
    pub fn avg_txn_size(&self) -> f64 {
        if self.txns == 0 {
            0.0
        } else {
            self.ops as f64 / self.txns as f64
        }
    }
}

impl fmt::Display for HistoryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sessions, {} txns ({} committed, {} aborted), {} ops \
             ({} reads, {} writes), {} keys, txn size avg {:.1} max {}",
            self.sessions,
            self.txns,
            self.committed,
            self.aborted,
            self.ops,
            self.reads,
            self.writes,
            self.keys,
            self.avg_txn_size(),
            self.max_txn_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;

    #[test]
    fn counts_everything() {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        b.begin(s0);
        b.write(s0, 1, 1);
        b.write(s0, 2, 2);
        b.commit(s0);
        b.begin(s0);
        b.write(s0, 1, 9);
        b.abort(s0);
        b.begin(s1);
        b.read(s1, 1, 1);
        b.read(s1, 3, 77); // thin air
        b.write(s1, 3, 5);
        b.read(s1, 3, 5); // internal
        b.commit(s1);
        let h = b.finish().unwrap();
        let s = HistoryStats::of(&h);
        assert_eq!(s.sessions, 2);
        assert_eq!(s.txns, 3);
        assert_eq!(s.committed, 2);
        assert_eq!(s.aborted, 1);
        assert_eq!(s.ops, 7);
        assert_eq!(s.reads, 3);
        assert_eq!(s.writes, 4);
        assert_eq!(s.keys, 3);
        assert_eq!(s.max_txn_size, 4);
        assert_eq!(s.internal_reads, 1);
        assert_eq!(s.thin_air_reads, 1);
        assert!((s.avg_txn_size() - 7.0 / 3.0).abs() < 1e-9);
        let rendered = s.to_string();
        assert!(rendered.contains("2 sessions"));
    }

    #[test]
    fn empty_history() {
        let h = HistoryBuilder::new().finish().unwrap();
        let s = HistoryStats::of(&h);
        assert_eq!(s.ops, 0);
        assert_eq!(s.avg_txn_size(), 0.0);
    }
}
