//! Fundamental identifier types for histories.
//!
//! All identifiers are small, dense newtypes ([`Key`], [`SessionId`],
//! [`TxnId`], [`OpLoc`]) so that the checkers can use plain arrays instead of
//! hash maps on their hot paths. Keys are interned by
//! [`HistoryBuilder`](crate::HistoryBuilder), which maps arbitrary `u64` key
//! names to dense indices.

use std::fmt;

/// A dense key identifier.
///
/// Keys are interned by the history builder: the `u32` is an index into the
/// history's key table, *not* the user-facing key name. Use
/// [`History::key_name`](crate::History::key_name) to recover the original
/// name.
///
/// # Examples
///
/// ```
/// use awdit_core::Key;
/// let k = Key(3);
/// assert_eq!(k.index(), 3);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Key(pub u32);

impl Key {
    /// Returns the dense index of this key.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// A written/read value.
///
/// Black-box isolation testing relies on every write carrying a unique value
/// per key (the *unique-value assumption*, Section 2.1 of the paper), so a
/// value together with its key identifies the write operation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Value(pub u64);

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A session identifier (dense index into the history's session list).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SessionId(pub u32);

impl SessionId {
    /// Returns the dense index of this session.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifies a transaction by its session and its position within that
/// session (counting *all* transactions of the session, committed and
/// aborted, in session order).
///
/// The derived `Ord` orders transactions session-major; within a session it
/// coincides with the session order `so`.
///
/// # Examples
///
/// ```
/// use awdit_core::TxnId;
/// let t = TxnId::new(1, 4);
/// assert_eq!(t.to_string(), "s1.t4");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TxnId {
    /// The session the transaction belongs to.
    pub session: u32,
    /// The position within the session, in session order.
    pub index: u32,
}

impl TxnId {
    /// Creates a transaction identifier from a session index and a position
    /// within the session.
    #[inline]
    pub fn new(session: u32, index: u32) -> Self {
        TxnId { session, index }
    }

    /// The session this transaction belongs to.
    #[inline]
    pub fn session_id(self) -> SessionId {
        SessionId(self.session)
    }

    /// Returns `true` if `self` precedes `other` in session order, i.e. both
    /// belong to the same session and `self` comes earlier.
    #[inline]
    pub fn so_before(self, other: TxnId) -> bool {
        self.session == other.session && self.index < other.index
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}.t{}", self.session, self.index)
    }
}

/// The location of an operation: a transaction plus the operation's position
/// in the transaction's program order `po`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct OpLoc {
    /// The transaction containing the operation.
    pub txn: TxnId,
    /// Position of the operation in program order (0-based).
    pub op: u32,
}

impl OpLoc {
    /// Creates an operation location.
    #[inline]
    pub fn new(txn: TxnId, op: u32) -> Self {
        OpLoc { txn, op }
    }
}

impl fmt::Display for OpLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.txn, self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_ordering_is_session_major() {
        let a = TxnId::new(0, 5);
        let b = TxnId::new(1, 0);
        let c = TxnId::new(1, 3);
        assert!(a < b);
        assert!(b < c);
        assert!(b.so_before(c));
        assert!(!a.so_before(b));
        assert!(!c.so_before(b));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Key(7).to_string(), "k7");
        assert_eq!(Value(42).to_string(), "42");
        assert_eq!(SessionId(2).to_string(), "s2");
        assert_eq!(TxnId::new(2, 9).to_string(), "s2.t9");
        assert_eq!(OpLoc::new(TxnId::new(0, 1), 3).to_string(), "s0.t1[3]");
    }

    #[test]
    fn key_index_roundtrip() {
        assert_eq!(Key(11).index(), 11);
        assert_eq!(SessionId(4).index(), 4);
    }
}
