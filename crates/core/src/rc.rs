//! Read Committed (Algorithm 1): saturation of the minimal commit relation
//! for the RC axiom, in `O(n^{3/2})` time.
//!
//! The RC axiom (Definition 2.4, Figure 3a): if transaction `t3` reads some
//! key from `t2` at read `r`, and a `po`-later read `r_x` of `t3` reads key
//! `x` from `t1 ≠ t2` while `t2` also writes `x`, then `t2` must commit
//! before `t1`.
//!
//! Algorithm 1 adds only the edges a *minimal* saturation needs:
//!
//! * only the `po`-first read from each observed transaction `t2` triggers
//!   an intersection (`firstTxnReads`), and
//! * for each key `x` in `KeysWt(t2) ∩ readKeys`, the inferred edge targets
//!   only the *earliest* future writer of `x` — later writers are ordered
//!   transitively because consecutive distinct writers of `x` observed by
//!   `t3` are themselves chained by inferred edges.
//!
//! The two-slot `earliestWts` stack handles the case where the earliest
//! future writer *is* `t2` itself, in which case the second-earliest
//! distinct writer must be used (see the discussion below Algorithm 1 in
//! the paper).
//!
//! Iterating each intersection over the smaller of the two sets yields the
//! `O(n^{3/2})` bound (Lemma 3.4); for histories whose transactions have
//! `O(1)` size this collapses to `O(n)`.

use crate::graph::{base_commit_graph, base_commit_graph_into, CommitGraph};
use crate::incremental::RcKernel;
use crate::index::HistoryIndex;
use crate::parallel::{self, SEQUENTIAL_CUTOFF};

/// Saturates the minimal commit relation for Read Committed.
///
/// Returns the commit graph `co′ = so ∪ wr ∪ inferred`; the history
/// satisfies RC iff the graph is acyclic (given Read Consistency, which is
/// checked separately by [`check`](crate::check)).
///
/// Implemented as a loop over the per-transaction
/// [`RcKernel`], the same inference body the
/// streaming checker drives one commit at a time.
pub fn saturate_rc(index: &HistoryIndex) -> CommitGraph {
    saturate_rc_with(index, 1)
}

/// [`saturate_rc`] on up to `threads` worker threads (`0` = all cores).
///
/// The RC inference body is transaction-local, so the dense-id range is
/// sharded into contiguous chunks, each worker runs its own kernel into a
/// thread-local edge sink, and the sinks are concatenated in chunk order —
/// the resulting graph is bit-identical to the sequential one for every
/// thread count.
pub fn saturate_rc_with(index: &HistoryIndex, threads: usize) -> CommitGraph {
    let mut g = CommitGraph::new(0);
    saturate_rc_into(&parallel::Pool::new(threads), index, threads, &mut g);
    g
}

/// [`saturate_rc_with`] into a caller-owned graph arena (reset and
/// refilled; see [`CommitGraph::reset`]) — the [`Engine`](crate::Engine)'s
/// allocation-recycling path, dispatching on the engine's shared pool.
pub fn saturate_rc_into(
    pool: &parallel::Pool,
    index: &HistoryIndex,
    threads: usize,
    g: &mut CommitGraph,
) {
    base_commit_graph_into(index, g);
    let m = index.num_committed();
    let threads = parallel::effective_threads(threads);
    if threads <= 1 || m < SEQUENTIAL_CUTOFF {
        let mut kernel = RcKernel::new();
        for t3 in 0..m as u32 {
            kernel.process(index, t3, g);
        }
        return;
    }
    let shards = parallel::split_even(m, threads * 4);
    let sinks = parallel::map_shards(pool, threads, "saturate_rc", &shards, |_, range| {
        let mut kernel = RcKernel::new();
        let mut sink = parallel::EdgeBuf::new();
        for t3 in range.clone() {
            kernel.process(index, t3, &mut sink);
        }
        sink
    });
    parallel::merge_sinks(g, sinks);
}

/// The weaker *Adya G1* reading of Read Committed (footnote 2 of the
/// paper): Read Consistency plus acyclicity of `so ∪ wr`, checkable in
/// `O(n)` time. Some literature (e.g. Crooks et al. 2017) interprets RC
/// this way; the paper's Definition 2.4 is strictly stronger.
///
/// Returns the `so ∪ wr` cycles (one per strongly connected component), so
/// an empty result means the history satisfies G1-style RC — *given* Read
/// Consistency, which the caller checks separately with
/// [`check_read_consistency`](crate::check_read_consistency).
pub fn g1_cycles(index: &HistoryIndex) -> Vec<crate::graph::Cycle> {
    let mut g = base_commit_graph(index);
    g.freeze();
    if g.topological_order().is_some() {
        Vec::new()
    } else {
        g.find_cycles(usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{History, HistoryBuilder};

    fn rc_consistent(h: &History) -> bool {
        let index = HistoryIndex::new(h);
        saturate_rc(&index).is_acyclic()
    }

    /// Figure 1a: the motivating RC-inconsistent history.
    #[test]
    fn fig1a_rc_inconsistent() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let s3 = b.session();
        let s4 = b.session();
        let (x, y, z) = (0, 1, 2);
        // t1: W(x,1) W(y,1)
        b.begin(s1);
        b.write(s1, x, 1);
        b.write(s1, y, 1);
        b.commit(s1);
        // t2: W(x,2)
        b.begin(s2);
        b.write(s2, x, 2);
        b.commit(s2);
        // t3: W(x,3), then t4: W(z,1) W(y,2) in the same session
        b.begin(s3);
        b.write(s3, x, 3);
        b.commit(s3);
        b.begin(s3);
        b.write(s3, z, 1);
        b.write(s3, y, 2);
        b.commit(s3);
        // t5: R(x,1) R(x,2) R(x,3)
        b.begin(s4);
        b.read(s4, x, 1);
        b.read(s4, x, 2);
        b.read(s4, x, 3);
        b.commit(s4);
        // t6: R(z,1) R(y,1)
        b.begin(s4);
        b.read(s4, z, 1);
        b.read(s4, y, 1);
        b.commit(s4);
        let h = b.finish().unwrap();
        assert!(!rc_consistent(&h), "Fig. 1a must violate RC");
    }

    /// Figure 4a: RC-inconsistent (t3 reads x=2 then the older x=1).
    #[test]
    fn fig4a_rc_inconsistent() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        b.begin(s1);
        b.write(s1, 0, 1); // t1: W(x,1)
        b.commit(s1);
        b.begin(s1);
        b.write(s1, 0, 2); // t2: W(x,2)
        b.commit(s1);
        b.begin(s2);
        b.read(s2, 0, 2);
        b.read(s2, 0, 1); // t3
        b.commit(s2);
        let h = b.finish().unwrap();
        assert!(!rc_consistent(&h));
    }

    /// Figure 4b: RC-consistent (t1 observed before t2's y).
    #[test]
    fn fig4b_rc_consistent() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let (x, y) = (0, 1);
        b.begin(s1);
        b.write(s1, x, 1); // t1
        b.commit(s1);
        b.begin(s1);
        b.write(s1, x, 2);
        b.write(s1, y, 2); // t2
        b.commit(s1);
        b.begin(s2);
        b.read(s2, x, 1);
        b.read(s2, y, 2); // t3
        b.commit(s2);
        let h = b.finish().unwrap();
        assert!(rc_consistent(&h));
    }

    /// Reading x from t2, then x from t1, forces t2 -> t1 even when both
    /// reads are from the same pair of transactions (the two-slot stack
    /// case: the earliest future writer of x *is* t2).
    #[test]
    fn two_slot_stack_case() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let s3 = b.session();
        let x = 0;
        b.begin(s1);
        b.write(s1, x, 1); // t1
        b.commit(s1);
        b.begin(s2);
        b.write(s2, x, 2); // t2
        b.commit(s2);
        // t3 reads x from t2, then x from t1: infers t2 -> t1.
        b.begin(s3);
        b.read(s3, x, 2);
        b.read(s3, x, 1);
        b.commit(s3);
        let h = b.finish().unwrap();
        let index = HistoryIndex::new(&h);
        let g = saturate_rc(&index);
        assert!(g.is_acyclic()); // consistent: t2 before t1 is satisfiable
        let t1 = index.dense_id(crate::types::TxnId::new(0, 0));
        let t2 = index.dense_id(crate::types::TxnId::new(1, 0));
        assert!(
            g.successors(t2)
                .iter()
                .any(|&(to, k)| to == t1 && !k.is_base()),
            "expected inferred edge t2 -> t1"
        );
    }

    /// r and r_x read from the same transaction t2 with another read in
    /// between: the paper's motivation for the two-element stack. Here t3
    /// reads x from t2, then x from t2 again, then x from t1. The edge
    /// t2 -> t1 must still be inferred.
    #[test]
    fn repeated_reads_from_same_txn_still_infer() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let s3 = b.session();
        let (x, y) = (0, 1);
        b.begin(s1);
        b.write(s1, x, 1); // t1 writes x
        b.commit(s1);
        b.begin(s2);
        b.write(s2, x, 2); // t2 writes x and y
        b.write(s2, y, 2);
        b.commit(s2);
        b.begin(s3);
        b.read(s3, y, 2); // first read of t2 (via y)
        b.read(s3, x, 2); // second read of t2 (via x)
        b.read(s3, x, 1); // read of t1
        b.commit(s3);
        let h = b.finish().unwrap();
        let index = HistoryIndex::new(&h);
        let g = saturate_rc(&index);
        let t1 = index.dense_id(crate::types::TxnId::new(0, 0));
        let t2 = index.dense_id(crate::types::TxnId::new(1, 0));
        assert!(
            g.successors(t2)
                .iter()
                .any(|&(to, k)| to == t1 && !k.is_base()),
            "expected inferred edge t2 -> t1 despite intervening same-txn read"
        );
    }

    #[test]
    fn empty_and_write_only_histories_are_consistent() {
        let h = HistoryBuilder::new().finish().unwrap();
        assert!(rc_consistent(&h));

        let mut b = HistoryBuilder::new();
        let s = b.session();
        for i in 0..10 {
            b.begin(s);
            b.write(s, i, i);
            b.commit(s);
        }
        let h = b.finish().unwrap();
        assert!(rc_consistent(&h));
    }

    /// RC violation with a single session (the Theorem 1.5 shape):
    /// session order alone plus observation monotonicity conflict.
    #[test]
    fn single_session_rc_violation() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        let (x, y) = (0, 1);
        // tA writes x=1, y=1. tB writes x=2. tC reads y from tA then x from
        // tB... consistent. Instead: tC reads x from tB (later) then x from
        // tA (earlier): infers tB -> tA, but tA -so-> tB.
        b.begin(s);
        b.write(s, x, 1);
        b.write(s, y, 1);
        b.commit(s);
        b.begin(s);
        b.write(s, x, 2);
        b.commit(s);
        b.begin(s);
        b.read(s, x, 2);
        b.read(s, x, 1);
        b.commit(s);
        let h = b.finish().unwrap();
        assert!(!rc_consistent(&h));
    }

    /// Observing t2 via key y and later reading x from t1 where t2 also
    /// writes x infers t2 -> t1 (the general axiom shape, r != r_x).
    #[test]
    fn cross_key_observation_infers_edge() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let s3 = b.session();
        let (x, y) = (0, 1);
        b.begin(s1);
        b.write(s1, x, 1); // t1
        b.commit(s1);
        b.begin(s2);
        b.write(s2, x, 2);
        b.write(s2, y, 2); // t2
        b.commit(s2);
        b.begin(s3);
        b.read(s3, y, 2); // observe t2
        b.read(s3, x, 1); // then read x from t1
        b.commit(s3);
        let h = b.finish().unwrap();
        let index = HistoryIndex::new(&h);
        let g = saturate_rc(&index);
        let t1 = index.dense_id(crate::types::TxnId::new(0, 0));
        let t2 = index.dense_id(crate::types::TxnId::new(1, 0));
        assert!(g
            .successors(t2)
            .iter()
            .any(|&(to, k)| to == t1 && !k.is_base()));
        assert!(g.is_acyclic());
    }

    /// Fig. 4a violates Definition 2.4's RC but satisfies the weaker Adya
    /// G1 reading (footnote 2): so ∪ wr is acyclic.
    #[test]
    fn g1_is_weaker_than_rc() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        b.begin(s1);
        b.write(s1, 0, 1);
        b.commit(s1);
        b.begin(s1);
        b.write(s1, 0, 2);
        b.commit(s1);
        b.begin(s2);
        b.read(s2, 0, 2);
        b.read(s2, 0, 1);
        b.commit(s2);
        let h = b.finish().unwrap();
        let index = HistoryIndex::new(&h);
        assert!(super::g1_cycles(&index).is_empty(), "G1 accepts Fig. 4a");
        assert!(!saturate_rc(&index).is_acyclic(), "full RC rejects it");
    }

    #[test]
    fn g1_rejects_causality_cycles() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        b.begin(s1);
        b.write(s1, 0, 1);
        b.read(s1, 1, 2);
        b.commit(s1);
        b.begin(s2);
        b.write(s2, 1, 2);
        b.read(s2, 0, 1);
        b.commit(s2);
        let h = b.finish().unwrap();
        let index = HistoryIndex::new(&h);
        let cycles = super::g1_cycles(&index);
        assert_eq!(cycles.len(), 1);
        assert!(cycles[0].is_closed());
    }
}
