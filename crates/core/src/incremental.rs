//! Incremental saturation entry points.
//!
//! The batch checkers ([`saturate_rc`](crate::saturate_rc),
//! [`saturate_ra`](crate::saturate_ra), [`saturate_cc`](crate::saturate_cc))
//! process every committed transaction of a finished history in one sweep.
//! This module factors their per-transaction inference bodies into reusable
//! *kernels* so that an online checker (the `awdit-stream` crate) can feed
//! transactions one at a time and obtain exactly the same inferred edges:
//!
//! * [`CommitView`] abstracts the derived index the kernels read
//!   ([`HistoryIndex`] implements it, as does `awdit-stream`'s growing
//!   index);
//! * [`EdgeSink`] abstracts where inferred edges go ([`CommitGraph`] for
//!   batch, an incremental cycle-detecting DAG for streaming);
//! * [`RcKernel`] / [`RaKernel`] carry the per-level scratch state across
//!   calls; [`HbTracker`] maintains happens-before vector clocks, and
//!   [`infer_cc_edges`] is the CC axiom's inference body.
//!
//! The batch saturators are implemented as straight loops over these
//! kernels (see `rc.rs`, `ra.rs`, `cc.rs`), so batch/stream agreement is
//! structural rather than coincidental.
//!
//! # Processing-order contract
//!
//! Kernels must see transactions in an order compatible with `so ∪ wr`:
//! within a session in session order, and a reader only after every
//! committed transaction it reads from. Any such order yields the same
//! edges — the RC body is transaction-local, the RA body only consults
//! state of the reader's own session, and vector-clock joins are
//! order-independent across valid topological orders.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::graph::{CommitGraph, EdgeKind};
use crate::index::{DenseId, ExtRead, HistoryIndex, NONE};
use crate::types::Key;
use crate::vector_clock::VectorClock;

/// Read access to the derived per-transaction indexes the saturation
/// kernels need. Implemented by [`HistoryIndex`] (batch) and by the
/// streaming index in `awdit-stream`.
pub trait CommitView {
    /// Number of sessions seen so far.
    fn num_sessions(&self) -> usize;
    /// Session of dense transaction `d`.
    fn session_of(&self, d: DenseId) -> u32;
    /// Position of `d` within its session, counting committed transactions.
    fn committed_pos(&self, d: DenseId) -> u32;
    /// External reads of `d` (committed writers only), in program order.
    fn ext_reads(&self, d: DenseId) -> &[ExtRead];
    /// Sorted, deduplicated keys written by `d`.
    fn keys_written(&self, d: DenseId) -> &[Key];
    /// Sorted, deduplicated keys read externally by `d`.
    fn keys_read(&self, d: DenseId) -> &[Key];
    /// Writers of the `po`-first external read per key, parallel to
    /// [`keys_read`](Self::keys_read).
    fn first_writers(&self, d: DenseId) -> &[DenseId];
    /// Whether `d` writes `key`.
    fn writes_key(&self, d: DenseId, key: Key) -> bool;
    /// Distinct `(key, writer)` pairs read externally by `d`, sorted.
    fn read_pairs(&self, d: DenseId) -> &[(Key, DenseId)];
    /// Visits the sessions writing `key` (ascending), each with its
    /// committed writers in session order. A visitor rather than a
    /// returned slice so implementations are free to store the lists in
    /// flat CSR form ([`HistoryIndex`]) or per-session vectors
    /// (`awdit-stream`'s slab index).
    fn for_each_key_writes(&self, key: Key, f: &mut dyn FnMut(u32, &[DenseId]));
}

impl CommitView for HistoryIndex {
    fn num_sessions(&self) -> usize {
        HistoryIndex::num_sessions(self)
    }
    fn session_of(&self, d: DenseId) -> u32 {
        HistoryIndex::session_of(self, d)
    }
    fn committed_pos(&self, d: DenseId) -> u32 {
        HistoryIndex::committed_pos(self, d)
    }
    fn ext_reads(&self, d: DenseId) -> &[ExtRead] {
        HistoryIndex::ext_reads(self, d)
    }
    fn keys_written(&self, d: DenseId) -> &[Key] {
        HistoryIndex::keys_written(self, d)
    }
    fn keys_read(&self, d: DenseId) -> &[Key] {
        HistoryIndex::keys_read(self, d)
    }
    fn first_writers(&self, d: DenseId) -> &[DenseId] {
        HistoryIndex::first_writers(self, d)
    }
    fn writes_key(&self, d: DenseId, key: Key) -> bool {
        HistoryIndex::writes_key(self, d, key)
    }
    fn read_pairs(&self, d: DenseId) -> &[(Key, DenseId)] {
        HistoryIndex::read_pairs(self, d)
    }
    fn for_each_key_writes(&self, key: Key, f: &mut dyn FnMut(u32, &[DenseId])) {
        for (s, writes) in HistoryIndex::key_writes(self, key) {
            f(s, writes);
        }
    }
}

/// Receiver of saturation edges.
pub trait EdgeSink {
    /// Records the edge `from → to` with its provenance.
    fn add_edge(&mut self, from: DenseId, to: DenseId, kind: EdgeKind);
}

impl EdgeSink for CommitGraph {
    fn add_edge(&mut self, from: DenseId, to: DenseId, kind: EdgeKind) {
        CommitGraph::add_edge(self, from, to, kind);
    }
}

impl EdgeSink for Vec<(DenseId, DenseId, EdgeKind)> {
    fn add_edge(&mut self, from: DenseId, to: DenseId, kind: EdgeKind) {
        self.push((from, to, kind));
    }
}

/// FNV-1a — the keys hashed on the kernels' hot paths are tiny
/// `(session, key)` pairs, where SipHash's per-call overhead dominates;
/// FNV keeps the batch `saturate_ra` loop close to the stamped-array code
/// it replaced.
#[derive(Default)]
pub struct FnvHasher(u64);

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = h;
    }
}

/// A `HashMap` using [`FnvHasher`].
pub type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// Grows a vector so that `idx` is addressable, filling with `fill`.
fn ensure<T: Clone>(v: &mut Vec<T>, idx: usize, fill: T) {
    if v.len() <= idx {
        v.resize(idx + 1, fill);
    }
}

/// The Read Committed inference body (Algorithm 1), one reading
/// transaction at a time.
///
/// The scratch arrays are stamped per call, so a kernel can be reused for
/// an entire history (batch) or a whole stream. The RC body is
/// transaction-local: the edges emitted for `t3` depend only on `t3`'s
/// external reads and the write sets of the transactions it reads from.
#[derive(Debug, Default)]
pub struct RcKernel {
    round: u64,
    /// Per writer: round in which it was first seen by the current reader.
    writer_stamp: Vec<u64>,
    /// Per writer: index of the reader's `po`-first read from it.
    first_read_idx: Vec<u32>,
    /// Per key: round stamp for the `earliestWts` slots.
    key_stamp: Vec<u64>,
    ew_top: Vec<DenseId>,
    ew_second: Vec<DenseId>,
    read_keys: Vec<u32>,
}

impl RcKernel {
    /// Creates an empty kernel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs Algorithm 1's per-reader passes for `t3`, emitting inferred
    /// edges into `g`.
    pub fn process<V: CommitView, G: EdgeSink>(&mut self, view: &V, t3: DenseId, g: &mut G) {
        let reads = view.ext_reads(t3);
        if reads.is_empty() {
            return;
        }
        self.round += 1;
        let round = self.round;

        // Pass 1 (po order): record the po-first read from each observed
        // transaction (`firstTxnReads`).
        for (i, r) in reads.iter().enumerate() {
            let w = r.writer as usize;
            ensure(&mut self.writer_stamp, w, 0);
            ensure(&mut self.first_read_idx, w, 0);
            if self.writer_stamp[w] != round {
                self.writer_stamp[w] = round;
                self.first_read_idx[w] = i as u32;
            }
        }

        // Pass 2 (reverse po order): maintain `earliestWts` (two po-earliest
        // distinct future writers per key) and `readKeys`, inferring edges
        // at first-txn-reads.
        self.read_keys.clear();
        for (i, r) in reads.iter().enumerate().rev() {
            let t2 = r.writer;
            if self.first_read_idx[t2 as usize] == i as u32 {
                // Intersect KeysWt(t2) with readKeys, iterating the smaller
                // set.
                let wt = view.keys_written(t2);
                if wt.len() <= self.read_keys.len() {
                    for &x in wt {
                        let xi = x.index();
                        if xi < self.key_stamp.len() && self.key_stamp[xi] == round {
                            infer_rc(g, t2, self.ew_top[xi], self.ew_second[xi], x);
                        }
                    }
                } else {
                    for &xi in &self.read_keys {
                        let x = Key(xi);
                        if view.writes_key(t2, x) {
                            infer_rc(
                                g,
                                t2,
                                self.ew_top[xi as usize],
                                self.ew_second[xi as usize],
                                x,
                            );
                        }
                    }
                }
            }

            // Update earliestWts[y] and readKeys with the current read.
            let y = r.key.index();
            ensure(&mut self.key_stamp, y, 0);
            ensure(&mut self.ew_top, y, NONE);
            ensure(&mut self.ew_second, y, NONE);
            if self.key_stamp[y] != round {
                self.key_stamp[y] = round;
                self.ew_top[y] = NONE;
                self.ew_second[y] = NONE;
                self.read_keys.push(y as u32);
            }
            if self.ew_top[y] != t2 {
                self.ew_second[y] = self.ew_top[y];
                self.ew_top[y] = t2;
            }
        }
    }
}

/// The RC inference for key `x`: the earliest future writer (falling back
/// to the second slot when the top equals `t2`) is ordered after `t2`.
#[inline]
fn infer_rc<G: EdgeSink>(g: &mut G, t2: DenseId, top: DenseId, second: DenseId, x: Key) {
    let t1 = if top == t2 { second } else { top };
    if t1 != NONE && t1 != t2 {
        g.add_edge(t2, t1, EdgeKind::Inferred(x));
    }
}

/// The Read Atomic inference body (Algorithm 2), one transaction at a time.
///
/// Carries each session's latest-prior-writer-per-key table across calls,
/// so transactions of one session **must** be processed in session order
/// (transactions of different sessions may interleave arbitrarily — the RA
/// body only consults the reader's own session's state).
#[derive(Debug, Default)]
pub struct RaKernel {
    round: u64,
    /// Per `(session, key)`: the session-latest processed writer of the key.
    last_write: FnvMap<(u32, Key), DenseId>,
    /// Per writer: dedup stamp for the current reader's wr case.
    writer_stamp: Vec<u64>,
}

impl RaKernel {
    /// Creates an empty kernel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets the per-session latest-writer tables so the kernel can
    /// start a fresh stream, retaining map capacity. The dedup stamps are
    /// round-guarded and need no clearing (the round counter keeps
    /// increasing across resets, so stale stamps can never match).
    pub fn reset(&mut self) {
        self.last_write.clear();
    }

    /// Runs Algorithm 2's per-transaction body for `t3`, emitting inferred
    /// edges into `g` and updating the session's latest-writer table.
    pub fn process<V: CommitView, G: EdgeSink>(&mut self, view: &V, t3: DenseId, g: &mut G) {
        self.round += 1;
        let round = self.round;
        let s = view.session_of(t3);

        // so case: for each key x read (from its unique writer t1), the
        // latest prior writer of x in this session must order before t1.
        let keys_read = view.keys_read(t3);
        let first_writers = view.first_writers(t3);
        for (i, &x) in keys_read.iter().enumerate() {
            let t1 = first_writers[i];
            if let Some(&t2) = self.last_write.get(&(s, x)) {
                if t2 != t1 {
                    g.add_edge(t2, t1, EdgeKind::Inferred(x));
                }
            }
        }

        // wr case: for each distinct transaction t2 read by t3, intersect
        // KeysWt(t2) ∩ KeysRd(t3), iterating the smaller set.
        for r in view.ext_reads(t3) {
            let t2 = r.writer;
            ensure(&mut self.writer_stamp, t2 as usize, 0);
            if self.writer_stamp[t2 as usize] == round {
                continue;
            }
            self.writer_stamp[t2 as usize] = round;
            let wt = view.keys_written(t2);
            let rd = view.keys_read(t3);
            if wt.len() <= rd.len() {
                for &x in wt {
                    if let Ok(i) = rd.binary_search(&x) {
                        let t1 = first_writers[i];
                        if t1 != t2 {
                            g.add_edge(t2, t1, EdgeKind::Inferred(x));
                        }
                    }
                }
            } else {
                for (i, &x) in rd.iter().enumerate() {
                    if view.writes_key(t2, x) {
                        let t1 = first_writers[i];
                        if t1 != t2 {
                            g.add_edge(t2, t1, EdgeKind::Inferred(x));
                        }
                    }
                }
            }
        }

        // Update the session's latest-writer table with t3's writes.
        for &x in view.keys_written(t3) {
            self.last_write.insert((s, x), t3);
        }
    }
}

/// Maintains happens-before vector clocks (`ComputeHB` of Algorithm 3)
/// incrementally: each processed transaction's clock is the join of its
/// session predecessor's clock and its writers' clocks, advanced at its own
/// session entry.
///
/// Transactions must be observed in a `so ∪ wr`-compatible order (the
/// writers of every external read before the reader). The per-session
/// frontier clocks double as the *watermark* input for streaming pruning.
#[derive(Debug, Default)]
pub struct HbTracker {
    clocks: Vec<Option<VectorClock>>,
    session_clock: Vec<VectorClock>,
    writer_stamp: Vec<u64>,
    round: u64,
}

impl HbTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every stored clock and session frontier so the tracker can
    /// start a fresh stream, retaining the clock slab's capacity. The
    /// writer dedup stamps survive untouched — they are round-guarded, and
    /// the round counter keeps increasing across resets.
    pub fn reset(&mut self) {
        self.clocks.clear();
        self.session_clock.clear();
    }

    /// Makes sure `k` sessions are tracked (clocks are widened lazily).
    pub fn ensure_sessions(&mut self, k: usize) {
        while self.session_clock.len() < k {
            let cur = self.session_clock.len() + 1;
            self.session_clock.push(VectorClock::new(cur));
        }
        for c in &mut self.session_clock {
            c.resize(k);
        }
    }

    /// Computes, stores, and returns the inclusive clock of `d`.
    ///
    /// # Panics
    ///
    /// Panics if a committed writer of `d` has not been observed (the
    /// processing-order contract).
    pub fn observe<V: CommitView>(&mut self, view: &V, d: DenseId) -> &VectorClock {
        let k = view.num_sessions();
        self.ensure_sessions(k);
        self.round += 1;
        let s = view.session_of(d) as usize;
        let mut c = self.session_clock[s].clone();
        c.resize(k);
        for r in view.ext_reads(d) {
            let w = r.writer as usize;
            ensure(&mut self.writer_stamp, w, 0);
            if self.writer_stamp[w] != self.round {
                self.writer_stamp[w] = self.round;
                let wc = self.clocks[w]
                    .as_mut()
                    .expect("writer observed before reader (so ∪ wr order)");
                wc.resize(k);
                c.join(wc);
            }
        }
        c.advance(s, view.committed_pos(d) + 1);
        self.session_clock[s] = c.clone();
        ensure(&mut self.clocks, d as usize, None);
        self.clocks[d as usize] = Some(c);
        self.clocks[d as usize].as_ref().unwrap()
    }

    /// The stored inclusive clock of `d`, if still held.
    pub fn clock(&self, d: DenseId) -> Option<&VectorClock> {
        self.clocks.get(d as usize).and_then(Option::as_ref)
    }

    /// Releases the clock of `d` (pruning; the slot may be reused later).
    pub fn drop_clock(&mut self, d: DenseId) {
        if let Some(slot) = self.clocks.get_mut(d as usize) {
            *slot = None;
        }
    }

    /// The frontier clock of session `s`: the inclusive clock of its most
    /// recently observed transaction (zero if none).
    pub fn session_clock(&self, s: usize) -> Option<&VectorClock> {
        self.session_clock.get(s)
    }

    /// The watermark: the pointwise minimum over all session frontiers.
    /// Entry `j` is a count `w` such that every future transaction's clock
    /// has entry `j ≥ w` — i.e. the first `w` committed transactions of
    /// session `j` happen before everything still to come.
    pub fn watermark(&self) -> VectorClock {
        let k = self.session_clock.len();
        let mut w = VectorClock::new(k);
        if k == 0 {
            return w;
        }
        for j in 0..k {
            let m = (0..k)
                .map(|s| {
                    let c = &self.session_clock[s];
                    if j < c.len() {
                        c.get(j)
                    } else {
                        0
                    }
                })
                .min()
                .unwrap_or(0);
            w.advance(j, m);
        }
        w
    }
}

/// The Causal Consistency inference body (Algorithm 3's main loop, shared
/// by the batch `BinarySearch` strategy and the streaming checker): given
/// `t3`'s inclusive happens-before clock — as a raw per-session entries
/// slice, so both [`VectorClock`]s (via
/// [`entries`](VectorClock::entries)) and the flat
/// [`ClockTable`](crate::cc::ClockTable) rows plug in without conversion —
/// orders each session's latest visible writer of every read key before
/// the observed writer.
pub fn infer_cc_edges<V: CommitView, G: EdgeSink>(view: &V, t3: DenseId, clock: &[u32], g: &mut G) {
    infer_cc_pairs(view, view.session_of(t3), view.read_pairs(t3), clock, g);
}

/// [`infer_cc_edges`] over an explicit slice of the reader's `(key,
/// writer)` pairs. The per-pair work is independent, so callers may shard
/// the pairs of one wide transaction across workers and concatenate the
/// sinks in slice order to reproduce the sequential emission exactly
/// (`reader_session` is the session of the reading transaction).
pub fn infer_cc_pairs<V: CommitView, G: EdgeSink>(
    view: &V,
    reader_session: u32,
    pairs: &[(Key, DenseId)],
    clock: &[u32],
    g: &mut G,
) {
    let s = reader_session;
    for &(x, t1) in pairs {
        view.for_each_key_writes(x, &mut |s_prime, writes| {
            // Strict happens-before: the reader's own inclusive entry counts
            // the reader itself, so subtract it.
            let entry = if (s_prime as usize) < clock.len() {
                clock[s_prime as usize]
            } else {
                0
            };
            let bound = if s_prime == s {
                entry.saturating_sub(1)
            } else {
                entry
            };
            // Latest writer with committed position < bound.
            let cnt = writes.partition_point(|&w| view.committed_pos(w) < bound);
            if cnt > 0 {
                let t2 = writes[cnt - 1];
                if t2 != t1 {
                    g.add_edge(t2, t1, EdgeKind::Inferred(x));
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::base_commit_graph;
    use crate::history::HistoryBuilder;

    /// The kernels, fed in dense order, must reproduce the batch
    /// saturators' edges exactly (they *are* the batch saturators now, but
    /// this pins the per-call reuse with stamped state across rounds).
    #[test]
    fn rc_kernel_is_reusable_across_transactions() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        let s3 = b.session();
        b.begin(s1);
        b.write(s1, 0, 1);
        b.commit(s1);
        b.begin(s2);
        b.write(s2, 0, 2);
        b.commit(s2);
        b.begin(s3);
        b.read(s3, 0, 2);
        b.read(s3, 0, 1);
        b.commit(s3);
        b.begin(s3);
        b.read(s3, 0, 2);
        b.read(s3, 0, 1);
        b.commit(s3);
        let h = b.finish().unwrap();
        let index = HistoryIndex::new(&h);
        let mut g = base_commit_graph(&index);
        let mut k = RcKernel::new();
        for t in 0..index.num_committed() as u32 {
            k.process(&index, t, &mut g);
        }
        // Both readers must infer t2 -> t1 (stamps from round 1 must not
        // leak into round 2).
        let t1 = index.dense_id(crate::types::TxnId::new(0, 0));
        let t2 = index.dense_id(crate::types::TxnId::new(1, 0));
        let inferred = g
            .successors(t2)
            .iter()
            .filter(|&&(to, kind)| to == t1 && !kind.is_base())
            .count();
        assert_eq!(inferred, 2);
    }

    #[test]
    fn hb_tracker_matches_compute_hb() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        b.begin(s1);
        b.write(s1, 0, 1);
        b.commit(s1);
        b.begin(s2);
        b.read(s2, 0, 1);
        b.write(s2, 1, 1);
        b.commit(s2);
        b.begin(s1);
        b.read(s1, 1, 1);
        b.commit(s1);
        let h = b.finish().unwrap();
        let index = HistoryIndex::new(&h);
        let g = base_commit_graph(&index);
        let topo = g.topological_order().unwrap();
        let batch = crate::cc::compute_hb(&index, &g, &topo);
        let mut tracker = HbTracker::new();
        for &t in &topo {
            tracker.observe(&index, t);
        }
        for t in 0..index.num_committed() as u32 {
            assert_eq!(tracker.clock(t), Some(&batch[t as usize]), "clock of {t}");
        }
    }

    #[test]
    fn watermark_is_pointwise_min() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session();
        let s2 = b.session();
        b.begin(s1);
        b.write(s1, 0, 1);
        b.commit(s1);
        b.begin(s2);
        b.read(s2, 0, 1);
        b.commit(s2);
        let h = b.finish().unwrap();
        let index = HistoryIndex::new(&h);
        let g = base_commit_graph(&index);
        let topo = g.topological_order().unwrap();
        let mut tracker = HbTracker::new();
        for &t in &topo {
            tracker.observe(&index, t);
        }
        let w = tracker.watermark();
        // Session 0's first txn is seen by both frontiers; session 1's is
        // seen only by its own.
        assert_eq!(w.get(0), 1);
        assert_eq!(w.get(1), 0);
    }
}
