//! Isolation levels and their strength ordering.

use std::fmt;
use std::str::FromStr;

/// The weak isolation levels supported by the tester (Section 2.2).
///
/// Ordered by strength: `Causal ⊑ ReadAtomic ⊑ ReadCommitted` — every
/// causally-consistent history is read-atomic, and every read-atomic history
/// is read-committed.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum IsolationLevel {
    /// Read Committed (Definition 2.4): only committed data is read, and
    /// observations within a transaction are monotone in the commit order.
    ReadCommitted,
    /// Read Atomic (Definition 2.6): transactions are observed
    /// all-or-nothing.
    ReadAtomic,
    /// (Transactional) Causal Consistency (Definition 2.8): reads respect
    /// the happens-before relation `(so ∪ wr)+`.
    Causal,
}

impl IsolationLevel {
    /// All levels, weakest first.
    pub const ALL: [IsolationLevel; 3] = [
        IsolationLevel::ReadCommitted,
        IsolationLevel::ReadAtomic,
        IsolationLevel::Causal,
    ];

    /// Returns `true` if `self` is at least as strong as `other`
    /// (`self ⊑ other`): every history satisfying `self` satisfies `other`.
    ///
    /// # Examples
    ///
    /// ```
    /// use awdit_core::IsolationLevel::*;
    /// assert!(Causal.is_at_least(ReadCommitted));
    /// assert!(!ReadCommitted.is_at_least(ReadAtomic));
    /// assert!(ReadAtomic.is_at_least(ReadAtomic));
    /// ```
    pub fn is_at_least(self, other: IsolationLevel) -> bool {
        self.rank() >= other.rank()
    }

    fn rank(self) -> u8 {
        match self {
            IsolationLevel::ReadCommitted => 0,
            IsolationLevel::ReadAtomic => 1,
            IsolationLevel::Causal => 2,
        }
    }

    /// Short name used in reports and file formats: `rc`, `ra`, or `cc`.
    pub fn short_name(self) -> &'static str {
        match self {
            IsolationLevel::ReadCommitted => "rc",
            IsolationLevel::ReadAtomic => "ra",
            IsolationLevel::Causal => "cc",
        }
    }
}

impl fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            IsolationLevel::ReadCommitted => "Read Committed",
            IsolationLevel::ReadAtomic => "Read Atomic",
            IsolationLevel::Causal => "Causal Consistency",
        };
        f.write_str(name)
    }
}

/// Error returned when parsing an isolation level from a string fails.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseIsolationLevelError {
    input: String,
}

impl fmt::Display for ParseIsolationLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown isolation level `{}` (expected rc, ra, or cc)",
            self.input
        )
    }
}

impl std::error::Error for ParseIsolationLevelError {}

impl FromStr for IsolationLevel {
    type Err = ParseIsolationLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "rc" | "read-committed" | "readcommitted" => Ok(IsolationLevel::ReadCommitted),
            "ra" | "read-atomic" | "readatomic" => Ok(IsolationLevel::ReadAtomic),
            "cc" | "causal" | "causal-consistency" => Ok(IsolationLevel::Causal),
            _ => Err(ParseIsolationLevelError {
                input: s.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strength_order_matches_paper() {
        use IsolationLevel::*;
        // CC ⊑ RA ⊑ RC
        assert!(Causal.is_at_least(ReadAtomic));
        assert!(Causal.is_at_least(ReadCommitted));
        assert!(ReadAtomic.is_at_least(ReadCommitted));
        assert!(!ReadCommitted.is_at_least(Causal));
        assert!(!ReadAtomic.is_at_least(Causal));
        for l in IsolationLevel::ALL {
            assert!(l.is_at_least(l));
        }
    }

    #[test]
    fn parse_round_trips_short_names() {
        for l in IsolationLevel::ALL {
            assert_eq!(l.short_name().parse::<IsolationLevel>().unwrap(), l);
        }
        assert!("serializable".parse::<IsolationLevel>().is_err());
        assert_eq!(
            "Causal".parse::<IsolationLevel>().unwrap(),
            IsolationLevel::Causal
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(IsolationLevel::ReadCommitted.to_string(), "Read Committed");
        assert_eq!(IsolationLevel::Causal.to_string(), "Causal Consistency");
    }
}
