//! A persistent parked worker pool for the sharded saturation engine.
//!
//! The checkers parallelize by **sharding a canonical processing sequence
//! into contiguous chunks**: each worker runs the per-transaction kernel
//! over its chunk, emitting into a thread-local edge buffer, and the
//! buffers are concatenated **in chunk order**. Because the kernels are
//! independent across chunk boundaries (RC is transaction-local, RA only
//! consults its own session's state and chunks align to session
//! boundaries, CC reads precomputed clocks), the concatenation equals the
//! sequential emission for *any* partition — so verdicts, witnesses, and
//! violation order are bit-identical for every thread count, including 1.
//!
//! Dispatch runs on a long-lived [`Pool`]: `width − 1` OS threads are
//! spawned lazily on the first parallel dispatch and then **parked** on a
//! `Mutex`+`Condvar`, woken by a generation counter when a job is
//! published. A fork–join on a warm pool is therefore one lock + wake
//! instead of `W` thread spawns + joins — the per-stage fork cost that
//! used to dominate small levels. Built on `std` only — no extra
//! dependencies. Work below a threshold ([`SEQUENTIAL_CUTOFF`]) still
//! skips dispatch entirely at the call sites, and a pool of width 1
//! ([`Pool::new`] with one thread) never spawns anything: every dispatch
//! runs inline on the caller.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::graph::EdgeKind;
use crate::incremental::EdgeSink;
use crate::index::HistoryIndex;
use crate::types::SessionId;

/// Below this many work items (committed transactions), the saturators
/// skip parallel dispatch entirely: even a warm-pool wake over a tiny
/// history costs more than the saturation itself.
pub const SEQUENTIAL_CUTOFF: usize = 512;

/// The machine's available hardware parallelism (≥ 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a user-facing thread-count knob: `0` means "use all available
/// cores", anything else is taken literally.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

/// A long-lived worker pool with parked threads and scoped dispatch.
///
/// `Pool::new(w)` fixes the pool's *width* — the maximum number of
/// participants (caller + workers) any single dispatch can use; `0`
/// resolves to all cores. The `w − 1` worker threads are spawned lazily
/// on the first dispatch that wants them and then parked on a condvar
/// between jobs, so an idle pool costs nothing but parked threads and a
/// width-1 pool never spawns at all.
///
/// [`Pool::scope`] is the dispatch primitive: it publishes a borrowed
/// closure to the workers, runs the closure itself as participant 0, and
/// before returning revokes every unclaimed participant slot and waits
/// until no worker is still inside the closure — mirroring
/// [`std::thread::scope`]'s guarantee that borrows can't outlive the
/// call. A worker panic is caught, parked, and re-raised on the
/// dispatching caller; the worker itself survives and goes back to
/// parking, so one poisoned job can't wedge the pool.
///
/// Dispatches may nest (a `fleet_parse` participant forking intra-file
/// shard parses): the inner caller always participates itself, so
/// progress never depends on a free worker existing.
#[derive(Debug)]
pub struct Pool {
    /// `None` when the width is 1 — the pool is a pure pass-through and
    /// owns no threads, locks, or counters.
    inner: Option<Arc<Inner>>,
    width: usize,
}

/// A snapshot of the pool's lifetime counters (see the
/// `awdit_pool_{parks,wakes,steals,spawned_threads}_total` metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Times a worker parked on the condvar (no claimable job).
    pub parks: u64,
    /// Times a parked worker woke to claim a job.
    pub wakes: u64,
    /// Shard-range halves stolen from another participant's slot.
    pub steals: u64,
    /// Worker threads spawned over the pool's lifetime (lazy; ≤ width−1).
    pub spawned_threads: u64,
}

#[derive(Debug)]
struct Inner {
    state: Mutex<Shared>,
    /// Workers park here; woken by a generation-counter bump.
    work: Condvar,
    /// Dispatchers wait here for their job's active participants to drain.
    done: Condvar,
    parks: AtomicU64,
    wakes: AtomicU64,
    steals: AtomicU64,
    spawned: AtomicU64,
    /// Jobs currently queued (the `awdit_pool_queue_depth` gauge).
    queue_depth: AtomicU64,
    /// Watermarks of what [`Pool::publish_metrics`] has already exported,
    /// so counters drain into the registry exactly once without resetting
    /// the lifetime totals that [`Pool::stats`] reports.
    published: [AtomicU64; 4],
}

#[derive(Debug)]
struct Shared {
    /// Published jobs with unclaimed participant tickets, oldest first.
    queue: VecDeque<Arc<Job>>,
    /// Bumped on every publish and on shutdown; parked workers recheck
    /// the queue when it moves. Wrapping is harmless: a worker only
    /// compares for *inequality* against the value it parked on.
    generation: u64,
    shutdown: bool,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// One scoped dispatch, shared between the caller and the workers that
/// claim a ticket for it.
struct Job {
    task: TaskPtr,
    /// The dispatcher's obs context, re-installed inside each worker so
    /// nested instrumented code finds it via `awdit_obs::current()`.
    obs: awdit_obs::Obs,
    /// Unclaimed participant slots. Claimed and revoked only under the
    /// pool lock (atomic only so `Job` is `Sync`).
    tickets: AtomicUsize,
    /// Next participant index to hand out; 0 is the dispatcher.
    next_part: AtomicUsize,
    /// Workers currently inside the task. Incremented/decremented under
    /// the pool lock, paired with the `done` condvar.
    active: AtomicUsize,
    /// First worker panic, re-raised on the dispatcher.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("tickets", &self.tickets)
            .field("active", &self.active)
            .finish_non_exhaustive()
    }
}

/// A borrowed task pointer with its lifetime erased. Soundness rests on
/// [`Pool::scope`]: the pointee lives on the dispatcher's stack, and
/// `scope` does not return until every unclaimed ticket is revoked and
/// `active == 0` under the pool lock — after which no worker can reach
/// the pointer. This is one of the repo's three `unsafe` islands
/// (alongside the mmap window in `awdit-formats` and the `signal(2)`
/// shim in `awdit-serve`).
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls are fine) and the pointer
// is only dereferenced between job publish and the scope's drain barrier,
// while the dispatcher's stack frame is pinned inside `Pool::scope`.
#[allow(unsafe_code)]
unsafe impl Send for TaskPtr {}
#[allow(unsafe_code)]
unsafe impl Sync for TaskPtr {}

impl Pool {
    /// A pool of the given width (`0` → all cores). Width 1 is a
    /// pass-through: no threads, no locks, every dispatch inline.
    pub fn new(threads: usize) -> Self {
        let width = effective_threads(threads);
        if width <= 1 {
            return Pool {
                inner: None,
                width: 1,
            };
        }
        Pool {
            inner: Some(Arc::new(Inner {
                state: Mutex::new(Shared {
                    queue: VecDeque::new(),
                    generation: 0,
                    shutdown: false,
                    workers: Vec::new(),
                }),
                work: Condvar::new(),
                done: Condvar::new(),
                parks: AtomicU64::new(0),
                wakes: AtomicU64::new(0),
                steals: AtomicU64::new(0),
                spawned: AtomicU64::new(0),
                queue_depth: AtomicU64::new(0),
                published: [const { AtomicU64::new(0) }; 4],
            })),
            width,
        }
    }

    /// The pool's participant cap (≥ 1).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Worker threads spawned so far (0 until the first parallel
    /// dispatch; always 0 for a width-1 pool).
    pub fn spawned_threads(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.spawned.load(Ordering::Relaxed))
    }

    /// Lifetime counter snapshot.
    pub fn stats(&self) -> PoolStats {
        let Some(inner) = &self.inner else {
            return PoolStats::default();
        };
        PoolStats {
            parks: inner.parks.load(Ordering::Relaxed),
            wakes: inner.wakes.load(Ordering::Relaxed),
            steals: inner.steals.load(Ordering::Relaxed),
            spawned_threads: inner.spawned.load(Ordering::Relaxed),
        }
    }

    /// Runs `f(participant)` on up to `max_participants` threads — the
    /// caller as participant 0 plus any pool workers that claim a ticket
    /// before the caller finishes — and returns once **no thread** is
    /// still inside `f`. Participant indices are dense in
    /// `0..max_participants` but a given index may never run: callers
    /// must treat them as slot ids (e.g. steal targets), never as a
    /// completeness guarantee. The caller always participates, so the
    /// dispatch makes progress even if every worker is busy (this is what
    /// makes nested dispatch deadlock-free). Panics inside `f` — on any
    /// participant — are re-raised here after the drain barrier.
    pub fn scope<F>(&self, max_participants: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let workers = max_participants.min(self.width);
        let inner = match &self.inner {
            Some(inner) if workers > 1 => inner,
            _ => {
                f(0);
                return;
            }
        };
        let task: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: erases `task`'s borrow of the current stack frame. The
        // frame outlives every dereference: workers only reach the
        // pointer between the publish below and the drain barrier at the
        // end of this function (unclaimed tickets revoked + `active == 0`
        // observed under the pool lock), and this function does not
        // return before that barrier — including on panic paths, which
        // are funneled through `catch_unwind` first.
        #[allow(unsafe_code)]
        let task = TaskPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        });
        let job = Arc::new(Job {
            task,
            obs: awdit_obs::current(),
            tickets: AtomicUsize::new(workers - 1),
            next_part: AtomicUsize::new(1),
            active: AtomicUsize::new(0),
            panic: Mutex::new(None),
        });
        {
            let mut st = inner.state.lock().unwrap();
            // Lazily grow the worker set to what this dispatch can use.
            while st.workers.len() < workers - 1 {
                let arc = Arc::clone(inner);
                let handle = std::thread::Builder::new()
                    .name("awdit-pool".into())
                    .spawn(move || worker_loop(&arc))
                    .expect("spawn pool worker");
                st.workers.push(handle);
                inner.spawned.fetch_add(1, Ordering::Relaxed);
            }
            st.queue.push_back(Arc::clone(&job));
            inner
                .queue_depth
                .store(st.queue.len() as u64, Ordering::Relaxed);
            st.generation = st.generation.wrapping_add(1);
            inner.work.notify_all();
        }
        let caller = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(0)));
        // Drain barrier: revoke every unclaimed ticket so no new worker
        // can join, then wait out the ones already inside the task.
        {
            let mut st = inner.state.lock().unwrap();
            if job.tickets.swap(0, Ordering::Relaxed) > 0 {
                if let Some(pos) = st.queue.iter().position(|j| Arc::ptr_eq(j, &job)) {
                    st.queue.remove(pos);
                    inner
                        .queue_depth
                        .store(st.queue.len() as u64, Ordering::Relaxed);
                }
            }
            while job.active.load(Ordering::Relaxed) > 0 {
                st = inner.done.wait(st).unwrap();
            }
        }
        let worker_panic = job.panic.lock().unwrap().take();
        if let Some(payload) = worker_panic {
            std::panic::resume_unwind(payload);
        }
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
    }

    /// Drains the pool counters into the metrics registry (exactly-once
    /// via published watermarks) and refreshes the queue-depth gauge.
    pub fn publish_metrics(&self, metrics: &awdit_obs::metrics::MetricsRegistry) {
        let Some(inner) = &self.inner else { return };
        let series: [(&str, &AtomicU64); 4] = [
            ("awdit_pool_parks_total", &inner.parks),
            ("awdit_pool_wakes_total", &inner.wakes),
            ("awdit_pool_steals_total", &inner.steals),
            ("awdit_pool_spawned_threads_total", &inner.spawned),
        ];
        for (i, (name, total)) in series.iter().enumerate() {
            let delta = drain_watermark(total, &inner.published[i]);
            if delta > 0 {
                metrics.counter(name).add(delta);
            }
        }
        metrics
            .gauge("awdit_pool_queue_depth")
            .set(inner.queue_depth.load(Ordering::Relaxed) as f64);
    }

    fn note_steals(&self, n: u64) {
        if n > 0 {
            if let Some(inner) = &self.inner {
                inner.steals.fetch_add(n, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        let Some(inner) = &self.inner else { return };
        let handles = {
            let mut st = inner.state.lock().unwrap();
            st.shutdown = true;
            st.generation = st.generation.wrapping_add(1);
            inner.work.notify_all();
            std::mem::take(&mut st.workers)
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Advances `published` to `total` with a CAS and returns the step, so
/// concurrent publishers never double-export a delta.
fn drain_watermark(total: &AtomicU64, published: &AtomicU64) -> u64 {
    loop {
        let cur = total.load(Ordering::Relaxed);
        let prev = published.load(Ordering::Relaxed);
        if cur <= prev {
            return 0;
        }
        if published
            .compare_exchange(prev, cur, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            return cur - prev;
        }
    }
}

fn worker_loop(inner: &Inner) {
    let mut st = inner.state.lock().unwrap();
    let mut just_woke = false;
    loop {
        if st.shutdown {
            return;
        }
        let claimable = st
            .queue
            .iter()
            .position(|j| j.tickets.load(Ordering::Relaxed) > 0);
        let Some(pos) = claimable else {
            let parked_gen = st.generation;
            inner.parks.fetch_add(1, Ordering::Relaxed);
            // Loop-free wait is fine: the top of the loop re-derives the
            // predicate (shutdown / claimable job) from scratch, so a
            // spurious wakeup just parks again.
            st = inner.work.wait(st).unwrap();
            just_woke = st.generation != parked_gen;
            continue;
        };
        if just_woke {
            inner.wakes.fetch_add(1, Ordering::Relaxed);
            just_woke = false;
        }
        let job = Arc::clone(&st.queue[pos]);
        let remaining = job.tickets.load(Ordering::Relaxed) - 1;
        job.tickets.store(remaining, Ordering::Relaxed);
        if remaining == 0 {
            st.queue.remove(pos);
            inner
                .queue_depth
                .store(st.queue.len() as u64, Ordering::Relaxed);
        }
        let participant = job.next_part.fetch_add(1, Ordering::Relaxed);
        job.active.fetch_add(1, Ordering::Relaxed);
        drop(st);
        run_participant(&job, participant);
        st = inner.state.lock().unwrap();
        job.active.fetch_sub(1, Ordering::Relaxed);
        // Under the lock, paired with the dispatcher's `done` wait — no
        // missed wakeup is possible.
        inner.done.notify_all();
    }
}

fn run_participant(job: &Job, participant: usize) {
    let _ctx = awdit_obs::set_current(&job.obs);
    let _span = job.obs.span("pool_worker");
    // SAFETY: the dispatcher is blocked inside `Pool::scope` until this
    // participant's `active` decrement, so the pointee is alive (see
    // `TaskPtr`).
    #[allow(unsafe_code)]
    let task = unsafe { &*job.task.0 };
    if let Err(payload) =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(participant)))
    {
        let mut slot = job.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

// ---------------------------------------------------------------------------
// Shard dispatch on the pool
// ---------------------------------------------------------------------------

/// Runs `f` over every shard, on up to `threads` pool participants, and
/// returns the results **in shard order** (the deterministic-merge
/// contract). `threads` is the per-dispatch budget; the pool's width caps
/// it. Shards are dealt as contiguous per-participant ranges with
/// upper-half chunk-stealing, so uneven shards still balance.
///
/// `stage` names the pipeline stage for the per-stage pool metrics
/// (`awdit_pool_stage_busy_ns_total{stage="..."}`), so a metrics snapshot
/// shows *which* stage saturates the pool, not just that something did.
///
/// With `threads <= 1`, a width-1 pool, or a single shard this
/// degenerates to a plain sequential loop — no dispatch at all.
pub fn map_shards<S, R, F>(
    pool: &Pool,
    threads: usize,
    stage: &'static str,
    shards: &[S],
    f: F,
) -> Vec<R>
where
    S: Sync,
    R: Send,
    F: Fn(usize, &S) -> R + Sync,
{
    map_shards_with(pool, threads, stage, shards, || (), |(), i, s| f(i, s))
}

/// [`map_shards`] with **participant-local state**: each participant
/// builds one `T` via `init` and reuses it across every shard it claims,
/// so per-shard scratch (kernels, edge buffers, whole checker arenas in
/// [`Engine::check_many`](crate::Engine::check_many)) is allocated once
/// per participant instead of once per shard. Results are still returned
/// in shard order; the sequential path uses a single `T` for all shards,
/// matching what one participant would do.
pub fn map_shards_with<S, T, R, Init, F>(
    pool: &Pool,
    threads: usize,
    stage: &'static str,
    shards: &[S],
    init: Init,
    f: F,
) -> Vec<R>
where
    S: Sync,
    R: Send,
    Init: Fn() -> T + Sync,
    F: Fn(&mut T, usize, &S) -> R + Sync,
{
    let workers = threads.min(pool.width()).min(shards.len());
    if workers <= 1 {
        let mut state = init();
        return shards
            .iter()
            .enumerate()
            .map(|(i, s)| f(&mut state, i, s))
            .collect();
    }
    debug_assert!(shards.len() <= u32::MAX as usize, "shard count fits u32");
    // The dispatch is instrumented through the *dispatcher's* obs
    // context: workers re-install it before running (nested instrumented
    // code — the CC clock pass, whole checks under `Engine::check_many` —
    // then finds it via `awdit_obs::current()`). Per-shard busy timing
    // only runs when the handle is enabled.
    let obs = awdit_obs::current();
    let timed = obs.enabled();
    let pool_start = timed.then(std::time::Instant::now);
    // Each participant owns a packed (start, end) range slot; it pops its
    // own front, and when empty steals the upper half of another slot.
    let slots: Vec<AtomicU64> = {
        let ranges = split_even(shards.len(), workers);
        (0..workers)
            .map(|p| {
                let r = ranges.get(p).cloned().unwrap_or(0..0);
                AtomicU64::new(pack_range(r.start, r.end))
            })
            .collect()
    };
    let stolen = AtomicU64::new(0);
    let busy_ns = AtomicU64::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(shards.len()));
    pool.scope(workers, |p| {
        let mut state = init();
        let mut local: Vec<(usize, R)> = Vec::new();
        let mut busy = 0u64;
        while let Some(i) = claim_shard(&slots, p, &stolen) {
            let t = timed.then(std::time::Instant::now);
            local.push((i, f(&mut state, i, &shards[i])));
            if let Some(t) = t {
                busy += t.elapsed().as_nanos() as u64;
            }
        }
        if busy > 0 {
            busy_ns.fetch_add(busy, Ordering::Relaxed);
        }
        if !local.is_empty() {
            collected.lock().unwrap().extend(local);
        }
    });
    pool.note_steals(stolen.load(Ordering::Relaxed));
    if let (Some(start), Some(metrics)) = (pool_start, obs.metrics()) {
        // Capacity = wall time × participants; utilization is the
        // fraction of that capacity the shard kernels actually ran for.
        let capacity_ns = (start.elapsed().as_nanos() as u64).saturating_mul(workers as u64);
        record_pool_metrics(metrics, stage, busy_ns.load(Ordering::Relaxed), capacity_ns);
        pool.publish_metrics(metrics);
    }
    let mut tagged = collected.into_inner().unwrap();
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

fn pack_range(start: u32, end: u32) -> u64 {
    (u64::from(start) << 32) | u64::from(end)
}

fn unpack_range(packed: u64) -> (u32, u32) {
    ((packed >> 32) as u32, packed as u32)
}

/// Claims the next shard index for participant `p`: pop the front of its
/// own range, else steal the upper half of another participant's range
/// (the stolen remainder parks in `p`'s own — empty — slot). Every range
/// is either in a slot (stealable) or held by a live participant that
/// will drain it, so the dispatch completes even when some participant
/// slots are never claimed by a worker. CAS races are benign: ranges only
/// shrink and ranges from disjoint index regions never repeat, so there
/// is no ABA.
fn claim_shard(slots: &[AtomicU64], p: usize, stolen: &AtomicU64) -> Option<usize> {
    let own = &slots[p];
    loop {
        let cur = own.load(Ordering::Relaxed);
        let (start, end) = unpack_range(cur);
        if start >= end {
            break;
        }
        if own
            .compare_exchange_weak(
                cur,
                pack_range(start + 1, end),
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            return Some(start as usize);
        }
    }
    let k = slots.len();
    for off in 1..k {
        let victim = &slots[(p + off) % k];
        loop {
            let cur = victim.load(Ordering::Relaxed);
            let (start, end) = unpack_range(cur);
            if start >= end {
                break;
            }
            let mid = start + (end - start) / 2;
            if victim
                .compare_exchange(
                    cur,
                    pack_range(start, mid),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                stolen.fetch_add(1, Ordering::Relaxed);
                own.store(pack_range(mid + 1, end), Ordering::Relaxed);
                return Some(mid as usize);
            }
        }
    }
    None
}

/// Emits one fork–join's pool metrics: the aggregate counters plus the
/// per-stage labeled series (the labeled busy counters partition the
/// aggregate, so a snapshot shows *which* stage saturates the pool).
/// Shared by [`map_shards_with`] and custom dispatches (the CC clock
/// wavefront) whose loop shape doesn't fit `map_shards`.
pub(crate) fn record_pool_metrics(
    metrics: &awdit_obs::metrics::MetricsRegistry,
    stage: &'static str,
    busy_ns: u64,
    capacity_ns: u64,
) {
    metrics.counter("awdit_pool_forks_total").inc();
    metrics.counter("awdit_pool_busy_ns_total").add(busy_ns);
    metrics.counter("awdit_pool_wall_ns_total").add(capacity_ns);
    if capacity_ns > 0 {
        metrics
            .gauge("awdit_pool_utilization")
            .set(busy_ns as f64 / capacity_ns as f64);
    }
    metrics
        .counter(&format!(
            "awdit_pool_stage_forks_total{{stage=\"{stage}\"}}"
        ))
        .inc();
    metrics
        .counter(&format!(
            "awdit_pool_stage_busy_ns_total{{stage=\"{stage}\"}}"
        ))
        .add(busy_ns);
}

/// Splits `0..n` into up to `parts` contiguous, near-equal ranges (none
/// empty; fewer ranges when `n < parts`).
pub fn split_even(n: usize, parts: usize) -> Vec<Range<u32>> {
    if n == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start as u32..(start + len) as u32);
        start += len;
    }
    out
}

/// Splits the index range of `weights` into up to `parts` contiguous
/// groups of near-equal total weight (greedy sweep; every group
/// non-empty). Used to shard *sessions* so each worker gets a similar
/// number of transactions even when session lengths are skewed.
pub fn split_weighted(weights: &[usize], parts: usize) -> Vec<Range<usize>> {
    let n = weights.len();
    if n == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(n);
    let total: usize = weights.iter().sum();
    let target = total / parts + 1;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        // Close the group when it reaches the target, but always leave at
        // least one element per remaining group.
        let remaining_groups = parts - out.len();
        let remaining_items = n - i - 1;
        if (acc >= target && remaining_groups > 1) || remaining_items < remaining_groups {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0;
            if out.len() == parts {
                break;
            }
        }
    }
    if start < n {
        out.push(start..n);
    }
    out
}

/// A thread-local edge sink: `(from, to, kind)` triples in emission order.
pub type EdgeBuf = Vec<(u32, u32, EdgeKind)>;

/// Replays thread-local edge sinks into `g` **in shard order** — the
/// deterministic-merge step every sharded saturator ends with. Because
/// each sink holds the sequential emission restricted to its chunk, the
/// concatenation equals the sequential emission exactly.
pub fn merge_sinks<G: EdgeSink>(g: &mut G, sinks: Vec<EdgeBuf>) {
    for sink in sinks {
        for (from, to, kind) in sink {
            g.add_edge(from, to, kind);
        }
    }
}

/// A bounded, capacity-one rendezvous slot between exactly two threads —
/// the handoff primitive behind the engine's read/check overlap.
///
/// [`send`](Self::send) blocks while the slot is occupied, so a producer
/// can never race more than one item ahead of its consumer: there is no
/// unbounded queueing anywhere, and peak memory stays at the
/// double-buffer pair the caller allocated. [`close`](Self::close) wakes
/// both sides; a closed, empty slot makes [`recv`](Self::recv) return
/// `None` and [`send`](Self::send) return `false` (handing the item
/// back).
#[derive(Debug)]
pub struct HandoffSlot<T> {
    state: std::sync::Mutex<SlotState<T>>,
    cond: std::sync::Condvar,
}

#[derive(Debug)]
struct SlotState<T> {
    item: Option<T>,
    closed: bool,
}

impl<T> Default for HandoffSlot<T> {
    fn default() -> Self {
        HandoffSlot::new()
    }
}

impl<T> HandoffSlot<T> {
    /// An empty, open slot.
    pub fn new() -> Self {
        HandoffSlot {
            state: std::sync::Mutex::new(SlotState {
                item: None,
                closed: false,
            }),
            cond: std::sync::Condvar::new(),
        }
    }

    /// Places `item` in the slot, blocking while it is occupied. Returns
    /// `Err(item)` if the slot was closed first.
    pub fn send(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().unwrap();
        while state.item.is_some() && !state.closed {
            state = self.cond.wait(state).unwrap();
        }
        if state.closed {
            return Err(item);
        }
        state.item = Some(item);
        self.cond.notify_all();
        Ok(())
    }

    /// Takes the item, blocking while the slot is empty. Returns `None`
    /// once the slot is closed **and** drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(item) = state.item.take() {
                self.cond.notify_all();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.cond.wait(state).unwrap();
        }
    }

    /// Closes the slot: an item already inside stays receivable, further
    /// sends fail, and blocked threads wake.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cond.notify_all();
    }
}

/// Contiguous session groups for per-session sharding (RA, pointer-scan
/// CC), weighted by each session's committed-transaction count so skewed
/// session lengths still balance.
pub fn session_groups(index: &HistoryIndex, parts: usize) -> Vec<Range<usize>> {
    let weights: Vec<usize> = (0..index.num_sessions())
        .map(|s| index.session_committed(SessionId(s as u32)).len())
        .collect();
    split_weighted(&weights, parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_even_covers_range() {
        let parts = split_even(10, 3);
        assert_eq!(parts, vec![0..4, 4..7, 7..10]);
        assert_eq!(split_even(2, 8).len(), 2);
        assert!(split_even(0, 4).is_empty());
    }

    #[test]
    fn split_weighted_is_contiguous_and_total() {
        let w = [5usize, 1, 1, 1, 10, 1, 1];
        let groups = split_weighted(&w, 3);
        assert!(groups.len() <= 3 && !groups.is_empty());
        // Contiguous cover of 0..7.
        assert_eq!(groups.first().unwrap().start, 0);
        assert_eq!(groups.last().unwrap().end, 7);
        for pair in groups.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        // More groups than items degenerates to singletons.
        assert_eq!(split_weighted(&[1, 1], 5).len(), 2);
    }

    #[test]
    fn map_shards_preserves_shard_order() {
        let shards: Vec<usize> = (0..37).collect();
        let seq_pool = Pool::new(1);
        let par_pool = Pool::new(8);
        let seq = map_shards(&seq_pool, 1, "test_stage", &shards, |i, &s| (i, s * 2));
        let par = map_shards(&par_pool, 8, "test_stage", &shards, |i, &s| (i, s * 2));
        assert_eq!(seq, par);
        for (i, &(j, v)) in par.iter().enumerate() {
            assert_eq!(i, j);
            assert_eq!(v, i * 2);
        }
    }

    #[test]
    fn width_one_pool_never_spawns() {
        let pool = Pool::new(1);
        let shards: Vec<usize> = (0..100).collect();
        let out = map_shards(&pool, 8, "test_stage", &shards, |_, &s| s + 1);
        assert_eq!(out.len(), 100);
        assert_eq!(pool.spawned_threads(), 0);
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn pool_reuses_workers_across_dispatches() {
        let pool = Pool::new(4);
        for round in 0..16 {
            let shards: Vec<usize> = (0..64).collect();
            let out = map_shards(&pool, 4, "test_stage", &shards, move |_, &s| s * 2 + round);
            assert_eq!(out.len(), 64);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, i * 2 + round);
            }
        }
        // Lazy spawn happens once; later dispatches reuse the parked set.
        assert!(pool.spawned_threads() <= 3);
    }

    #[test]
    fn claim_shard_drains_every_index_exactly_once() {
        let ranges = split_even(97, 4);
        let slots: Vec<AtomicU64> = (0..4)
            .map(|p| {
                let r = ranges.get(p).cloned().unwrap_or(0..0);
                AtomicU64::new(pack_range(r.start, r.end))
            })
            .collect();
        let stolen = AtomicU64::new(0);
        // A single participant must still drain all slots (steals).
        let mut seen = [false; 97];
        while let Some(i) = claim_shard(&slots, 2, &stolen) {
            assert!(!seen[i], "index {i} claimed twice");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert!(stolen.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn handoff_slot_delivers_in_order_and_closes_cleanly() {
        let slot = HandoffSlot::new();
        let got = std::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let mut got = Vec::new();
                while let Some(i) = slot.recv() {
                    got.push(i);
                }
                got
            });
            for i in 0..64 {
                slot.send(i).unwrap();
            }
            slot.close();
            consumer.join().unwrap()
        });
        assert_eq!(got, (0..64).collect::<Vec<_>>());
        assert_eq!(slot.send(99), Err(99));
        assert_eq!(slot.recv(), None);
    }
}
